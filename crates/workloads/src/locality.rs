//! Offline locality analytics.
//!
//! The paper's Figure 4 places the four HPCC kernels on a spatial ×
//! temporal locality plane. [`analyze`] measures both axes for any
//! reference stream, model-independently:
//!
//! * **temporal locality** — the reuse fraction (1 − footprint/touches):
//!   how often the stream re-touches a page it has seen before;
//! * **spatial locality** — the *successor fraction*: how often a touched
//!   page is the successor of one of the last few touched pages. (The
//!   AMPoM spatial-locality *score* of Eq. 1 lives in `ampom-core`; this
//!   analytic is the stream-side ground truth it approximates.)

use std::collections::{HashMap, VecDeque};

use crate::memref::MemRef;

/// Summary locality statistics of a reference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamAnalysis {
    /// Total references in the stream.
    pub touches: u64,
    /// Distinct pages referenced.
    pub footprint_pages: u64,
    /// 1 − footprint/touches: fraction of touches that re-touch a page.
    pub reuse_fraction: f64,
    /// Fraction of touches whose page succeeds one of the previous
    /// `lookback` touched pages.
    pub successor_fraction: f64,
    /// Mean length of maximal strictly-sequential runs (page, page+1, …)
    /// in the raw stream.
    pub mean_sequential_run: f64,
}

/// Lookback used by the successor-fraction metric; matches the AMPoM
/// window length so the two views are comparable.
pub const SUCCESSOR_LOOKBACK: usize = 20;

/// Analyzes a reference stream. Consumes the iterator.
pub fn analyze(refs: impl Iterator<Item = MemRef>) -> StreamAnalysis {
    let mut touches = 0u64;
    let mut seen: HashMap<u64, u32> = HashMap::new();
    let mut recent: VecDeque<u64> = VecDeque::with_capacity(SUCCESSOR_LOOKBACK);
    let mut successor_hits = 0u64;
    let mut runs: Vec<u64> = Vec::new();
    let mut current_run = 0u64;
    let mut prev: Option<u64> = None;

    for r in refs {
        let p = r.page.index();
        touches += 1;
        *seen.entry(p).or_insert(0) += 1;

        if recent.iter().any(|&q| p == q + 1) {
            successor_hits += 1;
        }
        if recent.len() == SUCCESSOR_LOOKBACK {
            recent.pop_front();
        }
        recent.push_back(p);

        match prev {
            Some(q) if p == q + 1 => current_run += 1,
            Some(_) => {
                runs.push(current_run + 1);
                current_run = 0;
            }
            None => {}
        }
        prev = Some(p);
    }
    if prev.is_some() {
        runs.push(current_run + 1);
    }

    let footprint = seen.len() as u64;
    StreamAnalysis {
        touches,
        footprint_pages: footprint,
        reuse_fraction: if touches == 0 {
            0.0
        } else {
            1.0 - footprint as f64 / touches as f64
        },
        successor_fraction: if touches == 0 {
            0.0
        } else {
            successor_hits as f64 / touches as f64
        },
        mean_sequential_run: if runs.is_empty() {
            0.0
        } else {
            runs.iter().sum::<u64>() as f64 / runs.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{Interleaved, Scripted, Sequential, UniformRandom};
    use ampom_sim::rng::SimRng;
    use ampom_sim::time::SimDuration;

    const CPU: SimDuration = SimDuration::from_micros(1);

    #[test]
    fn sequential_scores_high_spatial_low_temporal() {
        let a = analyze(Sequential::new(100, CPU));
        assert_eq!(a.touches, 100);
        assert_eq!(a.footprint_pages, 100);
        assert_eq!(a.reuse_fraction, 0.0);
        assert!(a.successor_fraction > 0.98);
        assert!((a.mean_sequential_run - 100.0).abs() < 1e-9);
    }

    #[test]
    fn random_scores_low_on_both() {
        let a = analyze(UniformRandom::new(
            1000,
            5000,
            CPU,
            SimRng::seed_from_u64(3),
        ));
        assert!(
            a.successor_fraction < 0.05,
            "spatial {}",
            a.successor_fraction
        );
        // 5000 touches over 1000 pages: heavy incidental reuse, but that is
        // temporal coverage, not locality — still reported faithfully.
        assert!(a.reuse_fraction > 0.5);
        assert!(a.mean_sequential_run < 1.2);
    }

    #[test]
    fn interleaved_streams_score_high_spatial_via_lookback() {
        // Raw consecutive refs are never successors, but within the
        // 20-deep lookback every ref succeeds an earlier one.
        let a = analyze(Interleaved::new(3, 50, CPU));
        assert!(a.successor_fraction > 0.9, "got {}", a.successor_fraction);
        assert!(a.mean_sequential_run < 1.5);
    }

    #[test]
    fn repeated_page_counts_as_reuse() {
        let a = analyze(Scripted::new(10, &[5, 5, 5, 5], CPU));
        assert_eq!(a.footprint_pages, 1);
        assert!((a.reuse_fraction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_all_zeroes() {
        let a = analyze(std::iter::empty());
        assert_eq!(a.touches, 0);
        assert_eq!(a.footprint_pages, 0);
        assert_eq!(a.reuse_fraction, 0.0);
        assert_eq!(a.successor_fraction, 0.0);
        assert_eq!(a.mean_sequential_run, 0.0);
    }

    #[test]
    fn hpcc_kernels_land_in_their_figure4_quadrants() {
        use crate::{build_kernel, Kernel, ProblemSize};
        let size = ProblemSize {
            problem: 0,
            memory_mb: 4,
        };
        let get = |k| analyze(build_kernel(k, &size, 42).by_ref());
        let dgemm = get(Kernel::Dgemm);
        let stream = get(Kernel::Stream);
        let ra = get(Kernel::RandomAccess);
        let fft = get(Kernel::Fft);
        // Spatial: STREAM and DGEMM high, RandomAccess lowest.
        assert!(stream.successor_fraction > 0.9);
        assert!(dgemm.successor_fraction > 0.9);
        assert!(ra.successor_fraction < 0.1);
        assert!(fft.successor_fraction > ra.successor_fraction);
        // Temporal: DGEMM ≫ STREAM; RandomAccess modest; STREAM reuse comes
        // only from multiple passes.
        assert!(dgemm.reuse_fraction > 0.9);
        assert!(ra.reuse_fraction > 0.5); // incidental revisits (8 touches/page)
        assert!(stream.reuse_fraction < 0.95);
    }
}
