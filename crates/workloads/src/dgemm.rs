//! The DGEMM kernel (dense matrix–matrix multiply) and the Figure 10
//! small-working-set variant.
//!
//! DGEMM sits at **high spatial and high temporal** locality in the
//! paper's Figure 4 quadrant: a blocked `C = A·B` sweeps tiles of `A`, `B`
//! and `C` sequentially and revisits the same tiles many times. It also has
//! the highest compute-per-byte of the four kernels (O(n³) flops over O(n²)
//! data), giving it the *lowest paging rate* — the property behind the
//! paper's observation that "DGEMM and FFT have more computation (per data
//! item) and hence lower paging rate than STREAM", which lets AMPoM
//! prefetch less aggressively yet still hide the network (§5.4, Figure 8).
//!
//! ## Model
//!
//! The data region holds three equal matrices. We iterate a blocked
//! product with [`Dgemm::N_TILES`] tiles per matrix: for each `(j, k)` tile
//! pair, walk the A(k)-, B(k)- and C(j)-tiles **in lockstep**, one page
//! from each per step — the page-level shadow of the inner loops touching
//! all three operands. Every matrix is swept [`Dgemm::N_TILES`] times
//! (temporal reuse), and the fault stream seen after a migration is three
//! interleaved sequential lanes (spatial locality), like STREAM's but at a
//! much lower paging rate because of the higher compute per touch — which
//! is exactly the distinction the paper draws in §5.4. Touches scale
//! linearly with memory and compute-per-touch scales with √memory,
//! reproducing DGEMM's O(MB^1.5) total-flops growth.
//!
//! ## Calibration
//!
//! CPU per touch is set so the 575 MB problem costs ≈ 85 s of pure compute,
//! matching the ≈ 140 s openMosix total of Figure 6(a) after the ≈ 54 s
//! eager copy.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// Blocked DGEMM at page granularity.
#[derive(Debug)]
pub struct Dgemm {
    layout: MemoryLayout,
    data_bytes: u64,
    /// Pages per matrix.
    matrix_pages: u64,
    /// Pages per tile.
    tile_pages: u64,
    base: PageId,
    cpu_per_touch: SimDuration,
    // Iteration state: tile indices and position within the current sweep.
    j_tile: u64,
    k_tile: u64,
    phase: u8, // 0 = A tile, 1 = B tile, 2 = C tile
    offset: u64,
    done: bool,
}

impl Dgemm {
    /// Tiles per matrix dimension in the blocked product.
    pub const N_TILES: u64 = 24;

    /// CPU per page-touch at the 575 MB reference size.
    pub const CPU_PER_TOUCH_AT_575MB: SimDuration = SimDuration::from_nanos(24_000);

    /// Reference size for the compute-per-touch scaling.
    const REFERENCE_BYTES: u64 = 575 * 1024 * 1024;

    /// Builds a DGEMM instance over `data_bytes` of memory (three equal
    /// matrices).
    pub fn new(data_bytes: u64) -> Self {
        Self::with_layout(MemoryLayout::with_data_bytes(data_bytes), data_bytes)
    }

    /// Builds a DGEMM whose *arithmetic* covers `work_bytes` inside a
    /// possibly larger `layout` (the Figure 10 small-working-set variant
    /// passes a 575 MB layout with a smaller working set).
    fn with_layout(layout: MemoryLayout, work_bytes: u64) -> Self {
        let work_pages = work_bytes.div_ceil(ampom_mem::PAGE_SIZE);
        assert!(
            work_pages <= layout.data_pages().len(),
            "working set exceeds data region"
        );
        let matrix_pages = (work_pages / 3).max(1);
        let tile_pages = (matrix_pages / Self::N_TILES).max(1);
        // Flops grow as MB^1.5 while touches grow as MB: put the extra
        // factor of sqrt(MB) into the per-touch cost.
        let scale = (work_bytes as f64 / Self::REFERENCE_BYTES as f64).sqrt();
        let cpu = SimDuration::from_nanos(
            ((Self::CPU_PER_TOUCH_AT_575MB.as_nanos() as f64 * scale) as u64).max(100),
        );
        Dgemm {
            base: layout.data_start(),
            layout,
            data_bytes: work_bytes,
            matrix_pages,
            tile_pages,
            cpu_per_touch: cpu,
            j_tile: 0,
            k_tile: 0,
            phase: 0,
            offset: 0,
            done: false,
        }
    }

    fn n_tiles(&self) -> u64 {
        (self.matrix_pages / self.tile_pages).max(1)
    }

    /// Matrix bases: A at 0, B at `matrix_pages`, C at `2·matrix_pages`.
    fn page_for(&self) -> PageId {
        let (matrix, tile) = match self.phase {
            0 => (0, self.k_tile),
            1 => (1, self.k_tile), // B tile indexed by k (column block of j)
            _ => (2, self.j_tile),
        };
        self.base
            .offset(matrix * self.matrix_pages)
            .offset(tile * self.tile_pages + self.offset)
    }
}

impl Iterator for Dgemm {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.done {
            return None;
        }
        let page = self.page_for();
        let write = self.phase == 2;
        let r = MemRef {
            page,
            write,
            cpu: self.cpu_per_touch,
        };
        // Advance: lane (A/B/C) → offset within tile → k tile → j tile.
        self.phase += 1;
        if self.phase == 3 {
            self.phase = 0;
            self.offset += 1;
            if self.offset == self.tile_pages {
                self.offset = 0;
                self.k_tile += 1;
                if self.k_tile == self.n_tiles() {
                    self.k_tile = 0;
                    self.j_tile += 1;
                    if self.j_tile == self.n_tiles() {
                        self.done = true;
                    }
                }
            }
        }
        Some(r)
    }
}

impl Workload for Dgemm {
    fn name(&self) -> &'static str {
        "DGEMM"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        self.n_tiles() * self.n_tiles() * 3 * self.tile_pages
    }
}

/// The Figure 10 variant: "we modified the source code of DGEMM so that it
/// allocates 575MB of memory, but works on matrices of 115MB, 230MB, 345MB,
/// 460MB, and 575MB large."
///
/// The allocation phase dirties the *whole* region (so eager openMosix must
/// move all of it), while the compute stream touches only the working set.
#[derive(Debug)]
pub struct DgemmSmallWs {
    inner: Dgemm,
    alloc_bytes: u64,
}

impl DgemmSmallWs {
    /// Allocates `alloc_bytes` but computes on the first `working_bytes`.
    ///
    /// # Panics
    /// Panics if the working set exceeds the allocation.
    pub fn new(alloc_bytes: u64, working_bytes: u64) -> Self {
        assert!(working_bytes <= alloc_bytes);
        let layout = MemoryLayout::with_data_bytes(alloc_bytes);
        DgemmSmallWs {
            inner: Dgemm::with_layout(layout, working_bytes),
            alloc_bytes,
        }
    }

    /// Bytes allocated (and dirtied) before migration.
    pub fn alloc_bytes(&self) -> u64 {
        self.alloc_bytes
    }

    /// Bytes the compute stream actually touches.
    pub fn working_bytes(&self) -> u64 {
        self.inner.data_bytes
    }
}

impl Iterator for DgemmSmallWs {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        self.inner.next()
    }
}

impl Workload for DgemmSmallWs {
    fn name(&self) -> &'static str {
        "DGEMM-WS"
    }

    fn layout(&self) -> &MemoryLayout {
        self.inner.layout()
    }

    /// The working set only — callers asking "how much data does the
    /// computation cover" get the honest answer; the allocation size is
    /// exposed via [`DgemmSmallWs::alloc_bytes`].
    fn data_bytes(&self) -> u64 {
        self.inner.data_bytes()
    }

    fn total_refs_hint(&self) -> u64 {
        self.inner.total_refs_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;
    use std::collections::BTreeSet;

    #[test]
    fn dgemm_invariants_hold() {
        check_stream_invariants(Dgemm::new(3 * 1024 * 1024));
    }

    #[test]
    fn lanes_interleave_and_advance_sequentially() {
        let mut d = Dgemm::new(4096 * Dgemm::N_TILES * 3 * 4); // 4 pages/tile
        assert_eq!(d.tile_pages, 4);
        let refs: Vec<_> = d.by_ref().take(6).collect();
        // Step 0: A0, B0, C0; step 1: A1, B1, C1 — each lane sequential.
        assert!(refs[3].page.is_succ_of(refs[0].page));
        assert!(refs[4].page.is_succ_of(refs[1].page));
        assert!(refs[5].page.is_succ_of(refs[2].page));
        // Lanes live in different matrices.
        assert!(refs[1].page.distance(refs[0].page) >= d.matrix_pages);
    }

    #[test]
    fn only_c_lane_writes() {
        let d = Dgemm::new(4096 * Dgemm::N_TILES * 3 * 2);
        for (i, r) in d.take(60).enumerate() {
            assert_eq!(r.write, i % 3 == 2, "ref {i}");
        }
    }

    #[test]
    fn every_matrix_page_is_revisited() {
        let d = Dgemm::new(4096 * Dgemm::N_TILES * 3);
        let refs: Vec<_> = d.collect();
        let mut counts = std::collections::HashMap::new();
        for r in &refs {
            *counts.entry(r.page).or_insert(0u64) += 1;
        }
        // Each A/B page is touched once per j_tile (N_TILES times); C pages
        // once per k_tile.
        assert!(counts.values().all(|&c| c >= 2), "temporal reuse present");
    }

    #[test]
    fn compute_calibration_575mb() {
        let d = Dgemm::new(575 * 1024 * 1024);
        let total = d.total_refs_hint() as f64 * d.cpu_per_touch.as_secs_f64();
        assert!(
            (70.0..100.0).contains(&total),
            "575MB DGEMM compute {total}s"
        );
    }

    #[test]
    fn compute_scales_superlinearly() {
        let small = Dgemm::new(115 * 1024 * 1024);
        let large = Dgemm::new(575 * 1024 * 1024);
        let c_small = small.total_refs_hint() as f64 * small.cpu_per_touch.as_secs_f64();
        let c_large = large.total_refs_hint() as f64 * large.cpu_per_touch.as_secs_f64();
        let ratio = c_large / c_small;
        // Memory ratio is 5; flops ratio should be ≈ 5^1.5 ≈ 11.2.
        assert!((8.0..14.0).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn small_ws_touches_only_working_set() {
        let w = DgemmSmallWs::new(64 * 1024 * 1024, 16 * 1024 * 1024);
        let layout = w.layout().clone();
        let ws_pages = 16 * 1024 * 1024 / ampom_mem::PAGE_SIZE;
        let touched: BTreeSet<_> = w.map(|r| r.page).collect();
        let max = touched.iter().max().unwrap();
        assert!(max.index() < layout.data_start().index() + ws_pages);
        // Footprint covers most of the working set but none of the rest.
        assert!(touched.len() as u64 > ws_pages / 2);
    }

    #[test]
    fn small_ws_allocates_full_region() {
        let w = DgemmSmallWs::new(64 * 1024 * 1024, 16 * 1024 * 1024);
        let alloc = w.allocation_pages();
        assert_eq!(alloc.len() as u64, w.layout().data_pages().len());
        assert_eq!(w.alloc_bytes(), 64 * 1024 * 1024);
        assert_eq!(w.working_bytes(), 16 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "working_bytes <= alloc_bytes")]
    fn ws_larger_than_alloc_panics() {
        let _ = DgemmSmallWs::new(1024, 4096 * 100);
    }
}
