//! Reference-trace recording and replay.
//!
//! The AMPoM evaluation is driven by synthetic kernel models, but the
//! system itself only needs a page-reference stream — so any trace
//! captured elsewhere (a real application under instrumentation, another
//! simulator, a hand-written scenario) can drive it. This module defines
//! a minimal line-oriented text format and a [`Replay`] workload:
//!
//! ```text
//! ampom-trace v1 data_bytes=8388608
//! # page  rw  cpu_ns
//! 128 r 13500
//! 129 w 13500
//! ```
//!
//! Round-tripping any workload through [`write_trace`]/[`read_trace`]
//! reproduces it exactly, which the tests assert property-style.

use std::io::{self, BufRead, Write};

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// Magic first-line prefix of the trace format.
pub const MAGIC: &str = "ampom-trace v1";

/// Serialises a reference stream. Returns the number of references
/// written.
pub fn write_trace<W: Write>(
    data_bytes: u64,
    refs: impl Iterator<Item = MemRef>,
    out: &mut W,
) -> io::Result<u64> {
    writeln!(out, "{MAGIC} data_bytes={data_bytes}")?;
    writeln!(out, "# page  rw  cpu_ns")?;
    let mut n = 0;
    for r in refs {
        writeln!(
            out,
            "{} {} {}",
            r.page.index(),
            if r.write { 'w' } else { 'r' },
            r.cpu.as_nanos()
        )?;
        n += 1;
    }
    Ok(n)
}

/// Parses a trace. Returns the declared data size and the references.
pub fn read_trace<R: BufRead>(input: R) -> io::Result<(u64, Vec<MemRef>)> {
    let mut lines = input.lines();
    let header = lines.next().ok_or_else(|| bad("empty trace"))??;
    let rest = header
        .strip_prefix(MAGIC)
        .ok_or_else(|| bad("missing magic header"))?;
    let data_bytes: u64 = rest
        .trim()
        .strip_prefix("data_bytes=")
        .ok_or_else(|| bad("missing data_bytes"))?
        .parse()
        .map_err(|_| bad("bad data_bytes"))?;

    let mut refs = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let page: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_at("page", lineno))?;
        let rw = parts.next().ok_or_else(|| bad_at("rw", lineno))?;
        let write = match rw {
            "r" => false,
            "w" => true,
            _ => return Err(bad_at("rw flag", lineno)),
        };
        let cpu_ns: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_at("cpu_ns", lineno))?;
        if parts.next().is_some() {
            return Err(bad_at("trailing fields", lineno));
        }
        refs.push(MemRef {
            page: PageId(page),
            write,
            cpu: SimDuration::from_nanos(cpu_ns),
        });
    }
    Ok((data_bytes, refs))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("trace: {msg}"))
}

fn bad_at(what: &str, line: usize) -> io::Error {
    bad(&format!("invalid {what} at data line {line}"))
}

/// A workload replaying a previously recorded trace.
#[derive(Debug)]
pub struct Replay {
    layout: MemoryLayout,
    data_bytes: u64,
    refs: std::vec::IntoIter<MemRef>,
    total: u64,
}

impl Replay {
    /// Builds a replay workload from parsed trace contents.
    ///
    /// # Panics
    /// Panics if any reference falls outside the layout implied by
    /// `data_bytes`.
    pub fn new(data_bytes: u64, refs: Vec<MemRef>) -> Self {
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        for r in &refs {
            assert!(
                layout.data_pages().contains(r.page),
                "trace reference {} outside the declared data region",
                r.page
            );
        }
        let total = refs.len() as u64;
        Replay {
            layout,
            data_bytes,
            refs: refs.into_iter(),
            total,
        }
    }

    /// Parses and wraps a trace in one step.
    pub fn from_reader<R: BufRead>(input: R) -> io::Result<Self> {
        let (data_bytes, refs) = read_trace(input)?;
        Ok(Replay::new(data_bytes, refs))
    }
}

impl Iterator for Replay {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        self.refs.next()
    }
}

impl Workload for Replay {
    fn name(&self) -> &'static str {
        "Replay"
    }
    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }
    fn total_refs_hint(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_kernel::StreamKernel;
    use std::io::BufReader;

    #[test]
    fn round_trip_preserves_the_stream() {
        let data_bytes = 2 * 1024 * 1024;
        let original: Vec<MemRef> = StreamKernel::new(data_bytes).collect();
        let mut buf = Vec::new();
        let n = write_trace(data_bytes, original.iter().copied(), &mut buf).unwrap();
        assert_eq!(n as usize, original.len());
        let (parsed_bytes, parsed) = read_trace(BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed_bytes, data_bytes);
        assert_eq!(parsed, original);
    }

    #[test]
    fn replay_behaves_like_the_source_workload() {
        let data_bytes = 1024 * 1024;
        let original: Vec<MemRef> = StreamKernel::new(data_bytes).collect();
        let mut buf = Vec::new();
        write_trace(data_bytes, original.iter().copied(), &mut buf).unwrap();
        let replay = Replay::from_reader(BufReader::new(&buf[..])).unwrap();
        assert_eq!(replay.total_refs_hint() as usize, original.len());
        let replayed: Vec<MemRef> = replay.collect();
        assert_eq!(replayed, original);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("{MAGIC} data_bytes=4096\n# c\n\n0 r 100\n# more\n0 w 200\n");
        let (_, refs) = read_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(refs.len(), 2);
        assert!(!refs[0].write);
        assert!(refs[1].write);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        for bad in [
            "".to_string(),
            "wrong header\n".to_string(),
            format!("{MAGIC} data_bytes=nope\n"),
            format!("{MAGIC} data_bytes=4096\nx r 1\n"),
            format!("{MAGIC} data_bytes=4096\n0 q 1\n"),
            format!("{MAGIC} data_bytes=4096\n0 r 1 extra\n"),
        ] {
            assert!(
                read_trace(BufReader::new(bad.as_bytes())).is_err(),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside the declared data region")]
    fn out_of_range_reference_panics() {
        let r = MemRef::read(PageId(10_000_000), SimDuration::from_nanos(1));
        let _ = Replay::new(4096, vec![r]);
    }
}
