//! HPL (high-performance Linpack: LU factorisation) — an extension
//! workload.
//!
//! The paper skips HPL ("network communication performance in parallel
//! programs is not the focus", §5.1), but its single-node memory pattern
//! is distinctive and worth exercising: right-looking LU factors a panel
//! of columns (narrow, revisited several times) and then sweeps the
//! *shrinking* trailing submatrix once per step. Early pages go cold as
//! the factorisation advances — a drifting working set that neither
//! STREAM (uniform sweeps) nor DGEMM (uniform tiles) produces. AMPoM's
//! window only ever sees the live frontier, so prefetching should track
//! the shrinking trailing region naturally.
//!
//! ## Model
//!
//! A matrix of `P` pages in panels of [`Hpl::PANEL_PAGES`]. Step `k`:
//! the panel `[kB, (k+1)B)` is swept [`Hpl::PANEL_PASSES`] times
//! (factorisation + pivoting), then the trailing region `[(k+1)B, P)` is
//! swept once (the rank-`nb` update). Compute per touch is DGEMM-class.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// Right-looking LU factorisation at page granularity.
#[derive(Debug)]
pub struct Hpl {
    layout: MemoryLayout,
    data_bytes: u64,
    pages: u64,
    base: PageId,
    cpu_per_touch: SimDuration,
    // Iteration state.
    step: u64,
    phase: Phase,
    offset: u64,
    pass: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Panel,
    Trailing,
    Done,
}

impl Hpl {
    /// Pages per panel.
    pub const PANEL_PAGES: u64 = 32;

    /// Sweeps over each panel (factor + pivot search + swap).
    pub const PANEL_PASSES: u32 = 3;

    /// CPU per page-touch (BLAS-3 update work).
    pub const CPU_PER_TOUCH: SimDuration = SimDuration::from_nanos(22_000);

    /// Builds an HPL instance over `data_bytes` of matrix.
    pub fn new(data_bytes: u64) -> Self {
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let pages = layout.data_pages().len();
        Hpl {
            base: layout.data_start(),
            layout,
            data_bytes,
            pages,
            cpu_per_touch: Self::CPU_PER_TOUCH,
            step: 0,
            phase: Phase::Panel,
            offset: 0,
            pass: 0,
        }
    }

    fn steps(&self) -> u64 {
        self.pages.div_ceil(Self::PANEL_PAGES)
    }

    fn panel_start(&self) -> u64 {
        self.step * Self::PANEL_PAGES
    }

    fn panel_len(&self) -> u64 {
        Self::PANEL_PAGES.min(self.pages - self.panel_start())
    }
}

impl Iterator for Hpl {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        loop {
            match self.phase {
                Phase::Done => return None,
                Phase::Panel => {
                    let len = self.panel_len();
                    if self.offset < len {
                        let page = self.base.offset(self.panel_start() + self.offset);
                        self.offset += 1;
                        return Some(MemRef::write(page, self.cpu_per_touch));
                    }
                    self.offset = 0;
                    self.pass += 1;
                    if self.pass >= Self::PANEL_PASSES {
                        self.pass = 0;
                        self.phase = Phase::Trailing;
                    }
                }
                Phase::Trailing => {
                    let trailing_start = self.panel_start() + self.panel_len();
                    if trailing_start + self.offset < self.pages {
                        let page = self.base.offset(trailing_start + self.offset);
                        self.offset += 1;
                        return Some(MemRef::write(page, self.cpu_per_touch));
                    }
                    self.offset = 0;
                    self.step += 1;
                    self.phase = if self.step >= self.steps() {
                        Phase::Done
                    } else {
                        Phase::Panel
                    };
                }
            }
        }
    }
}

impl Workload for Hpl {
    fn name(&self) -> &'static str {
        "HPL"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        // Per step k: PANEL_PASSES × panel + trailing.
        let steps = self.steps();
        let mut total = 0;
        for k in 0..steps {
            let start = k * Self::PANEL_PAGES;
            let panel = Self::PANEL_PAGES.min(self.pages - start);
            let trailing = self.pages - (start + panel);
            total += u64::from(Self::PANEL_PASSES) * panel + trailing;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;

    #[test]
    fn invariants_hold() {
        check_stream_invariants(Hpl::new(2 * 1024 * 1024));
    }

    #[test]
    fn panel_is_swept_three_times_then_trailing_once() {
        let h = Hpl::new(4096 * 128);
        let refs: Vec<_> = h.collect();
        // First 3×32 touches are the first panel, repeated.
        let first_pass: Vec<_> = refs[..32].iter().map(|r| r.page).collect();
        let second_pass: Vec<_> = refs[32..64].iter().map(|r| r.page).collect();
        assert_eq!(first_pass, second_pass);
        // Then the trailing sweep starts right after the panel.
        assert!(refs[96].page.is_succ_of(refs[31].page));
    }

    #[test]
    fn working_set_shrinks_as_factorisation_advances() {
        let h = Hpl::new(4096 * 256);
        let refs: Vec<_> = h.collect();
        let quarter = refs.len() / 4;
        let early: std::collections::HashSet<_> = refs[..quarter].iter().map(|r| r.page).collect();
        let late: std::collections::HashSet<_> = refs[refs.len() - quarter..]
            .iter()
            .map(|r| r.page)
            .collect();
        assert!(
            late.len() < early.len(),
            "late working set {} < early {}",
            late.len(),
            early.len()
        );
        // The final touches never revisit the first panel.
        let first_panel_max = refs[0].page.offset(Hpl::PANEL_PAGES);
        assert!(refs.last().unwrap().page > first_panel_max);
    }

    #[test]
    fn hint_matches_actual_length() {
        let h = Hpl::new(4096 * 300);
        let hint = h.total_refs_hint();
        assert_eq!(Hpl::new(4096 * 300).count() as u64, hint);
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = Hpl::new(1024 * 1024).collect();
        let b: Vec<_> = Hpl::new(1024 * 1024).collect();
        assert_eq!(a, b);
    }
}
