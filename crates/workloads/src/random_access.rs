//! The RandomAccess kernel (GUPS — giga-updates per second).
//!
//! RandomAccess sits at **low spatial, low temporal** locality in the
//! paper's Figure 4 quadrant: it XOR-updates uniformly random words of a
//! huge table, so consecutive touches land on unrelated pages and pages are
//! revisited only by coincidence. It is the adversarial case for AMPoM —
//! "the prefetching scheme, which relies on spatial locality of memory
//! access, fails to enhance the performance" — yet the paper still measures
//! an 85% fault-prevention rate (Figure 7) because random streams
//! occasionally contain short sequential runs that trigger baseline
//! read-ahead-like prefetching (§5.3).
//!
//! ## Model and down-scaling
//!
//! Real GUPS performs billions of word updates. Simulating each one as an
//! event is pointless at page granularity: what AMPoM observes is *which
//! page* each update hits and *how much compute* happens between faults.
//! We therefore aggregate [`RandomAccess::UPDATES_PER_TOUCH`] consecutive
//! word-updates into one simulated touch of a uniformly random page, and
//! emit [`RandomAccess::TOUCH_FACTOR`] × table-pages touches so each page
//! is hit ~8 times on average. The aggregation is identical across all
//! three migration schemes, so every comparison the paper makes is
//! preserved (DESIGN.md §7). CPU per touch is calibrated so the 513 MB run
//! costs ≈ 150 s of pure compute, matching the ≈ 200 s openMosix total of
//! Figure 6(c).

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// GUPS at page granularity: uniformly random page updates.
#[derive(Debug)]
pub struct RandomAccess {
    layout: MemoryLayout,
    data_bytes: u64,
    table_pages: u64,
    base: PageId,
    total_touches: u64,
    emitted: u64,
    rng: SimRng,
}

impl RandomAccess {
    /// Average times each table page is touched over the run (HPCC
    /// performs 4 × table-size updates; at ~2 pages of stride per update
    /// burst this lands each page a handful of times).
    pub const TOUCH_FACTOR: u64 = 8;

    /// Word-updates aggregated into one simulated page touch (down-scaling
    /// knob; see module docs).
    pub const UPDATES_PER_TOUCH: u64 = 1024;

    /// CPU per simulated touch: `UPDATES_PER_TOUCH` dependent random DRAM
    /// round trips on a P4 2 GHz (≈ 140 ns each).
    pub const CPU_PER_TOUCH: SimDuration = SimDuration::from_nanos(143_000);

    /// Builds a RandomAccess instance over a `data_bytes` table.
    pub fn new(data_bytes: u64, rng: SimRng) -> Self {
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let table_pages = layout.data_pages().len();
        RandomAccess {
            base: layout.data_start(),
            layout,
            data_bytes,
            table_pages,
            total_touches: table_pages * Self::TOUCH_FACTOR,
            emitted: 0,
            rng,
        }
    }
}

impl Iterator for RandomAccess {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.emitted >= self.total_touches {
            return None;
        }
        self.emitted += 1;
        let page = self.base.offset(self.rng.below(self.table_pages));
        // GUPS is read-modify-write: every touch dirties its page.
        Some(MemRef {
            page,
            write: true,
            cpu: Self::CPU_PER_TOUCH,
        })
    }
}

impl Workload for RandomAccess {
    fn name(&self) -> &'static str {
        "RandomAccess"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        self.total_touches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;
    use std::collections::HashSet;

    fn build(bytes: u64, seed: u64) -> RandomAccess {
        RandomAccess::new(bytes, SimRng::seed_from_u64(seed))
    }

    #[test]
    fn invariants_hold() {
        check_stream_invariants(build(2 * 1024 * 1024, 1));
    }

    #[test]
    fn touches_are_all_writes() {
        assert!(build(1024 * 1024, 2).take(100).all(|r| r.write));
    }

    #[test]
    fn coverage_is_near_complete() {
        // With TOUCH_FACTOR=8, the fraction of never-touched pages should
        // be ≈ e^-8 ≈ 0.03%.
        let w = build(8 * 1024 * 1024, 3);
        let total = w.layout().data_pages().len();
        let touched: HashSet<_> = w.map(|r| r.page).collect();
        let coverage = touched.len() as f64 / total as f64;
        assert!(coverage > 0.99, "coverage {coverage}");
    }

    #[test]
    fn stream_has_no_spatial_locality() {
        // Count successor-pairs in the stream: for uniform random pages the
        // expected fraction is ~1/pages, i.e. essentially zero.
        let refs: Vec<_> = build(8 * 1024 * 1024, 4).collect();
        let succ = refs
            .windows(2)
            .filter(|w| w[1].page.is_succ_of(w[0].page))
            .count();
        let frac = succ as f64 / refs.len() as f64;
        assert!(frac < 0.01, "successor fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<_> = build(1024 * 1024, 9).collect();
        let b: Vec<_> = build(1024 * 1024, 9).collect();
        assert_eq!(a, b);
        let c: Vec<_> = build(1024 * 1024, 10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn compute_calibration_513mb() {
        let w = build(513 * 1024 * 1024, 5);
        let total = w.total_refs_hint() as f64 * RandomAccess::CPU_PER_TOUCH.as_secs_f64();
        assert!(
            (120.0..180.0).contains(&total),
            "513MB GUPS compute {total}s"
        );
    }
}
