//! Zipfian key-value reuse — high temporal, zero spatial locality.
//!
//! Serving workloads (caches, KV stores, session tables) re-touch a small
//! set of hot keys with a heavy-tailed popularity curve, but the hot keys
//! are *hash-scattered* across the heap: temporal locality is extreme while
//! spatial locality is nil. For a stride-census prefetcher this is the
//! mirror image of [`crate::pointer_chase`] — here the working set is tiny
//! and re-used, so once the hot pages are resident the fault stream dries
//! up, and any strides the census finds during warm-up are accidents of the
//! hash placement.
//!
//! [`ZipfianKv`] samples keys from a Zipf(`s`) popularity distribution by
//! inverse-CDF over the precomputed harmonic weights, and maps each key to
//! a page drawn uniformly (without replacement) from the data region, i.e.
//! rank-adjacent keys are *not* page-adjacent.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// A Zipf-popularity key-value access stream over scattered pages.
#[derive(Debug)]
pub struct ZipfianKv {
    layout: MemoryLayout,
    data_bytes: u64,
    base: PageId,
    /// `key_page[rank]` is the page offset holding the rank-th hottest key.
    key_page: Vec<u64>,
    /// Cumulative Zipf weights, `cdf[rank]` = P(key_rank <= rank).
    cdf: Vec<f64>,
    ops: u64,
    write_ratio: f64,
    cpu_per_op: SimDuration,
    rng: SimRng,
    done: u64,
}

impl ZipfianKv {
    /// CPU per operation: a hash probe plus value copy.
    pub const CPU_PER_OP: SimDuration = SimDuration::from_micros(6);
    /// Fraction of operations that write (dirty) the key's page.
    pub const WRITE_RATIO: f64 = 0.1;

    /// Builds a store of `keys` single-page values inside `data_bytes` of
    /// heap, issuing `ops` lookups with Zipf exponent `s` (s = 0 is
    /// uniform; the classic web-caching fit is s ≈ 0.8–1.0).
    pub fn new(data_bytes: u64, keys: u64, s: f64, ops: u64, mut rng: SimRng) -> Self {
        assert!(keys > 0 && ops > 0, "need keys and ops");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be >= 0");
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let total_pages = layout.data_pages().len();
        assert!(keys <= total_pages, "more keys than pages");
        // Scatter keys over the heap: a shuffled prefix of the page list,
        // so popularity rank and page address are uncorrelated.
        let mut pages: Vec<u64> = (0..total_pages).collect();
        rng.shuffle(&mut pages);
        pages.truncate(keys as usize);
        // Inverse-CDF table for Zipf(s): weight(rank) = 1 / (rank+1)^s.
        let mut cdf = Vec::with_capacity(keys as usize);
        let mut acc = 0.0f64;
        for rank in 0..keys {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfianKv {
            base: layout.data_start(),
            layout,
            data_bytes,
            key_page: pages,
            cdf,
            ops,
            write_ratio: Self::WRITE_RATIO,
            cpu_per_op: Self::CPU_PER_OP,
            rng,
            done: 0,
        }
    }

    /// Number of distinct keys (and hence distinct touchable pages).
    pub fn keys(&self) -> u64 {
        self.key_page.len() as u64
    }
}

impl Iterator for ZipfianKv {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.done >= self.ops {
            return None;
        }
        self.done += 1;
        let u = self.rng.unit_f64();
        let rank = self.cdf.partition_point(|&c| c < u);
        let rank = rank.min(self.key_page.len() - 1);
        let page = self.base.offset(self.key_page[rank]);
        let write = self.rng.chance(self.write_ratio);
        Some(if write {
            MemRef::write(page, self.cpu_per_op)
        } else {
            MemRef::read(page, self.cpu_per_op)
        })
    }
}

impl Workload for ZipfianKv {
    fn name(&self) -> &'static str {
        "ZipfianKV"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    use crate::memref::testutil::check_stream_invariants;

    fn build(mb: u64, keys: u64, s: f64, ops: u64, seed: u64) -> ZipfianKv {
        ZipfianKv::new(mb * 1024 * 1024, keys, s, ops, SimRng::seed_from_u64(seed))
    }

    #[test]
    fn invariants_hold() {
        check_stream_invariants(build(4, 200, 0.9, 3_000, 2));
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let w = build(4, 500, 1.0, 20_000, 4);
        let mut counts: HashMap<PageId, u64> = HashMap::new();
        for r in w {
            *counts.entry(r.page).or_default() += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top10: u64 = freqs.iter().take(10).sum();
        // Zipf(1.0) over 500 keys puts ~43% of mass on the top 10 ranks.
        assert!(
            top10 * 10 > total * 3,
            "top-10 share {top10}/{total} not heavy-tailed"
        );
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let w = build(4, 64, 0.0, 32_000, 6);
        let mut counts: HashMap<PageId, u64> = HashMap::new();
        for r in w {
            *counts.entry(r.page).or_default() += 1;
        }
        assert_eq!(counts.len(), 64, "uniform sampling reaches every key");
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        assert!(max < min * 2, "uniform counts should be flat: {min}..{max}");
    }

    #[test]
    fn hot_keys_are_spatially_scattered() {
        let w = build(16, 100, 1.0, 1, 8);
        let mut offsets: Vec<u64> = w.key_page.clone();
        offsets.sort_unstable();
        // The 100 hottest keys span the heap, not one contiguous run.
        let span = offsets.last().unwrap() - offsets.first().unwrap();
        assert!(span > 1_000, "keys clumped into a span of {span} pages");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = build(2, 50, 0.8, 500, 9).collect();
        let b: Vec<_> = build(2, 50, 0.8, 500, 9).collect();
        assert_eq!(a, b);
    }
}
