//! An interactive-application workload — the paper's §5.6 motivation.
//!
//! "Interactive applications which need to wait for user's input are often
//! large in size (e.g., those with graphical user interfaces), but might
//! not require to perform all functions at one time."
//!
//! [`Interactive`] models such a process: a large allocated address space
//! of which each user action ("burst") touches only one small, contiguous
//! feature region, with think time between bursts. After a migration,
//! eager openMosix must move the whole dirty space; AMPoM moves only the
//! regions the user actually exercises. Think time is modelled as CPU
//! attached to the burst's last touch — for scheme comparisons only wall
//! time matters.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// A bursty, large-footprint, small-working-set application.
#[derive(Debug)]
pub struct Interactive {
    layout: MemoryLayout,
    data_bytes: u64,
    total_pages: u64,
    base: PageId,
    bursts: u32,
    burst_pages: u64,
    think_time: SimDuration,
    cpu_per_touch: SimDuration,
    rng: SimRng,
    // Iteration state.
    burst: u32,
    within: u64,
    region_start: u64,
}

impl Interactive {
    /// CPU per touch during a burst (UI-level work).
    pub const CPU_PER_TOUCH: SimDuration = SimDuration::from_micros(30);

    /// Builds an interactive app over `data_bytes` of allocated memory,
    /// performing `bursts` user actions of `burst_pages` pages each, with
    /// `think_time` between actions.
    pub fn new(
        data_bytes: u64,
        bursts: u32,
        burst_pages: u64,
        think_time: SimDuration,
        mut rng: SimRng,
    ) -> Self {
        assert!(bursts > 0 && burst_pages > 0);
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let total_pages = layout.data_pages().len();
        assert!(burst_pages <= total_pages, "burst larger than the heap");
        let region_start = rng.below(total_pages - burst_pages + 1);
        Interactive {
            base: layout.data_start(),
            layout,
            data_bytes,
            total_pages,
            bursts,
            burst_pages,
            think_time,
            cpu_per_touch: Self::CPU_PER_TOUCH,
            rng,
            burst: 0,
            within: 0,
            region_start,
        }
    }

    /// Upper bound on the pages this run can touch.
    pub fn max_working_set(&self) -> u64 {
        (self.bursts as u64 * self.burst_pages).min(self.total_pages)
    }
}

impl Iterator for Interactive {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.burst >= self.bursts {
            return None;
        }
        let page = self.base.offset(self.region_start + self.within);
        let last_of_burst = self.within + 1 == self.burst_pages;
        let cpu = if last_of_burst {
            // Think time charged at the end of each user action.
            self.cpu_per_touch + self.think_time
        } else {
            self.cpu_per_touch
        };
        let r = MemRef::write(page, cpu);
        self.within += 1;
        if last_of_burst {
            self.within = 0;
            self.burst += 1;
            if self.burst < self.bursts {
                self.region_start = self.rng.below(self.total_pages - self.burst_pages + 1);
            }
        }
        Some(r)
    }
}

impl Workload for Interactive {
    fn name(&self) -> &'static str {
        "Interactive"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        self.bursts as u64 * self.burst_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;

    fn build(mb: u64, bursts: u32, pages: u64) -> Interactive {
        Interactive::new(
            mb * 1024 * 1024,
            bursts,
            pages,
            SimDuration::from_millis(200),
            SimRng::seed_from_u64(5),
        )
    }

    #[test]
    fn invariants_hold() {
        check_stream_invariants(build(4, 6, 32));
    }

    #[test]
    fn bursts_are_contiguous_sweeps() {
        let w = build(8, 3, 16);
        let refs: Vec<_> = w.collect();
        for burst in refs.chunks(16) {
            for pair in burst.windows(2) {
                assert!(pair[1].page.is_succ_of(pair[0].page));
            }
        }
    }

    #[test]
    fn think_time_lands_on_burst_boundaries() {
        let w = build(8, 2, 8);
        let refs: Vec<_> = w.collect();
        assert!(refs[7].cpu > SimDuration::from_millis(100));
        assert!(refs[6].cpu < SimDuration::from_millis(1));
        assert!(refs[15].cpu > SimDuration::from_millis(100));
    }

    #[test]
    fn working_set_is_a_small_fraction_of_footprint() {
        let w = build(64, 4, 64);
        let total = w.layout().data_pages().len();
        let max_ws = w.max_working_set();
        let touched: std::collections::HashSet<_> = w.map(|r| r.page).collect();
        assert!(touched.len() as u64 <= max_ws);
        assert!((touched.len() as u64) < total / 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = build(4, 5, 16).collect();
        let b: Vec<_> = build(4, 5, 16).collect();
        assert_eq!(a, b);
    }
}
