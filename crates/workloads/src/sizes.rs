//! The paper's Table 1: problem sizes and memory sizes.
//!
//! "Table 1 lists the problem sizes specified in the configuration file of
//! HPCC and the corresponding memory sizes. The intention of these
//! configurations is to cover the program sizes about evenly in the range
//! of 100MB to 500MB."

use std::fmt;

/// The four HPCC kernels the paper evaluates (HPL, PTRANS and b_eff are
/// skipped, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Dense matrix–matrix multiply: high spatial and temporal locality.
    Dgemm,
    /// McCalpin STREAM: high spatial, low temporal locality.
    Stream,
    /// GUPS random updates: low spatial and temporal locality.
    RandomAccess,
    /// 1-D FFT: middling spatial and temporal locality.
    Fft,
}

impl Kernel {
    /// All four kernels in the paper's presentation order.
    pub const ALL: [Kernel; 4] = [
        Kernel::Dgemm,
        Kernel::Stream,
        Kernel::RandomAccess,
        Kernel::Fft,
    ];

    /// The kernel's name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Dgemm => "DGEMM",
            Kernel::Stream => "STREAM",
            Kernel::RandomAccess => "RandomAccess",
            Kernel::Fft => "FFT",
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row cell of Table 1: an HPCC problem-size parameter and the memory
/// it makes the kernel allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemSize {
    /// The HPCC configuration parameter (matrix order, vector length, …).
    pub problem: u64,
    /// Allocated memory in MB (the paper reports MB).
    pub memory_mb: u64,
}

impl ProblemSize {
    /// Allocated memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_mb * 1024 * 1024
    }
}

/// Table 1, DGEMM row.
pub const DGEMM_SIZES: [ProblemSize; 5] = [
    ProblemSize {
        problem: 7600,
        memory_mb: 115,
    },
    ProblemSize {
        problem: 10850,
        memory_mb: 230,
    },
    ProblemSize {
        problem: 13350,
        memory_mb: 345,
    },
    ProblemSize {
        problem: 15450,
        memory_mb: 460,
    },
    ProblemSize {
        problem: 17350,
        memory_mb: 575,
    },
];

/// Table 1, STREAM row.
pub const STREAM_SIZES: [ProblemSize; 5] = [
    ProblemSize {
        problem: 7750,
        memory_mb: 115,
    },
    ProblemSize {
        problem: 11000,
        memory_mb: 230,
    },
    ProblemSize {
        problem: 13450,
        memory_mb: 345,
    },
    ProblemSize {
        problem: 15520,
        memory_mb: 460,
    },
    ProblemSize {
        problem: 17400,
        memory_mb: 575,
    },
];

/// Table 1, RandomAccess & FFT row (the two kernels share sizes).
pub const RANDOM_ACCESS_FFT_SIZES: [ProblemSize; 4] = [
    ProblemSize {
        problem: 8000,
        memory_mb: 65,
    },
    ProblemSize {
        problem: 11000,
        memory_mb: 129,
    },
    ProblemSize {
        problem: 16000,
        memory_mb: 260,
    },
    ProblemSize {
        problem: 23000,
        memory_mb: 513,
    },
];

/// The Table 1 sizes for a kernel.
pub fn sizes_for(kernel: Kernel) -> &'static [ProblemSize] {
    match kernel {
        Kernel::Dgemm => &DGEMM_SIZES,
        Kernel::Stream => &STREAM_SIZES,
        Kernel::RandomAccess | Kernel::Fft => &RANDOM_ACCESS_FFT_SIZES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_exactly() {
        assert_eq!(DGEMM_SIZES[0].problem, 7600);
        assert_eq!(DGEMM_SIZES[4].memory_mb, 575);
        assert_eq!(STREAM_SIZES[2].problem, 13450);
        assert_eq!(STREAM_SIZES[4].memory_mb, 575);
        assert_eq!(RANDOM_ACCESS_FFT_SIZES[0].memory_mb, 65);
        assert_eq!(
            RANDOM_ACCESS_FFT_SIZES[3],
            ProblemSize {
                problem: 23000,
                memory_mb: 513
            }
        );
    }

    #[test]
    fn sizes_cover_the_paper_range() {
        for k in Kernel::ALL {
            let sizes = sizes_for(k);
            assert!(sizes.len() >= 4);
            assert!(sizes.first().unwrap().memory_mb <= 115);
            assert!(sizes.last().unwrap().memory_mb >= 500);
            // Monotonically increasing in both columns.
            assert!(sizes
                .windows(2)
                .all(|w| w[0].problem < w[1].problem && w[0].memory_mb < w[1].memory_mb));
        }
    }

    #[test]
    fn memory_bytes_conversion() {
        assert_eq!(
            ProblemSize {
                problem: 1,
                memory_mb: 2
            }
            .memory_bytes(),
            2 * 1024 * 1024
        );
    }

    #[test]
    fn kernel_names_match_paper() {
        assert_eq!(Kernel::Dgemm.to_string(), "DGEMM");
        assert_eq!(Kernel::Stream.to_string(), "STREAM");
        assert_eq!(Kernel::RandomAccess.to_string(), "RandomAccess");
        assert_eq!(Kernel::Fft.to_string(), "FFT");
    }
}
