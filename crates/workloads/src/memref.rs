//! The page-reference stream abstraction.
//!
//! A [`Workload`] is an iterator of [`MemRef`]s — the post-migration
//! execution of an HPCC kernel as the virtual-memory system perceives it.
//! The experiment protocol of paper §5.1 ("we initiated migration right
//! after a kernel has finished allocating the required memory") is encoded
//! in [`Workload::allocation_pages`]: those pages are dirtied on the home
//! node *before* migration, and the iterator yields the references the
//! migrant makes *after* it.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::time::SimDuration;

/// One page-granular step of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// The page touched.
    pub page: PageId,
    /// Whether the touch writes (dirties) the page.
    pub write: bool,
    /// CPU time the kernel spends on this touch (arithmetic plus all
    /// accesses that stay within the page).
    pub cpu: SimDuration,
}

impl MemRef {
    /// A read touch.
    pub fn read(page: PageId, cpu: SimDuration) -> Self {
        MemRef {
            page,
            write: false,
            cpu,
        }
    }

    /// A write touch.
    pub fn write(page: PageId, cpu: SimDuration) -> Self {
        MemRef {
            page,
            write: true,
            cpu,
        }
    }
}

/// A post-migration execution trace at page granularity.
///
/// Implementors are deterministic: two instances built with the same
/// parameters and seed yield identical streams, which is what makes the
/// three migration schemes comparable on "the same" run.
pub trait Workload: Iterator<Item = MemRef> {
    /// Kernel name as the paper spells it.
    fn name(&self) -> &'static str;

    /// The address-space layout (code + data + stack).
    fn layout(&self) -> &MemoryLayout;

    /// Bytes of data the kernel allocates (the Table 1 "memory size").
    fn data_bytes(&self) -> u64;

    /// Pages dirtied during the pre-migration allocation phase. For the
    /// HPCC kernels this is the whole data region ("all HPCC programs
    /// access their entire address spaces"); the small-working-set DGEMM
    /// variant also allocates everything — that is its point.
    fn allocation_pages(&self) -> Vec<PageId> {
        self.layout().data_pages().iter().collect()
    }

    /// Expected number of references the iterator will yield (exact for
    /// the deterministic kernels; used for progress accounting and
    /// pre-sizing).
    fn total_refs_hint(&self) -> u64;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Drains a workload and sanity-checks stream-level invariants shared
    /// by every kernel: non-empty, every page within the data region,
    /// positive CPU on every touch, and length matching the hint.
    pub fn check_stream_invariants<W: Workload>(mut w: W) -> Vec<MemRef> {
        let hint = w.total_refs_hint();
        let layout = w.layout().clone();
        let refs: Vec<MemRef> = w.by_ref().collect();
        assert!(!refs.is_empty(), "empty reference stream");
        assert_eq!(refs.len() as u64, hint, "total_refs_hint mismatch");
        for r in &refs {
            assert!(
                layout.data_pages().contains(r.page),
                "reference {page} outside data region",
                page = r.page
            );
            assert!(r.cpu > SimDuration::ZERO, "zero-cost touch");
        }
        refs
    }
}
