//! Property tests for the workload generators.

use ampom_sim::propcheck::{forall, Gen};
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;
use ampom_workloads::memref::Workload;
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::{build_kernel, Kernel};

fn random_kernel(g: &mut Gen) -> Kernel {
    *g.choose(&[
        Kernel::Dgemm,
        Kernel::Stream,
        Kernel::RandomAccess,
        Kernel::Fft,
    ])
}

#[test]
fn every_kernel_stream_is_wellformed() {
    forall("kernel-wellformed", 48, |g| {
        let kernel = random_kernel(g);
        let mb = g.u64(1..8);
        let seed = g.u64(0..100);
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        let mut w = build_kernel(kernel, &size, seed);
        let hint = w.total_refs_hint();
        let layout = w.layout().clone();
        let mut count = 0u64;
        for r in w.by_ref() {
            assert!(
                layout.data_pages().contains(r.page),
                "{kernel:?} ref outside data"
            );
            assert!(r.cpu > SimDuration::ZERO);
            count += 1;
            assert!(count <= hint, "{kernel:?} exceeded its hint");
        }
        assert_eq!(count, hint, "{kernel:?} hint mismatch");
    });
}

#[test]
fn kernels_are_deterministic_per_seed() {
    forall("kernel-deterministic", 48, |g| {
        let kernel = random_kernel(g);
        let mb = g.u64(1..4);
        let seed = g.u64(0..100);
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        let a: Vec<_> = build_kernel(kernel, &size, seed).by_ref().collect();
        let b: Vec<_> = build_kernel(kernel, &size, seed).by_ref().collect();
        assert_eq!(a, b);
    });
}

#[test]
fn allocation_covers_every_touched_page() {
    forall("allocation-covers", 48, |g| {
        let kernel = random_kernel(g);
        let mb = g.u64(1..4);
        let seed = g.u64(0..50);
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        let mut w = build_kernel(kernel, &size, seed);
        let allocated: std::collections::HashSet<_> = w.allocation_pages().into_iter().collect();
        for r in w.by_ref() {
            assert!(
                allocated.contains(&r.page),
                "{kernel:?} touched unallocated {}",
                r.page
            );
        }
    });
}

#[test]
fn sequential_kernels_cover_their_footprint() {
    forall("sequential-coverage", 24, |g| {
        let mb = g.u64(1..6);
        let seed = g.u64(0..20);
        // STREAM and FFT touch (almost) every allocated data page.
        for kernel in [Kernel::Stream, Kernel::Fft] {
            let size = ProblemSize {
                problem: 0,
                memory_mb: mb,
            };
            let mut w = build_kernel(kernel, &size, seed);
            let data_pages = w.layout().data_pages().len();
            let touched: std::collections::HashSet<_> = w.by_ref().map(|r| r.page).collect();
            assert!(
                touched.len() as u64 >= data_pages * 95 / 100,
                "{kernel:?}: {} of {}",
                touched.len(),
                data_pages
            );
        }
    });
}

#[test]
fn small_ws_dgemm_respects_bounds() {
    forall("small-ws-bounds", 48, |g| {
        use ampom_workloads::dgemm::DgemmSmallWs;
        let alloc_mb = g.u64(4..16);
        let frac = g.u64(1..5);
        let ws_mb = (alloc_mb * frac / 4).max(1);
        let mut w = DgemmSmallWs::new(alloc_mb * 1024 * 1024, ws_mb * 1024 * 1024);
        let ws_pages = ws_mb * 1024 * 1024 / 4096;
        let start = w.layout().data_start();
        for r in w.by_ref() {
            assert!(r.page.index() < start.index() + ws_pages + 3);
        }
    });
}

#[test]
fn random_access_is_seed_sensitive() {
    forall("randomaccess-seeds", 12, |g| {
        let mb = g.u64(1..4);
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        let a: Vec<_> = build_kernel(Kernel::RandomAccess, &size, 1)
            .by_ref()
            .take(100)
            .collect();
        let b: Vec<_> = build_kernel(Kernel::RandomAccess, &size, 2)
            .by_ref()
            .take(100)
            .collect();
        assert_ne!(a, b);
    });
}

#[test]
fn locality_analysis_bounds() {
    forall("locality-bounds", 48, |g| {
        use ampom_workloads::locality::analyze;
        let kernel = random_kernel(g);
        let mb = g.u64(1..4);
        let seed = g.u64(0..20);
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        let w = build_kernel(kernel, &size, seed);
        let a = analyze(w);
        assert!((0.0..=1.0).contains(&a.successor_fraction));
        assert!((0.0..=1.0).contains(&a.reuse_fraction));
        assert!(a.footprint_pages <= a.touches);
        assert!(a.mean_sequential_run >= 1.0 || a.touches == 0);
    });
}

#[test]
fn synthetic_uniform_random_touches_in_range() {
    forall("uniform-random-range", 48, |g| {
        use ampom_workloads::synthetic::UniformRandom;
        let pages = g.u64(1..512);
        let touches = g.u64(1..1000);
        let seed = g.u64(0..50);
        let mut w = UniformRandom::new(
            pages,
            touches,
            SimDuration::from_micros(1),
            SimRng::seed_from_u64(seed),
        );
        let start = w.layout().data_start();
        let mut n = 0;
        for r in w.by_ref() {
            assert!(r.page >= start);
            assert!(r.page.index() < start.index() + pages);
            n += 1;
        }
        assert_eq!(n, touches);
    });
}
