//! Property tests for the workload generators.

use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;
use ampom_workloads::memref::Workload;
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::{build_kernel, Kernel};
use proptest::prelude::*;

fn kernels() -> impl Strategy<Value = Kernel> {
    prop_oneof![
        Just(Kernel::Dgemm),
        Just(Kernel::Stream),
        Just(Kernel::RandomAccess),
        Just(Kernel::Fft),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_kernel_stream_is_wellformed(kernel in kernels(), mb in 1u64..8, seed in 0u64..100) {
        let size = ProblemSize { problem: 0, memory_mb: mb };
        let mut w = build_kernel(kernel, &size, seed);
        let hint = w.total_refs_hint();
        let layout = w.layout().clone();
        let mut count = 0u64;
        for r in w.by_ref() {
            prop_assert!(layout.data_pages().contains(r.page), "{kernel:?} ref outside data");
            prop_assert!(r.cpu > SimDuration::ZERO);
            count += 1;
            prop_assert!(count <= hint, "{kernel:?} exceeded its hint");
        }
        prop_assert_eq!(count, hint, "{:?} hint mismatch", kernel);
    }

    #[test]
    fn kernels_are_deterministic_per_seed(kernel in kernels(), mb in 1u64..4, seed in 0u64..100) {
        let size = ProblemSize { problem: 0, memory_mb: mb };
        let a: Vec<_> = build_kernel(kernel, &size, seed).by_ref().collect();
        let b: Vec<_> = build_kernel(kernel, &size, seed).by_ref().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn allocation_covers_every_touched_page(kernel in kernels(), mb in 1u64..4, seed in 0u64..50) {
        let size = ProblemSize { problem: 0, memory_mb: mb };
        let mut w = build_kernel(kernel, &size, seed);
        let allocated: std::collections::HashSet<_> =
            w.allocation_pages().into_iter().collect();
        for r in w.by_ref() {
            prop_assert!(
                allocated.contains(&r.page),
                "{kernel:?} touched unallocated {}", r.page
            );
        }
    }

    #[test]
    fn sequential_kernels_cover_their_footprint(mb in 1u64..6, seed in 0u64..20) {
        // STREAM and FFT touch (almost) every allocated data page.
        for kernel in [Kernel::Stream, Kernel::Fft] {
            let size = ProblemSize { problem: 0, memory_mb: mb };
            let mut w = build_kernel(kernel, &size, seed);
            let data_pages = w.layout().data_pages().len();
            let touched: std::collections::HashSet<_> = w.by_ref().map(|r| r.page).collect();
            prop_assert!(
                touched.len() as u64 >= data_pages * 95 / 100,
                "{kernel:?}: {} of {}", touched.len(), data_pages
            );
        }
    }

    #[test]
    fn small_ws_dgemm_respects_bounds(alloc_mb in 4u64..16, frac in 1u64..=4) {
        use ampom_workloads::dgemm::DgemmSmallWs;
        let ws_mb = (alloc_mb * frac / 4).max(1);
        let mut w = DgemmSmallWs::new(alloc_mb * 1024 * 1024, ws_mb * 1024 * 1024);
        let ws_pages = ws_mb * 1024 * 1024 / 4096;
        let start = w.layout().data_start();
        for r in w.by_ref() {
            prop_assert!(r.page.index() < start.index() + ws_pages + 3);
        }
    }

    #[test]
    fn random_access_is_seed_sensitive(mb in 1u64..4) {
        let size = ProblemSize { problem: 0, memory_mb: mb };
        let a: Vec<_> = build_kernel(Kernel::RandomAccess, &size, 1).by_ref().take(100).collect();
        let b: Vec<_> = build_kernel(Kernel::RandomAccess, &size, 2).by_ref().take(100).collect();
        prop_assert_ne!(a, b);
    }

    #[test]
    fn locality_analysis_bounds(kernel in kernels(), mb in 1u64..4, seed in 0u64..20) {
        use ampom_workloads::locality::analyze;
        let size = ProblemSize { problem: 0, memory_mb: mb };
        let w = build_kernel(kernel, &size, seed);
        let a = analyze(w);
        prop_assert!((0.0..=1.0).contains(&a.successor_fraction));
        prop_assert!((0.0..=1.0).contains(&a.reuse_fraction));
        prop_assert!(a.footprint_pages <= a.touches);
        prop_assert!(a.mean_sequential_run >= 1.0 || a.touches == 0);
    }

    #[test]
    fn synthetic_uniform_random_touches_in_range(pages in 1u64..512, touches in 1u64..1000, seed in 0u64..50) {
        use ampom_workloads::synthetic::UniformRandom;
        let mut w = UniformRandom::new(pages, touches, SimDuration::from_micros(1), SimRng::seed_from_u64(seed));
        let start = w.layout().data_start();
        let mut n = 0;
        for r in w.by_ref() {
            prop_assert!(r.page >= start);
            prop_assert!(r.page.index() < start.index() + pages);
            n += 1;
        }
        prop_assert_eq!(n, touches);
    }
}
