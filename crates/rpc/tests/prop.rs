//! Property tests of the frame codec (satellite of the live-transport
//! work): every frame type round-trips bit-exactly through the wire
//! encoding, and the decoder never panics — truncated, corrupted,
//! oversized or random bytes always land on a typed [`CodecError`].
//! The multi-migrant work extends the suite to batched replies and the
//! deputy-side coalescing queue: coalescing may merge requests for the
//! same page, but never drops a requested page and never serves an
//! unrequested duplicate.

use std::collections::HashSet;

use ampom_mem::page::{PageId, PAGE_SIZE};
use ampom_rpc::frame::{
    page_payload, CodecError, Frame, FrameBuffer, WireStats, LENGTH_PREFIX_BYTES, MAX_BATCH_PAGES,
    MAX_FRAME_BYTES, WIRE_VERSION,
};
use ampom_rpc::PendingQueue;
use ampom_sim::propcheck::{forall, Gen};

/// One arbitrary frame of any type.
fn arbitrary_frame(g: &mut Gen) -> Frame {
    match g.u64(0..18) {
        0 => Frame::Hello {
            version: g.u64(0..u64::from(u16::MAX) + 1) as u16,
            total_pages: g.u64(0..u64::MAX),
            scheme: g.u64(0..256) as u8,
        },
        1 => Frame::HelloAck {
            version: g.u64(0..u64::from(u16::MAX) + 1) as u16,
            page_size: g.u64(0..u64::from(u32::MAX) + 1) as u32,
        },
        2 => Frame::PageRequest {
            req_id: g.u64(0..u64::MAX),
            pages: g
                .vec_u64(0..65, 0..u64::MAX)
                .into_iter()
                .map(PageId)
                .collect(),
        },
        3 => Frame::PrefetchBatch {
            req_id: g.u64(0..u64::MAX),
            pages: g
                .vec_u64(0..65, 0..u64::MAX)
                .into_iter()
                .map(PageId)
                .collect(),
        },
        4 => Frame::PageReply {
            req_id: g.u64(0..u64::MAX),
            page: PageId(g.u64(0..u64::MAX)),
            data: page_payload(PageId(g.u64(0..1 << 32))),
        },
        5 => Frame::SyscallForward {
            call_id: g.u64(0..u64::MAX),
            work_ns: g.u64(0..u64::MAX),
        },
        6 => Frame::SyscallReply {
            call_id: g.u64(0..u64::MAX),
        },
        7 => Frame::Ping {
            token: g.u64(0..u64::MAX),
        },
        8 => Frame::Pong {
            token: g.u64(0..u64::MAX),
        },
        9 => Frame::StatsFetch,
        10 => Frame::StatsReply(WireStats {
            queued_requests: g.u64(0..u64::MAX),
            max_backlog_ns: g.u64(0..u64::MAX),
            busy_time_ns: g.u64(0..u64::MAX),
            pages_served: g.u64(0..u64::MAX),
            requests_served: g.u64(0..u64::MAX),
            pages_coalesced: g.u64(0..u64::MAX),
            batch_replies: g.u64(0..u64::MAX),
            max_pending_pages: g.u64(0..u64::MAX),
            prefetch_pages_shed: g.u64(0..u64::MAX),
            demand_pages_shed: g.u64(0..u64::MAX),
            shed_events: g.u64(0..u64::MAX),
            hellos_deferred: g.u64(0..u64::MAX),
        }),
        11 => Frame::Error {
            code: g.u64(0..u64::from(u16::MAX) + 1) as u16,
            detail: String::from_utf8_lossy(
                &g.vec_u64(0..40, 32..127)
                    .iter()
                    .map(|&b| b as u8)
                    .collect::<Vec<_>>(),
            )
            .into_owned(),
        },
        12 => Frame::PageBatchReply {
            req_id: g.u64(0..u64::MAX),
            pages: {
                let n = g.usize(0..MAX_BATCH_PAGES + 1);
                (0..n)
                    .map(|_| {
                        let page = PageId(g.u64(0..1 << 32));
                        (page, page_payload(page))
                    })
                    .collect()
            },
        },
        13 => Frame::WritebackBatch {
            seq: g.u64(0..u64::MAX),
            pages: {
                let n = g.usize(0..MAX_BATCH_PAGES + 1);
                (0..n)
                    .map(|_| {
                        let page = PageId(g.u64(0..1 << 32));
                        (page, g.u64(1..1 << 20), page_payload(page))
                    })
                    .collect()
            },
        },
        14 => Frame::WritebackAck {
            seq: g.u64(0..u64::MAX),
            applied: g.u64(0..u64::from(u32::MAX) + 1) as u32,
            duplicates: g.u64(0..u64::from(u32::MAX) + 1) as u32,
        },
        15 => Frame::ReturnRequest,
        16 => Frame::ReturnAck {
            stub_pages: g.u64(0..u64::MAX),
            freed_pages: g.u64(0..u64::MAX),
        },
        _ => Frame::Bye,
    }
}

#[test]
fn every_frame_type_round_trips() {
    forall("frame round-trip", 500, |g| {
        let frame = arbitrary_frame(g);
        let wire = frame.encode();
        // Length prefix accounts for exactly the body.
        let len = u32::from_be_bytes([wire[0], wire[1], wire[2], wire[3]]) as usize;
        assert_eq!(len + LENGTH_PREFIX_BYTES, wire.len());
        let decoded = Frame::decode(&wire[LENGTH_PREFIX_BYTES..]).expect("round trip");
        assert_eq!(decoded, frame);
    });
}

#[test]
fn frame_stream_survives_arbitrary_chunking() {
    forall("chunked stream", 200, |g| {
        let frames: Vec<Frame> = (0..g.usize(1..6)).map(|_| arbitrary_frame(g)).collect();
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        let mut at = 0;
        while at < wire.len() {
            let step = g.usize(1..64.min(wire.len() - at) + 1);
            fb.extend(&wire[at..at + step]);
            at += step;
            while let Some(f) = fb.pop().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(fb.pending(), 0);
    });
}

#[test]
fn truncated_frames_error_without_panicking() {
    forall("truncation", 300, |g| {
        let frame = arbitrary_frame(g);
        let wire = frame.encode();
        let body = &wire[LENGTH_PREFIX_BYTES..];
        // Every strict prefix of the body must decode without panicking.
        // For all fixed-layout frames the decode must be an error; an
        // `Error` frame's detail is the variable-length tail, so its
        // prefixes legitimately decode to a shorter detail string.
        let cut = g.usize(0..body.len());
        match Frame::decode(&body[..cut]) {
            Err(_) => {}
            Ok(decoded) => {
                assert!(
                    matches!(frame, Frame::Error { .. }),
                    "truncated body decoded as {decoded:?}"
                );
            }
        }
    });
}

#[test]
fn corrupted_bytes_never_panic_the_decoder() {
    forall("corruption", 500, |g| {
        let frame = arbitrary_frame(g);
        let mut wire = frame.encode();
        // Flip a handful of random bytes anywhere in the frame.
        for _ in 0..g.usize(1..5) {
            let at = g.usize(0..wire.len());
            wire[at] ^= g.u64(1..256) as u8;
        }
        // Feeding through the stream buffer must yield frames or typed
        // errors — decode and framing must not panic either way.
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        while let Ok(Some(_)) = fb.pop() {}
    });
}

#[test]
fn random_garbage_never_panics() {
    forall("garbage stream", 500, |g| {
        let bytes: Vec<u8> = g
            .vec_u64(0..600, 0..256)
            .into_iter()
            .map(|b| b as u8)
            .collect();
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        while let Ok(Some(_)) = fb.pop() {}
    });
}

#[test]
fn oversized_and_empty_lengths_are_typed_errors() {
    let mut fb = FrameBuffer::new();
    fb.extend(&(MAX_FRAME_BYTES + 1).to_be_bytes());
    assert_eq!(fb.pop(), Err(CodecError::Oversized(MAX_FRAME_BYTES + 1)));

    let mut fb = FrameBuffer::new();
    fb.extend(&0u32.to_be_bytes());
    assert_eq!(fb.pop(), Err(CodecError::Empty));
}

#[test]
fn count_and_page_size_mismatches_are_typed() {
    // PageRequest whose count field promises more ids than the payload.
    let mut wire = Frame::PageRequest {
        req_id: 1,
        pages: vec![PageId(1), PageId(2)],
    }
    .encode();
    // count lives right after [len:4][type:1][req_id:8]
    wire[13..17].copy_from_slice(&3u32.to_be_bytes());
    assert_eq!(
        Frame::decode(&wire[LENGTH_PREFIX_BYTES..]),
        Err(CodecError::BadCount(3))
    );

    // PageReply with a short data block.
    let mut short = Frame::PageReply {
        req_id: 1,
        page: PageId(7),
        data: page_payload(PageId(7)),
    }
    .encode();
    short.truncate(short.len() - 1);
    let body_len = (short.len() - LENGTH_PREFIX_BYTES) as u32;
    short[..4].copy_from_slice(&body_len.to_be_bytes());
    assert_eq!(
        Frame::decode(&short[LENGTH_PREFIX_BYTES..]),
        Err(CodecError::BadPageSize(PAGE_SIZE as usize - 1))
    );
}

#[test]
fn batch_count_cap_is_a_typed_error() {
    // A batch promising more pages than MAX_BATCH_PAGES must be refused
    // before any allocation sized by the count.
    let page = PageId(9);
    let mut wire = Frame::PageBatchReply {
        req_id: 3,
        pages: vec![(page, page_payload(page))],
    }
    .encode();
    // count lives right after [len:4][type:1][req_id:8]
    let bogus = (MAX_BATCH_PAGES + 1) as u32;
    wire[13..17].copy_from_slice(&bogus.to_be_bytes());
    assert_eq!(
        Frame::decode(&wire[LENGTH_PREFIX_BYTES..]),
        Err(CodecError::BadCount(bogus))
    );

    // A count that disagrees with the payload length is equally typed.
    let mut wire = Frame::PageBatchReply {
        req_id: 3,
        pages: vec![(page, page_payload(page))],
    }
    .encode();
    wire[13..17].copy_from_slice(&2u32.to_be_bytes());
    assert_eq!(
        Frame::decode(&wire[LENGTH_PREFIX_BYTES..]),
        Err(CodecError::BadCount(2))
    );
}

#[test]
fn truncated_batches_error_without_panicking() {
    forall("batch truncation", 200, |g| {
        let n = g.usize(1..9);
        let pages: Vec<(PageId, Vec<u8>)> = (0..n)
            .map(|_| {
                let page = PageId(g.u64(0..1 << 20));
                (page, page_payload(page))
            })
            .collect();
        let wire = Frame::PageBatchReply { req_id: 1, pages }.encode();
        let body = &wire[LENGTH_PREFIX_BYTES..];
        let cut = g.usize(0..body.len());
        assert!(
            Frame::decode(&body[..cut]).is_err(),
            "truncated batch decoded"
        );
    });
}

/// The deputy-side coalescing queue: random interleavings of requests
/// and service drains never lose a requested page and never serve a
/// page nobody asked for. Re-requests after service (a retry for a lost
/// reply) legitimately serve again, so the ledger tracks *requested
/// since last served* rather than raw counts.
#[test]
fn coalescing_never_drops_or_duplicates_pages() {
    forall("coalescing queue", 300, |g| {
        let mut q = PendingQueue::new();
        let mut outstanding: HashSet<PageId> = HashSet::new();
        let mut requested = 0u64;
        let mut served: Vec<PageId> = Vec::new();
        for step in 0..g.usize(1..120) {
            if g.bool(0.6) {
                let page = PageId(g.u64(0..24));
                requested += 1;
                let enqueued = q.push(step as u64, page);
                // Coalesced exactly when an unserved request existed.
                assert_eq!(enqueued, outstanding.insert(page));
            } else {
                for (_, page) in q.take(g.usize(0..8)) {
                    assert!(
                        outstanding.remove(&page),
                        "served page {page} nobody was waiting for"
                    );
                    served.push(page);
                }
            }
        }
        // Drain: everything still outstanding must come out exactly once.
        for (_, page) in q.take(usize::MAX) {
            assert!(outstanding.remove(&page), "drained unrequested {page}");
            served.push(page);
        }
        assert!(outstanding.is_empty(), "pages dropped: {outstanding:?}");
        assert!(q.is_empty());
        // Conservation: every request was either served or coalesced.
        assert_eq!(requested, served.len() as u64 + q.coalesced());
        // No duplicates among concurrently-pending serves: a page may
        // appear twice in `served` only via a re-request, which the
        // outstanding ledger already enforced above.
    });
}

#[test]
fn writeback_batch_count_cap_is_a_typed_error() {
    // The lifecycle batch has the same count-cap discipline as the page
    // batch: a bogus count is refused before any allocation it sizes.
    let page = PageId(4);
    let mut wire = Frame::WritebackBatch {
        seq: 6,
        pages: vec![(page, 1, page_payload(page))],
    }
    .encode();
    // count lives right after [len:4][type:1][seq:8]
    let bogus = (MAX_BATCH_PAGES + 1) as u32;
    wire[13..17].copy_from_slice(&bogus.to_be_bytes());
    assert_eq!(
        Frame::decode(&wire[LENGTH_PREFIX_BYTES..]),
        Err(CodecError::BadCount(bogus))
    );

    let mut wire = Frame::WritebackBatch {
        seq: 6,
        pages: vec![(page, 1, page_payload(page))],
    }
    .encode();
    wire[13..17].copy_from_slice(&2u32.to_be_bytes());
    assert_eq!(
        Frame::decode(&wire[LENGTH_PREFIX_BYTES..]),
        Err(CodecError::BadCount(2))
    );
}

#[test]
fn truncated_writeback_batches_error_without_panicking() {
    forall("writeback truncation", 200, |g| {
        let n = g.usize(1..9);
        let pages: Vec<(PageId, u64, Vec<u8>)> = (0..n)
            .map(|_| {
                let page = PageId(g.u64(0..1 << 20));
                (page, g.u64(1..100), page_payload(page))
            })
            .collect();
        let wire = Frame::WritebackBatch { seq: 1, pages }.encode();
        let body = &wire[LENGTH_PREFIX_BYTES..];
        let cut = g.usize(0..body.len());
        assert!(
            Frame::decode(&body[..cut]).is_err(),
            "truncated writeback batch decoded"
        );
    });
}

#[test]
fn version_constant_is_stable() {
    // Bumping WIRE_VERSION is a protocol break; this test makes the bump
    // a conscious edit. Version 2 added PageBatchReply and widened
    // StatsReply with the coalescing counters; version 3 widened
    // StatsReply with the shed/admission counters and made 503 the one
    // non-fatal error code; version 4 added the page-lifecycle frames
    // (WritebackBatch/WritebackAck, ReturnRequest/ReturnAck).
    assert_eq!(WIRE_VERSION, 4);
}
