//! Loopback smoke tests: a real [`DeputyServer`] on 127.0.0.1, a real
//! [`MigrantClient`] underneath the shared runner loop, and the PR 2
//! reliability layer arbitrating timeouts over genuine sockets.
//!
//! These run in CI. They are deliberately small (a few MB of address
//! space) and use generous retry budgets so scheduler jitter on a busy
//! runner cannot produce spurious policy degradations.

use ampom_core::migration::Scheme;
use ampom_core::reliability::{FailurePolicy, RetryPolicy};
use ampom_core::runner::RunConfig;
use ampom_rpc::{
    calibrate_endpoint, run_live, CalibrateOptions, DeputyServer, Endpoint, LiveOptions,
    ServerConfig,
};
use ampom_workloads::stream_kernel::StreamKernel;

/// A retry budget wide enough that loopback jitter never exhausts it.
fn generous() -> LiveOptions {
    LiveOptions {
        retry: RetryPolicy {
            timeout_factor: 50,
            max_retries: 6,
        },
        policy: FailurePolicy::StallReconnect,
        calibrate: CalibrateOptions {
            pings: 8,
            bulk_pages: 64,
        },
    }
}

#[test]
fn stream_migrant_completes_over_tcp_loopback() {
    let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let endpoint = Endpoint::tcp(server.local_addr());

    let mut kernel = StreamKernel::new(4 * 1024 * 1024);
    let cfg = RunConfig::new(Scheme::Ampom);
    let live = run_live(&mut kernel, &cfg, endpoint, &generous()).expect("live run");

    let report = &live.report;
    assert!(report.total_time.as_nanos() > 0);
    assert!(
        report.pages_demand_fetched > 0,
        "a migrant starts empty; something must be demand-fetched"
    );
    assert!(
        report.pages_prefetched > 0,
        "AMPoM over a sequential STREAM pass must prefetch"
    );
    // Zero retry-budget exhaustions: the reliable loopback deputy never
    // forces a degradation.
    assert_eq!(report.faults.reconnects, 0, "no policy degradations");
    assert_eq!(report.faults.deputy_unavailable, 0);
    assert_eq!(report.faults.fallback_pages, 0);
    // The link was actually measured, not defaulted.
    assert!(live.measured.capacity_bytes_per_sec > 0);
    assert!(live.measured.t0.as_nanos() >= 1);

    let stats = server.stats();
    assert!(stats.pages_served > 0);
    assert_eq!(stats.dropped_connections, 0);
    server.shutdown();
}

#[cfg(unix)]
#[test]
fn calibration_and_migrant_work_over_unix_socket() {
    let path = std::env::temp_dir().join(format!("ampom-loopback-{}.sock", std::process::id()));
    let server = DeputyServer::bind_unix(&path, ServerConfig::default()).expect("bind");
    let endpoint = Endpoint::unix(&path);

    let measured = calibrate_endpoint(
        &endpoint,
        &CalibrateOptions {
            pings: 8,
            bulk_pages: 32,
        },
    )
    .expect("calibration");
    assert!(measured.capacity_bytes_per_sec > 0);
    assert!(measured.td.as_nanos() > 0);
    // td is the serialization time of one reply at the measured
    // capacity, so the two must be consistent.
    let lc = measured.link_config();
    assert_eq!(lc.capacity_bytes_per_sec, measured.capacity_bytes_per_sec);
    assert_eq!(lc.latency, measured.t0);

    let mut kernel = StreamKernel::new(1024 * 1024);
    let cfg = RunConfig::new(Scheme::NoPrefetch);
    let live = run_live(&mut kernel, &cfg, endpoint, &generous()).expect("live run");
    assert_eq!(live.report.pages_prefetched, 0);
    assert!(live.report.pages_demand_fetched > 0);
    assert_eq!(live.report.faults.reconnects, 0);

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Four concurrent migrants against one deputy with a two-worker pool:
/// the multiplexed event loop must interleave all sessions (no migrant
/// waits for a whole neighbour run), every run must complete cleanly,
/// and the sharded accounting must add up across connections.
#[test]
fn four_concurrent_migrants_share_one_deputy() {
    let server = DeputyServer::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Hold four raw sessions open at once: with two workers, at least
    // one must multiplex, and the peak-session gauge must see all four.
    {
        let mut probes: Vec<ampom_rpc::MigrantClient> = (0..4)
            .map(|_| {
                ampom_rpc::MigrantClient::connect(Endpoint::tcp(&addr), 64, 2).expect("connect")
            })
            .collect();
        for c in probes.iter_mut() {
            c.ping(std::time::Duration::from_secs(5)).expect("ping");
        }
        let stats = server.stats();
        assert!(
            stats.peak_sessions >= 4,
            "4 live probes, peak {}",
            stats.peak_sessions
        );
        assert!(
            stats.queued_connections >= 2,
            "two workers holding four sessions must have multiplexed"
        );
    }

    let reports: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let endpoint = Endpoint::tcp(&addr);
                s.spawn(move || {
                    let mut kernel = StreamKernel::new(2 * 1024 * 1024);
                    let scheme = if i % 2 == 0 {
                        Scheme::Ampom
                    } else {
                        Scheme::NoPrefetch
                    };
                    let cfg = RunConfig::new(scheme);
                    run_live(&mut kernel, &cfg, endpoint, &generous()).expect("live run")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut fetched = 0u64;
    for live in &reports {
        let report = &live.report;
        assert!(report.pages_demand_fetched > 0);
        assert_eq!(report.faults.reconnects, 0, "reliable deputy, no drops");
        assert_eq!(report.faults.fallback_pages, 0);
        fetched += report.pages_demand_fetched + report.pages_prefetched;
    }
    let stats = server.stats();
    assert!(
        stats.pages_served >= fetched,
        "served {} < the {} pages migrants booked",
        stats.pages_served,
        fetched
    );
    assert_eq!(stats.dropped_connections, 0);
    server.shutdown();
}

/// An admission-bounded deputy sheds prefetch load with non-fatal 503s;
/// the migrant reverts the refused pages, re-fetches them on demand, and
/// the run still completes with every page delivered exactly once.
#[test]
fn bounded_admission_sheds_prefetch_and_the_run_completes() {
    let server = DeputyServer::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            // Well under the client's 64-page in-flight quota, so an
            // AMPoM prefetch storm must overflow the bound.
            max_pending_pages: Some(8),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let endpoint = Endpoint::tcp(server.local_addr());

    let mut kernel = StreamKernel::new(2 * 1024 * 1024);
    let cfg = RunConfig::new(Scheme::Ampom);
    let live = run_live(&mut kernel, &cfg, endpoint, &generous()).expect("live run");

    let report = &live.report;
    assert!(report.pages_demand_fetched > 0);
    assert_eq!(report.faults.fallback_pages, 0, "no eager fallback needed");
    let stats = server.stats();
    assert!(
        stats.prefetch_pages_shed > 0,
        "an 8-page bound under an AMPoM prefetch storm shed nothing"
    );
    assert_eq!(stats.demand_pages_shed, 0, "demand is never shed");
    assert!(stats.shed_events > 0);
    // The deputy-side report the migrant fetched over the wire carries
    // the same counters.
    assert!(report.deputy.prefetch_pages_shed > 0);
    assert_eq!(report.deputy.demand_pages_shed, 0);
    server.shutdown();
}

/// A deputy that drops every connection after a handful of pages: the
/// stall/reconnect policy must fire (degradations over the live path)
/// and the run must still complete correctly.
#[test]
fn dropped_connections_trigger_stall_reconnect_degradations() {
    let server = DeputyServer::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            drop_after_pages: Some(24),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let endpoint = Endpoint::tcp(server.local_addr());

    let opts = LiveOptions {
        // A tight budget so a dropped connection degrades quickly instead
        // of pacing through a long resend ladder.
        retry: RetryPolicy {
            timeout_factor: 1,
            max_retries: 1,
        },
        policy: FailurePolicy::StallReconnect,
        calibrate: CalibrateOptions {
            pings: 4,
            // Fewer bulk pages than the drop threshold, so the
            // calibration session itself survives its connection.
            bulk_pages: 16,
        },
    };

    let mut kernel = StreamKernel::new(1024 * 1024);
    let cfg = RunConfig::new(Scheme::NoPrefetch);
    let live = run_live(&mut kernel, &cfg, endpoint, &opts).expect("live run survives drops");

    let report = &live.report;
    assert!(report.pages_demand_fetched > 0);
    assert!(
        report.faults.reconnects > 0,
        "the failure policy must have fired: {:?}",
        report.faults
    );
    assert!(report.faults.timeouts > 0);
    assert!(report.faults.recovery_time.as_nanos() > 0);

    let stats = server.stats();
    assert!(
        stats.dropped_connections > 0,
        "the fault injector must actually have dropped connections"
    );
    assert!(stats.connections > stats.dropped_connections);
    server.shutdown();
}

/// The full forward half of the page lifecycle over a real socket: a
/// stores-heavy migrant with background writeback enabled must drain
/// every dirty page into the deputy's sink by the end of the run.
#[test]
fn live_run_with_writeback_drains_every_dirty_page() {
    use ampom_core::WritebackSpec;
    use ampom_sim::time::SimDuration;
    use ampom_workloads::synthetic::SequentialWrite;

    let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let endpoint = Endpoint::tcp(server.local_addr());

    let mut w = SequentialWrite::new(512, SimDuration::from_micros(5));
    let cfg = RunConfig::new(Scheme::Ampom).with_writeback(WritebackSpec::default());
    let live = run_live(&mut w, &cfg, endpoint, &generous()).expect("live run");

    let wb = &live.report.writeback;
    assert!(wb.writes_noted > 0, "stores must be noted");
    assert!(wb.batches_sent > 0, "batches must flush");
    assert_eq!(
        wb.pages_written_back, wb.writes_noted,
        "the final drain leaves no page dirty"
    );
    assert!(wb.writeback_bytes > 0);

    let stats = server.stats();
    assert_eq!(stats.writeback_pages_applied, wb.pages_written_back);
    assert!(stats.writeback_batches >= wb.batches_sent);
    assert_eq!(stats.writeback_duplicates, 0, "reliable loopback: no dups");
    server.shutdown();
}

/// Protocol-level writeback + home-return round trip: duplicate batches
/// re-ack idempotently (batch- and version-level), and the ReturnAck
/// partitions the served set into stub (fetched, not written back) and
/// freed (everything else) pages.
#[test]
fn writeback_and_return_round_trip_over_loopback() {
    use ampom_mem::page::PageId;
    use ampom_rpc::Frame;
    use std::time::Duration;

    let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = ampom_rpc::MigrantClient::connect(Endpoint::tcp(server.local_addr()), 64, 2)
        .expect("connect");

    // Fetch pages 0..8 so the session's served set is known.
    let prefetch: Vec<PageId> = (1..8).map(PageId).collect();
    client
        .send_request(Some(PageId(0)), &prefetch)
        .expect("send");
    let mut served = std::collections::HashSet::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while served.len() < 8 {
        assert!(std::time::Instant::now() < deadline, "pages never arrived");
        match client.recv(Duration::from_secs(5)).expect("recv") {
            Some(Frame::PageReply { page, .. }) => {
                served.insert(page);
            }
            Some(Frame::PageBatchReply { pages, .. }) => {
                served.extend(pages.into_iter().map(|(p, _)| p));
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }

    let wait_ack = |client: &mut ampom_rpc::MigrantClient, seq: u64| match client
        .recv(Duration::from_secs(5))
        .expect("recv")
    {
        Some(Frame::WritebackAck {
            seq: s,
            applied,
            duplicates,
        }) if s == seq => (applied, duplicates),
        Some(other) => panic!("unexpected frame: {other:?}"),
        None => panic!("writeback ack timed out"),
    };

    // Write back pages 0..4 at version 1.
    let entries: Vec<(PageId, u64)> = (0..4).map(|p| (PageId(p), 1)).collect();
    client.send_writeback(1, &entries).expect("writeback");
    assert_eq!(wait_ack(&mut client, 1), (4, 0), "fresh batch applies");

    // The same sequence again: a retransmit, recognised wholesale.
    client.send_writeback(1, &entries).expect("retransmit");
    assert_eq!(wait_ack(&mut client, 1), (0, 4), "duplicate seq re-acks");

    // A new sequence carrying already-applied versions: the per-page
    // version compare skips every entry (the post-restart replay path).
    client.send_writeback(2, &entries).expect("replay");
    assert_eq!(wait_ack(&mut client, 2), (0, 4), "stale versions skipped");

    // Home return: pages 4..8 were fetched but never written back, so
    // they stay behind as the deputy stub; the other 60 of 64 are free.
    let ((stub, freed), stray) = client.send_return(Duration::from_secs(5)).expect("return");
    assert!(stray.is_empty(), "unexpected strays: {stray:?}");
    assert_eq!(stub, 4, "fetched-but-dirty pages stay behind");
    assert_eq!(freed, 60, "never-fetched and written-back pages are free");

    let stats = server.stats();
    assert_eq!(stats.returns_served, 1);
    assert_eq!(stats.writeback_pages_applied, 4);
    assert_eq!(stats.writeback_duplicates, 8);
    drop(client);
    server.shutdown();
}

/// Collects page replies (single and batch) until `want` total pages
/// have arrived, verifying payload integrity on each.
fn collect_pages(
    client: &mut ampom_rpc::MigrantClient,
    want: usize,
) -> Vec<(ampom_mem::page::PageId, Vec<u8>)> {
    use ampom_rpc::Frame;
    use std::time::{Duration, Instant};
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while got.len() < want {
        assert!(
            Instant::now() < deadline,
            "only {} of {want} pages arrived",
            got.len()
        );
        match client.recv(Duration::from_secs(10)).expect("recv") {
            Some(Frame::PageReply { page, data, .. }) => got.push((page, data)),
            Some(Frame::PageBatchReply { pages, .. }) => got.extend(pages),
            Some(other) => panic!("unexpected frame: {other:?}"),
            None => {}
        }
    }
    for (page, data) in &got {
        assert!(
            ampom_rpc::frame::payload_matches(*page, data),
            "corrupt payload for {page}"
        );
    }
    got
}

/// Backpressure regression: a migrant that requests the full per-request
/// cap and then stops reading must not balloon the deputy's memory. The
/// session stalls at the high-water mark (counted), the backlog stays
/// bounded near it, and once the reader drains, every page still arrives
/// exactly once — backpressure pauses service, it loses nothing.
#[test]
fn slow_reader_stalls_bounded_and_resumes() {
    use ampom_mem::page::PageId;
    use std::collections::HashSet;
    use std::time::{Duration, Instant};

    const HIGH: usize = 256 * 1024;
    let server = DeputyServer::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            write_high_water: HIGH,
            write_low_water: 32 * 1024,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = ampom_rpc::MigrantClient::connect(Endpoint::tcp(server.local_addr()), 8192, 2)
        .expect("connect");

    // 4096 pages ≈ 16 MB of replies: far beyond the socket buffer plus
    // the high-water mark, so the deputy must stall.
    let prefetch: Vec<PageId> = (1..4096).map(PageId).collect();
    client
        .send_request(Some(PageId(0)), &prefetch)
        .expect("send");

    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().write_stalls == 0 {
        assert!(Instant::now() < deadline, "deputy never hit the high-water");
        std::thread::sleep(Duration::from_millis(1));
    }

    // The unflushed backlog must sit near the watermark, not near the
    // 16 MB the request describes. Overshoot is bounded by one DRR
    // batch (quantum × page frames) plus one frame.
    let peak = server.stats().peak_write_backlog_bytes;
    assert!(
        peak as usize <= HIGH + 128 * 1024,
        "backlog {peak} blew past the high-water mark {HIGH}"
    );

    // Drain: service resumes and delivers every page exactly once.
    let got = collect_pages(&mut client, 4096);
    let distinct: HashSet<u64> = got.iter().map(|(p, _)| p.0).collect();
    assert_eq!(got.len(), 4096, "no page lost, none duplicated");
    assert_eq!(distinct.len(), 4096);

    let stats = server.stats();
    assert!(stats.write_stalls >= 1);
    assert_eq!(stats.pages_served, 4096);
    drop(client);
    server.shutdown();
}

/// C10K-shaped smoke at CI scale: 256 concurrent migrant sessions over
/// two reactor shards, each fetching its own 64-page window. Every
/// session must see its exact window back — no loss, no duplication, no
/// cross-session bleed — and the sharded tallies must add up.
#[test]
fn two_hundred_fifty_six_sessions_fetch_exactly_once() {
    use ampom_mem::page::PageId;
    use std::collections::HashSet;
    use std::time::{Duration, Instant};

    const SESSIONS: usize = 256;
    const PAGES: u64 = 64;
    let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                // Stagger the dials slightly so 256 simultaneous SYNs
                // don't overflow the listen backlog on slow runners.
                std::thread::sleep(Duration::from_millis((i % 16) as u64));
                let mut client = ampom_rpc::MigrantClient::connect(Endpoint::tcp(addr), PAGES, 2)
                    .expect("connect");
                let prefetch: Vec<PageId> = (1..PAGES).map(PageId).collect();
                client
                    .send_request(Some(PageId(0)), &prefetch)
                    .expect("send");
                let got = collect_pages(&mut client, PAGES as usize);
                let distinct: HashSet<u64> = got.iter().map(|(p, _)| p.0).collect();
                assert_eq!(got.len(), PAGES as usize, "session {i}: dup or loss");
                assert_eq!(distinct, (0..PAGES).collect::<HashSet<u64>>());
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }

    // Shard tallies publish per pass; poll briefly for the last one.
    let want = (SESSIONS as u64) * PAGES;
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().pages_served < want {
        assert!(Instant::now() < deadline, "tallies never reached {want}");
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = server.stats();
    assert_eq!(stats.pages_served, want);
    assert_eq!(stats.connections, SESSIONS as u64);
    assert_eq!(stats.dropped_connections, 0);
    server.shutdown();
}

/// The reactor is a scheduling change, not a protocol change: the same
/// seeded request sequence against a readiness-driven deputy and a
/// sleep-poll deputy must produce bit-identical page sets and payloads.
#[test]
fn reactor_and_sleep_poll_serve_identical_bytes() {
    use ampom_mem::page::PageId;

    // FNV-1a over the sorted (page, payload) stream: any lost page,
    // duplicate, or corrupt byte changes the fingerprint.
    fn fingerprint(mut pages: Vec<(PageId, Vec<u8>)>) -> u64 {
        pages.sort_by_key(|(p, _)| p.0);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for (page, data) in &pages {
            for b in page.0.to_be_bytes() {
                eat(b);
            }
            for &b in data {
                eat(b);
            }
        }
        h
    }

    let run = |reactor: bool| -> u64 {
        let server = DeputyServer::bind_tcp(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                reactor,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let mut client =
            ampom_rpc::MigrantClient::connect(Endpoint::tcp(server.local_addr()), 4096, 2)
                .expect("connect");
        // A fixed multiplicative-congruential walk: same page sequence
        // on both runs, including repeats (served twice, counted twice).
        let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut total = 0usize;
        let mut pages = Vec::new();
        for _ in 0..8 {
            let mut batch = Vec::new();
            for _ in 0..16 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                batch.push(PageId(seed % 4096));
            }
            let demand = batch[0];
            client
                .send_request(Some(demand), &batch[1..])
                .expect("send");
            // Requests are served in order and duplicates within one
            // frame coalesce; count what will actually come back.
            let mut seen = std::collections::HashSet::new();
            total += batch.iter().filter(|p| seen.insert(p.0)).count();
            pages.extend(collect_pages(&mut client, total - (pages.len())));
        }
        drop(client);
        server.shutdown();
        fingerprint(pages)
    };

    let fp_reactor = run(true);
    let fp_sleep = run(false);
    assert_eq!(
        fp_reactor, fp_sleep,
        "wait-mode change altered the served byte stream"
    );
}

/// Wire-level regression for the request-cap width fix: a request at the
/// cap is served in full; one past the cap draws the 413 protocol error
/// instead of silently truncated (or, before the fix, wrapped) service.
#[test]
fn request_cap_enforced_at_wire_boundary() {
    use ampom_mem::page::PageId;
    use ampom_rpc::Frame;
    use std::time::Duration;

    let server = DeputyServer::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            max_pages_per_request: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    // Exactly at the cap: all four pages come back.
    let mut ok = ampom_rpc::MigrantClient::connect(Endpoint::tcp(server.local_addr()), 64, 2)
        .expect("connect");
    ok.send_request(Some(PageId(0)), &[PageId(1), PageId(2), PageId(3)])
        .expect("send");
    let got = collect_pages(&mut ok, 4);
    assert_eq!(got.len(), 4);

    // One past the cap: a 413, not service.
    let mut over = ampom_rpc::MigrantClient::connect(Endpoint::tcp(server.local_addr()), 64, 2)
        .expect("connect");
    over.send_request(
        Some(PageId(0)),
        &[PageId(1), PageId(2), PageId(3), PageId(4)],
    )
    .expect("send");
    match over.recv(Duration::from_secs(5)).expect("recv") {
        Some(Frame::Error { code, .. }) => assert_eq!(code, 413),
        other => panic!("expected the cap error, got {other:?}"),
    }

    drop(ok);
    drop(over);
    server.shutdown();
}
