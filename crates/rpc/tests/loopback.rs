//! Loopback smoke tests: a real [`DeputyServer`] on 127.0.0.1, a real
//! [`MigrantClient`] underneath the shared runner loop, and the PR 2
//! reliability layer arbitrating timeouts over genuine sockets.
//!
//! These run in CI. They are deliberately small (a few MB of address
//! space) and use generous retry budgets so scheduler jitter on a busy
//! runner cannot produce spurious policy degradations.

use ampom_core::migration::Scheme;
use ampom_core::reliability::{FailurePolicy, RetryPolicy};
use ampom_core::runner::RunConfig;
use ampom_rpc::{
    calibrate_endpoint, run_live, CalibrateOptions, DeputyServer, Endpoint, LiveOptions,
    ServerConfig,
};
use ampom_workloads::stream_kernel::StreamKernel;

/// A retry budget wide enough that loopback jitter never exhausts it.
fn generous() -> LiveOptions {
    LiveOptions {
        retry: RetryPolicy {
            timeout_factor: 50,
            max_retries: 6,
        },
        policy: FailurePolicy::StallReconnect,
        calibrate: CalibrateOptions {
            pings: 8,
            bulk_pages: 64,
        },
    }
}

#[test]
fn stream_migrant_completes_over_tcp_loopback() {
    let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let endpoint = Endpoint::tcp(server.local_addr());

    let mut kernel = StreamKernel::new(4 * 1024 * 1024);
    let cfg = RunConfig::new(Scheme::Ampom);
    let live = run_live(&mut kernel, &cfg, endpoint, &generous()).expect("live run");

    let report = &live.report;
    assert!(report.total_time.as_nanos() > 0);
    assert!(
        report.pages_demand_fetched > 0,
        "a migrant starts empty; something must be demand-fetched"
    );
    assert!(
        report.pages_prefetched > 0,
        "AMPoM over a sequential STREAM pass must prefetch"
    );
    // Zero retry-budget exhaustions: the reliable loopback deputy never
    // forces a degradation.
    assert_eq!(report.faults.reconnects, 0, "no policy degradations");
    assert_eq!(report.faults.deputy_unavailable, 0);
    assert_eq!(report.faults.fallback_pages, 0);
    // The link was actually measured, not defaulted.
    assert!(live.measured.capacity_bytes_per_sec > 0);
    assert!(live.measured.t0.as_nanos() >= 1);

    let stats = server.stats();
    assert!(stats.pages_served > 0);
    assert_eq!(stats.dropped_connections, 0);
    server.shutdown();
}

#[cfg(unix)]
#[test]
fn calibration_and_migrant_work_over_unix_socket() {
    let path = std::env::temp_dir().join(format!("ampom-loopback-{}.sock", std::process::id()));
    let server = DeputyServer::bind_unix(&path, ServerConfig::default()).expect("bind");
    let endpoint = Endpoint::unix(&path);

    let measured = calibrate_endpoint(
        &endpoint,
        &CalibrateOptions {
            pings: 8,
            bulk_pages: 32,
        },
    )
    .expect("calibration");
    assert!(measured.capacity_bytes_per_sec > 0);
    assert!(measured.td.as_nanos() > 0);
    // td is the serialization time of one reply at the measured
    // capacity, so the two must be consistent.
    let lc = measured.link_config();
    assert_eq!(lc.capacity_bytes_per_sec, measured.capacity_bytes_per_sec);
    assert_eq!(lc.latency, measured.t0);

    let mut kernel = StreamKernel::new(1024 * 1024);
    let cfg = RunConfig::new(Scheme::NoPrefetch);
    let live = run_live(&mut kernel, &cfg, endpoint, &generous()).expect("live run");
    assert_eq!(live.report.pages_prefetched, 0);
    assert!(live.report.pages_demand_fetched > 0);
    assert_eq!(live.report.faults.reconnects, 0);

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Four concurrent migrants against one deputy with a two-worker pool:
/// the multiplexed event loop must interleave all sessions (no migrant
/// waits for a whole neighbour run), every run must complete cleanly,
/// and the sharded accounting must add up across connections.
#[test]
fn four_concurrent_migrants_share_one_deputy() {
    let server = DeputyServer::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Hold four raw sessions open at once: with two workers, at least
    // one must multiplex, and the peak-session gauge must see all four.
    {
        let mut probes: Vec<ampom_rpc::MigrantClient> = (0..4)
            .map(|_| {
                ampom_rpc::MigrantClient::connect(Endpoint::tcp(&addr), 64, 2).expect("connect")
            })
            .collect();
        for c in probes.iter_mut() {
            c.ping(std::time::Duration::from_secs(5)).expect("ping");
        }
        let stats = server.stats();
        assert!(
            stats.peak_sessions >= 4,
            "4 live probes, peak {}",
            stats.peak_sessions
        );
        assert!(
            stats.queued_connections >= 2,
            "two workers holding four sessions must have multiplexed"
        );
    }

    let reports: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let endpoint = Endpoint::tcp(&addr);
                s.spawn(move || {
                    let mut kernel = StreamKernel::new(2 * 1024 * 1024);
                    let scheme = if i % 2 == 0 {
                        Scheme::Ampom
                    } else {
                        Scheme::NoPrefetch
                    };
                    let cfg = RunConfig::new(scheme);
                    run_live(&mut kernel, &cfg, endpoint, &generous()).expect("live run")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut fetched = 0u64;
    for live in &reports {
        let report = &live.report;
        assert!(report.pages_demand_fetched > 0);
        assert_eq!(report.faults.reconnects, 0, "reliable deputy, no drops");
        assert_eq!(report.faults.fallback_pages, 0);
        fetched += report.pages_demand_fetched + report.pages_prefetched;
    }
    let stats = server.stats();
    assert!(
        stats.pages_served >= fetched,
        "served {} < the {} pages migrants booked",
        stats.pages_served,
        fetched
    );
    assert_eq!(stats.dropped_connections, 0);
    server.shutdown();
}

/// An admission-bounded deputy sheds prefetch load with non-fatal 503s;
/// the migrant reverts the refused pages, re-fetches them on demand, and
/// the run still completes with every page delivered exactly once.
#[test]
fn bounded_admission_sheds_prefetch_and_the_run_completes() {
    let server = DeputyServer::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            // Well under the client's 64-page in-flight quota, so an
            // AMPoM prefetch storm must overflow the bound.
            max_pending_pages: Some(8),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let endpoint = Endpoint::tcp(server.local_addr());

    let mut kernel = StreamKernel::new(2 * 1024 * 1024);
    let cfg = RunConfig::new(Scheme::Ampom);
    let live = run_live(&mut kernel, &cfg, endpoint, &generous()).expect("live run");

    let report = &live.report;
    assert!(report.pages_demand_fetched > 0);
    assert_eq!(report.faults.fallback_pages, 0, "no eager fallback needed");
    let stats = server.stats();
    assert!(
        stats.prefetch_pages_shed > 0,
        "an 8-page bound under an AMPoM prefetch storm shed nothing"
    );
    assert_eq!(stats.demand_pages_shed, 0, "demand is never shed");
    assert!(stats.shed_events > 0);
    // The deputy-side report the migrant fetched over the wire carries
    // the same counters.
    assert!(report.deputy.prefetch_pages_shed > 0);
    assert_eq!(report.deputy.demand_pages_shed, 0);
    server.shutdown();
}

/// A deputy that drops every connection after a handful of pages: the
/// stall/reconnect policy must fire (degradations over the live path)
/// and the run must still complete correctly.
#[test]
fn dropped_connections_trigger_stall_reconnect_degradations() {
    let server = DeputyServer::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            drop_after_pages: Some(24),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let endpoint = Endpoint::tcp(server.local_addr());

    let opts = LiveOptions {
        // A tight budget so a dropped connection degrades quickly instead
        // of pacing through a long resend ladder.
        retry: RetryPolicy {
            timeout_factor: 1,
            max_retries: 1,
        },
        policy: FailurePolicy::StallReconnect,
        calibrate: CalibrateOptions {
            pings: 4,
            // Fewer bulk pages than the drop threshold, so the
            // calibration session itself survives its connection.
            bulk_pages: 16,
        },
    };

    let mut kernel = StreamKernel::new(1024 * 1024);
    let cfg = RunConfig::new(Scheme::NoPrefetch);
    let live = run_live(&mut kernel, &cfg, endpoint, &opts).expect("live run survives drops");

    let report = &live.report;
    assert!(report.pages_demand_fetched > 0);
    assert!(
        report.faults.reconnects > 0,
        "the failure policy must have fired: {:?}",
        report.faults
    );
    assert!(report.faults.timeouts > 0);
    assert!(report.faults.recovery_time.as_nanos() > 0);

    let stats = server.stats();
    assert!(
        stats.dropped_connections > 0,
        "the fault injector must actually have dropped connections"
    );
    assert!(stats.connections > stats.dropped_connections);
    server.shutdown();
}

/// The full forward half of the page lifecycle over a real socket: a
/// stores-heavy migrant with background writeback enabled must drain
/// every dirty page into the deputy's sink by the end of the run.
#[test]
fn live_run_with_writeback_drains_every_dirty_page() {
    use ampom_core::WritebackSpec;
    use ampom_sim::time::SimDuration;
    use ampom_workloads::synthetic::SequentialWrite;

    let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let endpoint = Endpoint::tcp(server.local_addr());

    let mut w = SequentialWrite::new(512, SimDuration::from_micros(5));
    let cfg = RunConfig::new(Scheme::Ampom).with_writeback(WritebackSpec::default());
    let live = run_live(&mut w, &cfg, endpoint, &generous()).expect("live run");

    let wb = &live.report.writeback;
    assert!(wb.writes_noted > 0, "stores must be noted");
    assert!(wb.batches_sent > 0, "batches must flush");
    assert_eq!(
        wb.pages_written_back, wb.writes_noted,
        "the final drain leaves no page dirty"
    );
    assert!(wb.writeback_bytes > 0);

    let stats = server.stats();
    assert_eq!(stats.writeback_pages_applied, wb.pages_written_back);
    assert!(stats.writeback_batches >= wb.batches_sent);
    assert_eq!(stats.writeback_duplicates, 0, "reliable loopback: no dups");
    server.shutdown();
}

/// Protocol-level writeback + home-return round trip: duplicate batches
/// re-ack idempotently (batch- and version-level), and the ReturnAck
/// partitions the served set into stub (fetched, not written back) and
/// freed (everything else) pages.
#[test]
fn writeback_and_return_round_trip_over_loopback() {
    use ampom_mem::page::PageId;
    use ampom_rpc::Frame;
    use std::time::Duration;

    let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = ampom_rpc::MigrantClient::connect(Endpoint::tcp(server.local_addr()), 64, 2)
        .expect("connect");

    // Fetch pages 0..8 so the session's served set is known.
    let prefetch: Vec<PageId> = (1..8).map(PageId).collect();
    client
        .send_request(Some(PageId(0)), &prefetch)
        .expect("send");
    let mut served = std::collections::HashSet::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while served.len() < 8 {
        assert!(std::time::Instant::now() < deadline, "pages never arrived");
        match client.recv(Duration::from_secs(5)).expect("recv") {
            Some(Frame::PageReply { page, .. }) => {
                served.insert(page);
            }
            Some(Frame::PageBatchReply { pages, .. }) => {
                served.extend(pages.into_iter().map(|(p, _)| p));
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }

    let wait_ack = |client: &mut ampom_rpc::MigrantClient, seq: u64| match client
        .recv(Duration::from_secs(5))
        .expect("recv")
    {
        Some(Frame::WritebackAck {
            seq: s,
            applied,
            duplicates,
        }) if s == seq => (applied, duplicates),
        Some(other) => panic!("unexpected frame: {other:?}"),
        None => panic!("writeback ack timed out"),
    };

    // Write back pages 0..4 at version 1.
    let entries: Vec<(PageId, u64)> = (0..4).map(|p| (PageId(p), 1)).collect();
    client.send_writeback(1, &entries).expect("writeback");
    assert_eq!(wait_ack(&mut client, 1), (4, 0), "fresh batch applies");

    // The same sequence again: a retransmit, recognised wholesale.
    client.send_writeback(1, &entries).expect("retransmit");
    assert_eq!(wait_ack(&mut client, 1), (0, 4), "duplicate seq re-acks");

    // A new sequence carrying already-applied versions: the per-page
    // version compare skips every entry (the post-restart replay path).
    client.send_writeback(2, &entries).expect("replay");
    assert_eq!(wait_ack(&mut client, 2), (0, 4), "stale versions skipped");

    // Home return: pages 4..8 were fetched but never written back, so
    // they stay behind as the deputy stub; the other 60 of 64 are free.
    let ((stub, freed), stray) = client.send_return(Duration::from_secs(5)).expect("return");
    assert!(stray.is_empty(), "unexpected strays: {stray:?}");
    assert_eq!(stub, 4, "fetched-but-dirty pages stay behind");
    assert_eq!(freed, 60, "never-fetched and written-back pages are free");

    let stats = server.stats();
    assert_eq!(stats.returns_served, 1);
    assert_eq!(stats.writeback_pages_applied, 4);
    assert_eq!(stats.writeback_duplicates, 8);
    drop(client);
    server.shutdown();
}
