//! [`LiveTransport`]: the socket-backed implementation of
//! [`Transport`], driving the unmodified
//! [`ampom_core::run_with_transport`] protocol loop
//! over a real deputy.
//!
//! ## Timing model
//!
//! The runner's `now` stays a virtual [`SimTime`]: compute charges come
//! from the workload's reference stream exactly as in simulation, while
//! every *wait* on the deputy is measured with a wall clock and mapped
//! 1:1 onto the virtual axis (`arrival = now + wall_elapsed`). A page
//! that the reply pipeline already delivered costs nothing — the same
//! pipelining effect (paper §5.4) the simulator models with FIFO-link
//! arrival times.
//!
//! Scheme-specific kernel costs the real host cannot reproduce (a 2 GHz
//! P4's per-page eager copy, the MPT walk) are charged analytically with
//! the same calibrated constants the simulator uses, and the AMPoM MPT
//! wire cost is charged as its serialization time at the *measured*
//! capacity rather than shipping real MPT bytes. DESIGN.md §10 tabulates
//! the mapping.
//!
//! ## Recovery
//!
//! The retry/timeout/degradation arithmetic is the
//! [`RetrySchedule`] shared with the
//! simulated fault injector — not a fork. Its base timeout is the
//! measured `2·t0 + td`; a socket error or silence past the deadline
//! feeds `on_timeout()`, and the schedule's verdict (retry / degrade)
//! is executed over the live wire: re-request, reconnect-and-resend, or
//! a residual eager copy of every page still at the origin. Undelivered
//! requests die with a dropped connection; their pages simply remain at
//! the origin and are demand-fetched when next touched.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use ampom_core::deputy::SYSCALL_EXEC_COST;
use ampom_core::error::AmpomError;
use ampom_core::metrics::{DeputyStats, FaultStats, RunReport};
use ampom_core::migration::{FreezeOutcome, PreMigrationState, Scheme};
use ampom_core::prefetcher::NetEstimates;
use ampom_core::reliability::{FailurePolicy, RetryPolicy, RetrySchedule, RetryStep};
use ampom_core::runner::RunConfig;
use ampom_core::transport::{run_with_transport, Transport};
use ampom_mem::page::{PageId, PAGE_SIZE};
use ampom_mem::space::AddressSpace;
use ampom_mem::table::{PageLocation, PageTablePair};
use ampom_net::calibration::{MeasuredLink, EAGER_PAGE_COST, MIGRATION_BASE_COST, MPT_ENTRY_COST};
use ampom_sim::time::{SimDuration, SimTime};
use ampom_sim::trace::{Trace, TraceData, TraceKind};
use ampom_workloads::memref::Workload;

use crate::calibrate::{calibrate_endpoint, CalibrateOptions};
use crate::client::{Endpoint, MigrantClient};
use crate::frame::{Frame, WireStats, CODE_OVERLOADED};
use crate::RpcError;

/// Bound on requested-but-undelivered pages (client-side backpressure).
/// A full quota trims prefetch batches; demand pages always go out.
pub const IN_FLIGHT_QUOTA: usize = 64;

/// Pages per request frame during bulk (freeze / fallback / calibration)
/// fetches. Batches go out strictly one at a time — the next only after
/// the previous fully arrived — so neither side's socket buffer can fill
/// while the other blocks writing (deadlock freedom by construction).
pub const FETCH_BATCH: usize = 64;

/// Deadline for one bulk-fetch batch to arrive in full.
const FETCH_TIMEOUT: Duration = Duration::from_secs(30);

/// Deadline for a forwarded system call's reply.
const SYSCALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Deadline for a deputy statistics round trip.
const STATS_TIMEOUT: Duration = Duration::from_secs(2);

/// Deadline for a writeback batch's ack.
const WRITEBACK_TIMEOUT: Duration = Duration::from_secs(10);

/// Redial attempts per stall-reconnect cycle, paced by
/// [`RECONNECT_SLEEP`]. Failed cycles re-enter the retry schedule, whose
/// policy-cycle cap eventually forces the eager fallback.
const RECONNECT_ATTEMPTS: u32 = 20;

/// Pause between redial attempts.
const RECONNECT_SLEEP: Duration = Duration::from_millis(50);

/// Floor on the retry schedule's base timeout over a live wire (a
/// measured loopback round trip is far below OS scheduling jitter).
const MIN_BASE_TIMEOUT: SimDuration = SimDuration::from_millis(2);

/// Knobs of a live run.
#[derive(Debug, Clone, Default)]
pub struct LiveOptions {
    /// Timeout/retry budget (same meaning as the simulated profile's).
    pub retry: RetryPolicy,
    /// Degradation policy once the budget is spent. `Remigrate` is not
    /// supported over the live transport.
    pub policy: FailurePolicy,
    /// Calibration handshake parameters.
    pub calibrate: CalibrateOptions,
}

/// What a live run produced: the ordinary report plus the link
/// measurement that parameterised it.
#[derive(Debug)]
pub struct LiveReport {
    /// The run's measurements, on the same axes as simulated reports.
    pub report: RunReport,
    /// The calibrated link (feed
    /// [`MeasuredLink::link_config`] to the simulator to compare).
    pub measured: MeasuredLink,
}

/// The live implementation of [`Transport`].
pub struct LiveTransport {
    endpoint: Endpoint,
    schedule: RetrySchedule,
    measured: MeasuredLink,
    client: Option<MigrantClient>,
    dead: bool,
    /// Requested and not yet installed.
    in_flight: HashSet<PageId>,
    /// Received and not yet installed (subset of `in_flight`).
    staged: HashSet<PageId>,
    /// Mapped pages whose contents the origin still holds.
    origin: HashSet<PageId>,
    stats: FaultStats,
    trace: Vec<(SimTime, TraceKind, TraceData)>,
    cached_deputy: DeputyStats,
    last_wraps: u64,
    /// Wall instant and byte mark at resume, for reply utilisation.
    run_epoch: Option<(Instant, u64)>,
}

impl std::fmt::Debug for LiveTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveTransport")
            .field("endpoint", &self.endpoint)
            .field("measured", &self.measured)
            .field("in_flight", &self.in_flight.len())
            .field("staged", &self.staged.len())
            .finish()
    }
}

impl LiveTransport {
    /// Calibrates the link to `endpoint` (its own short-lived connection)
    /// and prepares a transport whose retry schedule is based on the
    /// measured round trip. The migrant session itself is dialed at
    /// [`Transport::freeze`] time, when the address-space size is known.
    pub fn connect(endpoint: Endpoint, opts: &LiveOptions) -> Result<LiveTransport, RpcError> {
        let measured = calibrate_endpoint(&endpoint, &opts.calibrate)?;
        // Same base as RetrySchedule::for_link (2·t0 + td on the measured
        // link), floored: a loopback RTT of a few microseconds would make
        // OS scheduling jitter fire timeouts spuriously.
        let link = measured.link_config();
        let base =
            (link.rtt() + ampom_net::calibration::page_transfer_time(&link)).max(MIN_BASE_TIMEOUT);
        let schedule = RetrySchedule::new(opts.retry, opts.policy, base);
        Ok(LiveTransport {
            endpoint,
            schedule,
            measured,
            client: None,
            dead: false,
            in_flight: HashSet::new(),
            staged: HashSet::new(),
            origin: HashSet::new(),
            stats: FaultStats::default(),
            trace: Vec::new(),
            cached_deputy: DeputyStats::default(),
            last_wraps: 0,
            run_epoch: None,
        })
    }

    /// The link measurement taken at connect time.
    pub fn measured(&self) -> MeasuredLink {
        self.measured
    }

    /// Recovery statistics accumulated so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    fn client_mut(&mut self) -> Result<&mut MigrantClient, AmpomError> {
        self.client
            .as_mut()
            .ok_or_else(|| AmpomError::Transport("live transport used before freeze".into()))
    }

    /// Books one received page reply. Duplicates (a late original racing
    /// a retry's resend, or a page already installed) are suppressed —
    /// installs stay idempotent, exactly as in the simulated protocol.
    fn note_reply(&mut self, page: PageId, data: &[u8]) -> Result<(), AmpomError> {
        if !crate::frame::payload_matches(page, data) {
            return Err(AmpomError::Transport(format!(
                "payload for page {page} is corrupt"
            )));
        }
        if self.in_flight.contains(&page) && !self.staged.contains(&page) {
            self.staged.insert(page);
            self.origin.remove(&page);
        } else {
            self.stats.duplicate_replies += 1;
        }
        Ok(())
    }

    fn handle_frame(&mut self, frame: Frame, now: SimTime) -> Result<(), AmpomError> {
        match frame {
            Frame::PageReply { page, data, .. } => self.note_reply(page, &data),
            Frame::PageBatchReply { pages, .. } => {
                // A multiplexed deputy answers one DRR visit with a
                // single batched frame; each page books individually so
                // duplicate suppression stays per-page.
                for (page, data) in pages {
                    self.note_reply(page, &data)?;
                }
                Ok(())
            }
            Frame::StatsReply(ws) => {
                self.cached_deputy = deputy_stats_from_wire(ws);
                Ok(())
            }
            // The one non-fatal error: the deputy shed the named
            // prefetch pages. Revert them — their contents never left
            // the origin, so dropping the in-flight mark makes them
            // eligible for a later prefetch or demand fetch. The demand
            // page is never shed, so the faulting wait is unaffected.
            Frame::Error { code, detail } if code == CODE_OVERLOADED => {
                let mut reverted = 0u64;
                for page in shed_pages_from_detail(&detail) {
                    if !self.staged.contains(&page) && self.in_flight.remove(&page) {
                        reverted += 1;
                    }
                }
                if reverted > 0 {
                    self.trace.push((
                        now,
                        TraceKind::LiveShed,
                        TraceData::pages(reverted).with_note("deputy 503: reverted to origin"),
                    ));
                }
                Ok(())
            }
            Frame::Error { code, detail } => Err(AmpomError::Transport(format!(
                "deputy error {code}: {detail}"
            ))),
            // Stale pongs / syscall replies from an abandoned wait.
            _ => Ok(()),
        }
    }

    /// One redial attempt. On success the connection-local state resets:
    /// undelivered requests died with the old socket, so `in_flight`
    /// shrinks to the already-received (staged) pages and everything else
    /// stays at the origin, to be demand-fetched when next touched.
    fn try_reconnect(&mut self, now: SimTime, demand: Option<PageId>) -> bool {
        let Some(client) = self.client.as_mut() else {
            return false;
        };
        if client.reconnect().is_err() {
            return false;
        }
        self.dead = false;
        self.in_flight = self.staged.clone();
        if let Some(d) = demand {
            if self
                .client
                .as_mut()
                .is_some_and(|c| c.send_request(Some(d), &[]).is_ok())
            {
                self.in_flight.insert(d);
            } else {
                self.dead = true;
                return false;
            }
        }
        self.trace.push((
            now,
            TraceKind::LiveReconnect,
            TraceData::note(format!("reconnected to {}", self.endpoint)),
        ));
        true
    }

    /// The residual eager copy: fetch every page still at the origin, in
    /// bounded batches, and stage it for install.
    fn eager_fallback(&mut self, now: SimTime) -> Result<(), AmpomError> {
        if self.dead && !self.try_reconnect(now, None) {
            return Err(AmpomError::Transport(
                "eager fallback: deputy unreachable".into(),
            ));
        }
        let mut remaining: Vec<PageId> = self.origin.iter().copied().collect();
        remaining.sort();
        let dupes = {
            let client = self.client_mut()?;
            fetch_all(client, &remaining).map_err(AmpomError::from)?
        };
        self.stats.duplicate_replies += dupes;
        for &p in &remaining {
            self.staged.insert(p);
            self.in_flight.insert(p);
            self.origin.remove(&p);
            self.stats.fallback_pages += 1;
        }
        self.trace.push((
            now,
            TraceKind::PagesArrived,
            TraceData::pages(remaining.len() as u64)
                .with_bytes(remaining.len() as u64 * PAGE_SIZE)
                .with_note("eager fallback: residual pages"),
        ));
        Ok(())
    }

    fn refresh_deputy_stats(&mut self) {
        let Some(client) = self.client.as_mut() else {
            return;
        };
        if client.send(&Frame::StatsFetch).is_err() {
            return;
        }
        let deadline = Instant::now() + STATS_TIMEOUT;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let frame = match self.client.as_mut().and_then(|c| c.recv(remaining).ok()) {
                Some(Some(f)) => f,
                _ => return,
            };
            let done = matches!(frame, Frame::StatsReply(_));
            if self.handle_frame(frame, SimTime::ZERO).is_err() || done {
                return;
            }
        }
    }
}

impl Transport for LiveTransport {
    fn freeze(
        &mut self,
        scheme: Scheme,
        pre: &PreMigrationState,
        trace: &mut Trace,
    ) -> Result<FreezeOutcome, AmpomError> {
        let t0 = SimTime::ZERO;
        trace.record_with(t0, TraceKind::FreezeBegin, || {
            TraceData::note(format!("scheme={scheme} live"))
        });

        let mapped = pre.mapped_pages();
        let dirty = pre.dirty_pages();
        let mut table = PageTablePair::at_migration(mapped.iter().copied());
        let mut space = AddressSpace::new(pre.layout.clone());
        for &p in &mapped {
            space.mark_remote(p);
        }
        let freeze_pages = pre.layout.freeze_pages(pre.current_data);

        let mut client = MigrantClient::connect(
            self.endpoint.clone(),
            pre.layout.total_pages(),
            scheme_byte(scheme),
        )
        .map_err(AmpomError::from)?;
        trace.record_with(t0, TraceKind::LiveConnect, || {
            TraceData::note(format!("{} (td={})", self.endpoint, self.measured.td))
                .with_rtt_ns(self.measured.t0.saturating_mul(2).as_nanos())
        });

        // What the scheme ships eagerly, plus the kernel/wire costs the
        // host cannot reproduce, charged with the calibrated constants.
        let (ship, kernel_cost, analytic_wire, mpt_bytes): (
            Vec<PageId>,
            SimDuration,
            SimDuration,
            u64,
        ) = match scheme {
            Scheme::OpenMosix => (
                dirty.clone(),
                EAGER_PAGE_COST.saturating_mul(dirty.len() as u64),
                SimDuration::ZERO,
                0,
            ),
            Scheme::NoPrefetch | Scheme::Ffa => (
                freeze_pages.to_vec(),
                SimDuration::ZERO,
                SimDuration::ZERO,
                0,
            ),
            Scheme::Ampom => {
                let mpt = table.mpt_bytes();
                (
                    freeze_pages.to_vec(),
                    MPT_ENTRY_COST.saturating_mul(table.mapped_pages()),
                    // The MPT travels as its serialization time on the
                    // *measured* link rather than as real bytes.
                    self.measured.link_config().serialization_time(mpt),
                    mpt,
                )
            }
        };
        let mut ship = ship;
        ship.sort();
        ship.dedup();

        let wall_start = Instant::now();
        let dupes = fetch_all(&mut client, &ship).map_err(AmpomError::from)?;
        let wall_fetch = sim_duration(wall_start.elapsed());
        self.stats.duplicate_replies += dupes;

        for &p in &ship {
            if space.is_resident(p) {
                continue;
            }
            table.transfer_to_destination(p);
            space.install(p);
            if scheme == Scheme::OpenMosix {
                // The dest copy is the only copy; it stays logically dirty.
                space.touch(p, true);
            }
        }

        let freeze_time = MIGRATION_BASE_COST + kernel_cost + analytic_wire + wall_fetch;
        let resume_at = t0 + freeze_time;
        let bytes_at_freeze = ship.len() as u64 * PAGE_SIZE + mpt_bytes;
        trace.record_with(resume_at, TraceKind::PagesArrived, || {
            TraceData::pages(ship.len() as u64)
                .with_bytes(bytes_at_freeze)
                .with_note("over live wire")
        });
        trace.record_with(resume_at, TraceKind::FreezeEnd, || {
            TraceData::note(format!("freeze={freeze_time}"))
        });

        self.origin = mapped
            .iter()
            .copied()
            .filter(|p| !space.is_resident(*p))
            .collect();
        let received_mark = client.bytes_received();
        self.client = Some(client);
        self.run_epoch = Some((Instant::now(), received_mark));

        Ok(FreezeOutcome {
            freeze_time,
            bytes_at_freeze,
            mpt_bytes,
            space,
            table,
            freeze_pages,
        })
    }

    fn request_pages(
        &mut self,
        _now: SimTime,
        demand: Option<PageId>,
        prefetch: &[PageId],
        table: &mut PageTablePair,
    ) -> Result<Vec<PageId>, AmpomError> {
        let allowed = IN_FLIGHT_QUOTA
            .saturating_sub(self.in_flight.len())
            .saturating_sub(usize::from(demand.is_some()));
        let mut queued = Vec::new();
        for &p in prefetch {
            if queued.len() >= allowed {
                break;
            }
            if self.in_flight.contains(&p) || !self.origin.contains(&p) {
                continue;
            }
            queued.push(p);
        }
        if demand.is_none() && queued.is_empty() {
            return Ok(queued);
        }
        let sent = {
            let client = self.client_mut()?;
            client.send_request(demand, &queued).is_ok()
        };
        if !sent {
            // The wait path absorbs the dead connection for the demand
            // page (it will be resent); unsent prefetches are simply
            // not committed and stay eligible at the origin.
            self.dead = true;
            queued.clear();
        }
        for p in demand.into_iter().chain(queued.iter().copied()) {
            self.in_flight.insert(p);
            if table.lookup(p) == Some(PageLocation::Origin) {
                table.transfer_to_destination(p);
            }
        }
        Ok(queued)
    }

    fn wait_for(&mut self, page: PageId, now: SimTime) -> Result<SimTime, AmpomError> {
        if self.staged.contains(&page) {
            return Ok(now);
        }
        if !self.in_flight.contains(&page) {
            return Err(AmpomError::Transport(format!(
                "page {page} awaited but never requested"
            )));
        }
        let start = Instant::now();
        self.schedule.begin_wait();
        let mut deadline = start + wall_duration(self.schedule.current_timeout());
        loop {
            if self.staged.contains(&page) {
                return Ok(now + sim_duration(start.elapsed()));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || self.dead {
                self.stats.timeouts += 1;
                match self.schedule.on_timeout() {
                    RetryStep::Retry => {
                        self.stats.retries += 1;
                        self.trace.push((
                            now,
                            TraceKind::LiveRetry,
                            TraceData::page(page.index())
                                .with_retry(u64::from(self.schedule.attempt())),
                        ));
                        // A retry is a resend, nothing more — on a dead
                        // connection it burns budget (paced, not spun)
                        // until the failure policy takes over, exactly
                        // like resends into a downed simulated deputy.
                        let resent = !self.dead
                            && self
                                .client
                                .as_mut()
                                .is_some_and(|c| c.send_request(Some(page), &[]).is_ok());
                        if resent {
                            // If a 503 reverted this page while we
                            // waited, the demand resend re-arms it.
                            self.in_flight.insert(page);
                        } else {
                            self.dead = true;
                            std::thread::sleep(RECONNECT_SLEEP);
                        }
                    }
                    RetryStep::Degrade(policy) => {
                        self.stats.reconnects += 1;
                        let recovery_start = Instant::now();
                        match policy {
                            FailurePolicy::StallReconnect => {
                                self.dead = true;
                                let mut ok = false;
                                for _ in 0..RECONNECT_ATTEMPTS {
                                    if self.try_reconnect(now, Some(page)) {
                                        ok = true;
                                        break;
                                    }
                                    std::thread::sleep(RECONNECT_SLEEP);
                                }
                                if ok {
                                    self.schedule.begin_wait();
                                }
                                // On failure the schedule escalates again;
                                // past its policy-cycle cap the eager
                                // fallback is forced, so this terminates.
                            }
                            FailurePolicy::EagerFallback => {
                                let fallen = self.eager_fallback(now);
                                self.stats.recovery_time += sim_duration(recovery_start.elapsed());
                                fallen?;
                                continue;
                            }
                            FailurePolicy::Remigrate => {
                                return Err(AmpomError::Transport(
                                    "the remigrate policy needs the simulated runner \
                                     (a live migrant cannot re-home itself)"
                                        .into(),
                                ));
                            }
                        }
                        self.stats.recovery_time += sim_duration(recovery_start.elapsed());
                    }
                }
                deadline = Instant::now() + wall_duration(self.schedule.current_timeout());
                continue;
            }
            let received = match self.client_mut()?.recv(remaining) {
                Ok(Some(frame)) => Some(frame),
                Ok(None) => None,
                Err(_) => {
                    self.dead = true;
                    None
                }
            };
            if let Some(frame) = received {
                self.handle_frame(frame, now)?;
            }
        }
    }

    fn install_arrived(&mut self, now: &mut SimTime, space: &mut AddressSpace) {
        // Pull in whatever the reply pipeline has already delivered.
        if !self.dead {
            if let Some(client) = self.client.as_mut() {
                match client.drain() {
                    Ok(frames) => {
                        for frame in frames {
                            // A corrupt reply surfaces at the next wait.
                            if self.handle_frame(frame, *now).is_err() {
                                self.dead = true;
                                break;
                            }
                        }
                    }
                    Err(_) => self.dead = true,
                }
            }
        }
        let mut installed = 0u64;
        for page in std::mem::take(&mut self.staged) {
            self.in_flight.remove(&page);
            space.install(page);
            installed += 1;
        }
        if installed > 0 {
            *now += ampom_core::runner::PAGE_INSTALL_COST.saturating_mul(installed);
        }
    }

    fn is_in_flight(&self, page: PageId) -> bool {
        self.in_flight.contains(&page)
    }

    fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    fn forward_syscall(&mut self, now: SimTime, work: SimDuration) -> Result<SimTime, AmpomError> {
        let start = Instant::now();
        let call_id = self
            .client_mut()?
            .send_syscall(work.as_nanos())
            .map_err(AmpomError::from)?;
        let deadline = start + SYSCALL_TIMEOUT;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let frame = self
                .client_mut()?
                .recv(remaining)
                .map_err(AmpomError::from)?;
            match frame {
                Some(Frame::SyscallReply { call_id: c }) if c == call_id => break,
                Some(other) => self.handle_frame(other, now)?,
                None => {
                    return Err(AmpomError::Transport(format!(
                        "forwarded syscall {call_id} unanswered after {SYSCALL_TIMEOUT:?}"
                    )))
                }
            }
        }
        // The round trip is measured; the home-node execution is virtual.
        Ok(now + sim_duration(start.elapsed()) + SYSCALL_EXEC_COST + work)
    }

    fn writeback_batch(
        &mut self,
        now: SimTime,
        seq: u64,
        entries: &[(PageId, u64)],
    ) -> Result<(u64, SimTime), AmpomError> {
        let start = Instant::now();
        let client = self.client_mut()?;
        let sent_mark = client.bytes_sent();
        client
            .send_writeback(seq, entries)
            .map_err(AmpomError::from)?;
        let bytes = self.client_mut()?.bytes_sent() - sent_mark;
        let deadline = start + WRITEBACK_TIMEOUT;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let frame = self
                .client_mut()?
                .recv(remaining)
                .map_err(AmpomError::from)?;
            match frame {
                Some(Frame::WritebackAck { seq: s, .. }) if s == seq => break,
                Some(other) => self.handle_frame(other, now)?,
                None => {
                    return Err(AmpomError::Transport(format!(
                        "writeback batch {seq} unacked after {WRITEBACK_TIMEOUT:?}"
                    )))
                }
            }
        }
        Ok((bytes, now + sim_duration(start.elapsed())))
    }

    fn estimates(&mut self, _now: SimTime) -> NetEstimates {
        NetEstimates {
            t0: self.measured.t0,
            td: self.measured.td,
        }
    }

    fn on_window_wrap(&mut self, now: SimTime, wraps: u64) {
        if wraps <= self.last_wraps {
            return;
        }
        self.last_wraps = wraps;
        // Live re-probe, EWMA-smoothed like the oM_infoD daemon.
        let pinged = match self.client.as_mut() {
            Some(client) => client.ping(Duration::from_secs(1)).ok(),
            None => None,
        };
        if let Some((rtt, stray)) = pinged {
            for frame in stray {
                if self.handle_frame(frame, now).is_err() {
                    self.dead = true;
                }
            }
            let sample_t0 = sim_duration(rtt) / 2;
            self.measured.t0 = SimDuration::from_nanos(
                (self.measured.t0.as_nanos() / 8).saturating_mul(7) + sample_t0.as_nanos() / 8,
            );
        }
    }

    fn reply_utilization(&mut self, _now: SimTime) -> f64 {
        let Some((epoch, mark)) = self.run_epoch else {
            return 0.0;
        };
        let Some(client) = self.client.as_ref() else {
            return 0.0;
        };
        let secs = epoch.elapsed().as_secs_f64();
        if secs <= 0.0 || self.measured.capacity_bytes_per_sec == 0 {
            return 0.0;
        }
        let bytes = client.bytes_received().saturating_sub(mark) as f64;
        (bytes / (self.measured.capacity_bytes_per_sec as f64 * secs)).clamp(0.0, 1.0)
    }

    fn bytes_to_dest(&self) -> u64 {
        self.client.as_ref().map_or(0, |c| c.bytes_received())
    }

    fn bytes_from_dest(&self) -> u64 {
        self.client.as_ref().map_or(0, |c| c.bytes_sent())
    }

    fn deputy_stats(&self) -> DeputyStats {
        self.cached_deputy
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    fn drain_trace(&mut self) -> Vec<(SimTime, TraceKind, TraceData)> {
        self.refresh_deputy_stats();
        std::mem::take(&mut self.trace)
    }
}

/// Runs `workload` under `cfg` against a live deputy at `endpoint`:
/// calibration handshake, freeze over the wire, then the standard
/// demand-paging/prefetching protocol loop on real sockets.
pub fn run_live<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: &RunConfig,
    endpoint: Endpoint,
    opts: &LiveOptions,
) -> Result<LiveReport, AmpomError> {
    if opts.policy == FailurePolicy::Remigrate {
        return Err(AmpomError::InvalidConfig(
            "the remigrate policy is not supported over the live transport".into(),
        ));
    }
    if cfg.cross_traffic.is_some() {
        return Err(AmpomError::InvalidConfig(
            "cross traffic is a simulated-link feature; shape the real \
             network instead for live runs"
                .into(),
        ));
    }
    let mut transport = LiveTransport::connect(endpoint, opts)?;
    let measured = transport.measured();
    let report = run_with_transport(workload, cfg, &mut transport)?;
    Ok(LiveReport { report, measured })
}

/// Sequential bulk fetch: requests `pages` in [`FETCH_BATCH`]-sized
/// frames, awaiting each batch in full before sending the next. Returns
/// the number of stray/duplicate replies that arrived interleaved.
pub(crate) fn fetch_all(client: &mut MigrantClient, pages: &[PageId]) -> Result<u64, RpcError> {
    let mut dupes = 0u64;
    for batch in pages.chunks(FETCH_BATCH) {
        client.send_request(None, batch)?;
        let batch_set: HashSet<PageId> = batch.iter().copied().collect();
        let mut missing = batch_set.clone();
        let deadline = Instant::now() + FETCH_TIMEOUT;
        // Books one delivered page against the batch. Replies to
        // requests abandoned *before* this bulk fetch (in-flight pages
        // at fallback time) are strays, not duplicates: the simulated
        // fallback clears its in-flight set and counts nothing, so
        // counting them here would double-count a reply that note_reply
        // had already suppressed or that was never a duplicate at all.
        let book = |page: PageId,
                    data: &[u8],
                    missing: &mut HashSet<PageId>,
                    dupes: &mut u64|
         -> Result<(), RpcError> {
            if !crate::frame::payload_matches(page, data) {
                return Err(RpcError::Protocol(format!(
                    "payload for page {page} is corrupt"
                )));
            }
            if missing.remove(&page) {
                // First delivery for this batch.
            } else if batch_set.contains(&page) {
                // A resend raced its original; the extra copy of a
                // batch page is a genuine duplicate.
                *dupes += 1;
            }
            Ok(())
        };
        while !missing.is_empty() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match client.recv(remaining)? {
                Some(Frame::PageReply { page, data, .. }) => {
                    book(page, &data, &mut missing, &mut dupes)?;
                }
                Some(Frame::PageBatchReply { pages, .. }) => {
                    for (page, data) in pages {
                        book(page, &data, &mut missing, &mut dupes)?;
                    }
                }
                Some(Frame::Error { code, detail }) if code == CODE_OVERLOADED => {
                    // An admission-bounded deputy shed part of the batch.
                    // Re-request the shed pages still owed; the pause lets
                    // the DRR pass drain below the bound. The batch
                    // deadline still bounds the loop.
                    let again: Vec<PageId> = shed_pages_from_detail(&detail)
                        .into_iter()
                        .filter(|p| missing.contains(p))
                        .collect();
                    if !again.is_empty() {
                        std::thread::sleep(Duration::from_millis(1));
                        client.send_request(None, &again)?;
                    }
                }
                Some(Frame::Error { code, detail }) => {
                    return Err(RpcError::Protocol(format!("deputy error {code}: {detail}")))
                }
                Some(_) => {}
                None => {
                    return Err(RpcError::Protocol(format!(
                        "bulk fetch timed out with {} pages outstanding",
                        missing.len()
                    )))
                }
            }
        }
    }
    Ok(dupes)
}

fn deputy_stats_from_wire(ws: WireStats) -> DeputyStats {
    DeputyStats {
        queued_requests: ws.queued_requests,
        max_backlog: SimDuration::from_nanos(ws.max_backlog_ns),
        busy_time: SimDuration::from_nanos(ws.busy_time_ns),
        prefetch_pages_shed: ws.prefetch_pages_shed,
        demand_pages_shed: ws.demand_pages_shed,
        shed_events: ws.shed_events,
        hellos_deferred: ws.hellos_deferred,
    }
}

/// Parses the page list out of a [`CODE_OVERLOADED`] error detail
/// (`"shed prefetch: 4,5,9"`). Tolerant: anything unparseable is simply
/// skipped, and a detail with no list yields no pages — the timeout path
/// then recovers the shed pages instead.
fn shed_pages_from_detail(detail: &str) -> Vec<PageId> {
    let Some((_, list)) = detail.rsplit_once(':') else {
        return Vec::new();
    };
    list.split(',')
        .filter_map(|tok| tok.trim().parse::<u64>().ok())
        .map(PageId)
        .collect()
}

fn scheme_byte(scheme: Scheme) -> u8 {
    match scheme {
        Scheme::OpenMosix => 0,
        Scheme::NoPrefetch => 1,
        Scheme::Ampom => 2,
        Scheme::Ffa => 3,
    }
}

/// Maps a measured wall interval onto the virtual time axis, 1:1.
fn sim_duration(d: Duration) -> SimDuration {
    SimDuration::from_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

/// Maps a virtual duration onto the wall clock, 1:1.
fn wall_duration(d: SimDuration) -> Duration {
    Duration::from_nanos(d.as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DeputyServer, ServerConfig};

    /// A transport with every connection-independent field defaulted, for
    /// exercising `note_reply` without a socket.
    fn offline_transport() -> LiveTransport {
        let measured = MeasuredLink {
            t0: SimDuration::from_micros(50),
            td: SimDuration::from_micros(300),
            capacity_bytes_per_sec: 12_000_000,
        };
        let schedule = RetrySchedule::new(
            RetryPolicy::default(),
            FailurePolicy::StallReconnect,
            MIN_BASE_TIMEOUT,
        );
        LiveTransport {
            endpoint: Endpoint::tcp("127.0.0.1:1"),
            schedule,
            measured,
            client: None,
            dead: false,
            in_flight: HashSet::new(),
            staged: HashSet::new(),
            origin: HashSet::new(),
            stats: FaultStats::default(),
            trace: Vec::new(),
            cached_deputy: DeputyStats::default(),
            last_wraps: 0,
            run_epoch: None,
        }
    }

    fn payload(page: PageId) -> Vec<u8> {
        let mut data = vec![0u8; PAGE_SIZE as usize];
        data[..8].copy_from_slice(&page.0.to_be_bytes());
        data
    }

    /// Cross-transport identity (with
    /// `one_reply_delivered_twice_counts_one_duplicate` in
    /// `ampom_core::reliability`): one reply delivered twice counts
    /// exactly one duplicate.
    #[test]
    fn note_reply_counts_a_resent_copy_exactly_once() {
        let mut t = offline_transport();
        let page = PageId(9);
        t.in_flight.insert(page);
        let data = payload(page);
        t.note_reply(page, &data).unwrap();
        assert!(t.staged.contains(&page));
        assert_eq!(t.stats.duplicate_replies, 0, "first copy is not a dupe");
        t.note_reply(page, &data).unwrap();
        assert_eq!(t.stats.duplicate_replies, 1, "the resent copy is one dupe");
        assert_eq!(t.staged.len(), 1, "staging stays idempotent");
    }

    #[test]
    fn overload_error_reverts_unstaged_prefetch_and_stays_nonfatal() {
        let mut t = offline_transport();
        let staged = PageId(1);
        let shed = PageId(2);
        t.in_flight.insert(staged);
        t.in_flight.insert(shed);
        t.staged.insert(staged);
        t.origin.insert(shed);
        t.handle_frame(
            Frame::Error {
                code: crate::frame::CODE_OVERLOADED,
                detail: "shed prefetch: 2,7".into(),
            },
            SimTime::ZERO,
        )
        .expect("a 503 is non-fatal");
        assert!(
            !t.in_flight.contains(&shed),
            "the shed page keeps its in-flight mark"
        );
        assert!(t.origin.contains(&shed), "the shed page left the origin");
        assert!(
            t.in_flight.contains(&staged),
            "an already-delivered page was reverted"
        );
        // Every other error code stays fatal.
        let fatal = t.handle_frame(
            Frame::Error {
                code: 400,
                detail: "bad".into(),
            },
            SimTime::ZERO,
        );
        assert!(fatal.is_err());
    }

    #[test]
    fn shed_detail_parser_is_tolerant() {
        assert_eq!(
            shed_pages_from_detail("shed prefetch: 4,5,9"),
            vec![PageId(4), PageId(5), PageId(9)]
        );
        assert_eq!(shed_pages_from_detail("no list here"), Vec::<PageId>::new());
        assert_eq!(
            shed_pages_from_detail("shed prefetch: 3,x,11"),
            vec![PageId(3), PageId(11)],
            "garbage tokens are skipped, not fatal"
        );
    }

    #[test]
    fn note_reply_rejects_corrupt_payload() {
        let mut t = offline_transport();
        let page = PageId(3);
        t.in_flight.insert(page);
        let mut data = payload(page);
        data[0] ^= 0xff;
        assert!(t.note_reply(page, &data).is_err());
    }

    /// Regression for the bulk-fetch duplicate audit: a stray reply to a
    /// request abandoned *before* the bulk fetch must not be booked as a
    /// duplicate (the simulated fallback clears its in-flight set and
    /// books nothing); an overlapping request still *pending* at the
    /// deputy coalesces into one reply; and only a page re-requested
    /// *after* its first copy was served produces a genuine duplicate,
    /// counted exactly once.
    #[test]
    fn bulk_fetch_ignores_strays_and_counts_batch_resends_once() {
        let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let endpoint = Endpoint::tcp(server.local_addr());
        let mut client =
            MigrantClient::connect(endpoint, 64, scheme_byte(Scheme::Ampom)).expect("connect");
        let served = |server: &DeputyServer, want: u64| {
            let deadline = Instant::now() + Duration::from_secs(5);
            while server.stats().pages_served < want {
                assert!(
                    Instant::now() < deadline,
                    "deputy never served {want} pages"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        // An abandoned request: page 7's reply will sit in the socket when
        // the bulk fetch starts (FIFO ordering makes it arrive first).
        client.send_request(Some(PageId(7)), &[]).expect("send");
        let stray_only = fetch_all(&mut client, &[PageId(10), PageId(11)]).expect("fetch");
        assert_eq!(
            stray_only, 0,
            "a stray from an abandoned request is not a duplicate"
        );

        // The same page twice in one request frame: both land in the
        // deputy's pending queue before any service pass, so the second
        // coalesces and exactly one reply comes back — no duplicate.
        let coalesced = fetch_all(&mut client, &[PageId(30), PageId(30), PageId(31)]).expect("f");
        assert_eq!(coalesced, 0, "a coalesced request yields a single reply");
        assert_eq!(server.stats().pages_coalesced, 1);

        // A page re-requested *after* its first copy was served (the
        // deputy's pending entry is gone, so no coalescing): two replies
        // for page 20 on the wire. The second batch page keeps the
        // receive loop alive past the first copy, so the resent copy is
        // observed and counted exactly once.
        client.send_request(Some(PageId(20)), &[]).expect("send");
        served(&server, 6); // 7, 10, 11, 30, 31, 20
        let resent = fetch_all(&mut client, &[PageId(20), PageId(21)]).expect("fetch");
        assert_eq!(resent, 1, "the extra copy of a batch page counts once");

        drop(client);
        server.shutdown();
    }
}
