//! The wire frame codec.
//!
//! Every message on the deputy↔migrant socket is one frame:
//!
//! ```text
//! [ u32 length (big-endian) ][ u8 type ][ payload ... ]
//! ```
//!
//! `length` counts the type byte plus the payload. All multi-byte
//! integers are big-endian. The frame set mirrors the simulated
//! protocol's message types one-to-one (request/reply sizes in
//! `ampom-net::calibration` were chosen to match this layout):
//!
//! | type | frame            | payload                                        |
//! |------|------------------|------------------------------------------------|
//! | 0x01 | `Hello`          | version u16, total_pages u64, scheme u8        |
//! | 0x02 | `HelloAck`       | version u16, page_size u32                     |
//! | 0x03 | `PageRequest`    | req_id u64, count u32, page ids u64 × count    |
//! | 0x04 | `PrefetchBatch`  | req_id u64, count u32, page ids u64 × count    |
//! | 0x05 | `PageReply`      | req_id u64, page u64, 4096 data bytes          |
//! | 0x06 | `SyscallForward` | call_id u64, work_ns u64                       |
//! | 0x07 | `SyscallReply`   | call_id u64                                    |
//! | 0x08 | `Ping`           | token u64                                      |
//! | 0x09 | `Pong`           | token u64                                      |
//! | 0x0a | `StatsFetch`     | —                                              |
//! | 0x0b | `StatsReply`     | 12 × u64 counters                              |
//! | 0x0c | `Error`          | code u16, detail utf-8                         |
//! | 0x0d | `Bye`            | —                                              |
//! | 0x0e | `PageBatchReply` | req_id u64, count u32, (page u64, 4096 B) × count |
//! | 0x0f | `WritebackBatch` | seq u64, count u32, (page u64, version u64, 4096 B) × count |
//! | 0x10 | `WritebackAck`   | seq u64, applied u32, duplicates u32           |
//! | 0x11 | `ReturnRequest`  | —                                              |
//! | 0x12 | `ReturnAck`      | stub_pages u64, freed_pages u64                |
//!
//! `PageBatchReply` is the multiplexing deputy's reply batching: pages a
//! migrant's DRR visit serves together leave as one frame instead of a
//! run of `PageReply`s. [`MAX_BATCH_PAGES`] bounds the batch so the
//! frame stays under [`MAX_FRAME_BYTES`].
//!
//! The version-4 lifecycle frames travel the other way: `WritebackBatch`
//! carries dirty-page deltas home (each page tagged with a monotone
//! version so the deputy's sink applies duplicates idempotently),
//! `WritebackAck` settles a batch, and `ReturnRequest`/`ReturnAck`
//! negotiate home-return migration — the ack reports how many pages stay
//! behind as the remote deputy stub versus free at home immediately.
//!
//! Decoding never panics: every malformed input maps onto a typed
//! [`CodecError`] (the property tests in `tests/prop.rs` fuzz this).

use std::fmt;

use ampom_mem::page::{PageId, PAGE_SIZE};

/// Protocol version spoken by this build; bumped on any frame change.
/// Version 2 added `PageBatchReply` and the wider `StatsReply`; version
/// 3 widened `StatsReply` again with the load-shedding counters and
/// introduced the non-fatal `503 Overloaded` error code; version 4 added
/// the page-lifecycle frames (`WritebackBatch`/`WritebackAck` and
/// `ReturnRequest`/`ReturnAck`).
pub const WIRE_VERSION: u16 = 4;

/// `Error` code: the deputy refused the work because it is saturated.
/// Unlike every other error code this one is **non-fatal** — the
/// connection stays open, the client reverts the refused prefetch pages
/// and retries or degrades to demand fetches.
pub const CODE_OVERLOADED: u16 = 503;

/// Upper bound on pages in one [`Frame::PageBatchReply`]: 64 batched
/// pages is ~257 KiB on the wire, comfortably under [`MAX_FRAME_BYTES`].
pub const MAX_BATCH_PAGES: usize = 64;

/// Hard cap on one frame's length field. The largest legitimate frame is
/// a maximal [`Frame::WritebackBatch`] ([`MAX_BATCH_PAGES`] pages,
/// ~257 KiB); 1 MiB leaves head-room while bounding what a corrupted
/// length prefix can make the reader allocate.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Bytes of the length prefix.
pub const LENGTH_PREFIX_BYTES: usize = 4;

/// A malformed frame. Every variant names what the decoder saw so wire
/// corruption diagnoses itself in logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the fields it promised.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes it had.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized(u32),
    /// The type byte is not a known frame type.
    UnknownType(u8),
    /// The payload is longer than its fields account for.
    TrailingBytes(usize),
    /// A page-request count disagrees with the payload size.
    BadCount(u32),
    /// A `PageReply` carried a data block that is not one page.
    BadPageSize(usize),
    /// An `Error` frame's detail is not UTF-8.
    BadUtf8,
    /// A zero-length frame (no type byte).
    Empty,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, got } => {
                write!(f, "frame truncated: need {need} bytes, got {got}")
            }
            CodecError::Oversized(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_BYTES}")
            }
            CodecError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            CodecError::BadCount(n) => write!(f, "page count {n} disagrees with payload"),
            CodecError::BadPageSize(n) => {
                write!(f, "page reply carries {n} bytes, expected {PAGE_SIZE}")
            }
            CodecError::BadUtf8 => write!(f, "error detail is not utf-8"),
            CodecError::Empty => write!(f, "empty frame (no type byte)"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Deputy-side service statistics carried by [`Frame::StatsReply`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Requests that arrived while the deputy was busy.
    pub queued_requests: u64,
    /// Worst backlog observed, nanoseconds.
    pub max_backlog_ns: u64,
    /// Cumulative service time, nanoseconds.
    pub busy_time_ns: u64,
    /// Pages served.
    pub pages_served: u64,
    /// Requests answered.
    pub requests_served: u64,
    /// Page requests absorbed by coalescing (the page was already
    /// pending; one service event answers both requests).
    pub pages_coalesced: u64,
    /// Batched reply frames written ([`Frame::PageBatchReply`]).
    pub batch_replies: u64,
    /// Worst pending-page queue depth this session reached.
    pub max_pending_pages: u64,
    /// Prefetch pages refused by admission control (recoverable: the
    /// client reverts them and they degrade to demand fetches).
    pub prefetch_pages_shed: u64,
    /// Demand pages refused outright (hard 503s; zero unless the server
    /// is past even its demand reserve).
    pub demand_pages_shed: u64,
    /// Requests that had at least one page shed.
    pub shed_events: u64,
    /// `Hello`s deferred by the admission gate.
    pub hellos_deferred: u64,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Migrant → deputy: opens a session.
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u16,
        /// Pages in the migrant's address space; the deputy serves ids
        /// below this bound.
        total_pages: u64,
        /// Migration scheme (informational; `Scheme` as a raw byte).
        scheme: u8,
    },
    /// Deputy → migrant: session accepted.
    HelloAck {
        /// Version the deputy speaks.
        version: u16,
        /// Page size the deputy serves.
        page_size: u32,
    },
    /// Migrant → deputy: demand page (first id) plus piggy-backed zone.
    PageRequest {
        /// Request id (echoed in replies).
        req_id: u64,
        /// Requested page ids, demand first.
        pages: Vec<PageId>,
    },
    /// Migrant → deputy: prefetch-only batch (no demand page; the deputy
    /// may serve it at lower priority).
    PrefetchBatch {
        /// Request id (echoed in replies).
        req_id: u64,
        /// Requested page ids.
        pages: Vec<PageId>,
    },
    /// Deputy → migrant: one page of data.
    PageReply {
        /// The request this page answers.
        req_id: u64,
        /// The page id.
        page: PageId,
        /// Page contents ([`PAGE_SIZE`] bytes).
        data: Vec<u8>,
    },
    /// Migrant → deputy: execute a system call at the home node.
    SyscallForward {
        /// Call id (echoed in the reply).
        call_id: u64,
        /// Work the call performs at the home node, nanoseconds.
        work_ns: u64,
    },
    /// Deputy → migrant: the forwarded call completed.
    SyscallReply {
        /// The call this answers.
        call_id: u64,
    },
    /// RTT probe.
    Ping {
        /// Correlation token.
        token: u64,
    },
    /// RTT probe answer.
    Pong {
        /// Token echoed from the ping.
        token: u64,
    },
    /// Migrant → deputy: fetch service statistics.
    StatsFetch,
    /// Deputy → migrant: service statistics.
    StatsReply(WireStats),
    /// Either side: a protocol error (the connection closes after).
    Error {
        /// Machine-readable code.
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
    /// Either side: orderly shutdown of the session.
    Bye,
    /// Deputy → migrant: several pages served by one scheduling visit,
    /// batched into one frame (at most [`MAX_BATCH_PAGES`] pages).
    PageBatchReply {
        /// The request the *first* page answers; coalesced pages from
        /// other requests ride along under the same id.
        req_id: u64,
        /// `(page id, PAGE_SIZE contents)` pairs.
        pages: Vec<(PageId, Vec<u8>)>,
    },
    /// Migrant → deputy: one writeback delta batch of dirty pages headed
    /// home (at most [`MAX_BATCH_PAGES`] pages). Versions are per-page
    /// monotone counters: the sink applies a page only when its version
    /// exceeds the last applied one, so retransmitted batches are
    /// idempotent (exactly-once accounting over at-least-once delivery).
    WritebackBatch {
        /// Batch sequence number (echoed by the ack).
        seq: u64,
        /// `(page id, version, PAGE_SIZE contents)` triples.
        pages: Vec<(PageId, u64, Vec<u8>)>,
    },
    /// Deputy → migrant: a writeback batch settled.
    WritebackAck {
        /// The batch this answers.
        seq: u64,
        /// Pages newly applied by this batch.
        applied: u32,
        /// Pages skipped as duplicates (version already applied).
        duplicates: u32,
    },
    /// Migrant → deputy: begin home-return migration. The deputy answers
    /// with [`Frame::ReturnAck`] and keeps serving as the *remote* stub
    /// for pages the migrant fetched and dirtied but never wrote back.
    ReturnRequest,
    /// Deputy → migrant: home-return accounting.
    ReturnAck {
        /// Pages that stay behind on the remote node's deputy stub
        /// (fetched, not written back).
        stub_pages: u64,
        /// Pages free at home immediately (never fetched, or fetched and
        /// then written back).
        freed_pages: u64,
    },
}

impl Frame {
    /// The frame's type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::HelloAck { .. } => 0x02,
            Frame::PageRequest { .. } => 0x03,
            Frame::PrefetchBatch { .. } => 0x04,
            Frame::PageReply { .. } => 0x05,
            Frame::SyscallForward { .. } => 0x06,
            Frame::SyscallReply { .. } => 0x07,
            Frame::Ping { .. } => 0x08,
            Frame::Pong { .. } => 0x09,
            Frame::StatsFetch => 0x0a,
            Frame::StatsReply(_) => 0x0b,
            Frame::Error { .. } => 0x0c,
            Frame::Bye => 0x0d,
            Frame::PageBatchReply { .. } => 0x0e,
            Frame::WritebackBatch { .. } => 0x0f,
            Frame::WritebackAck { .. } => 0x10,
            Frame::ReturnRequest => 0x11,
            Frame::ReturnAck { .. } => 0x12,
        }
    }

    /// Encodes the frame — length prefix included — appending to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len_at = out.len();
        out.extend_from_slice(&[0u8; LENGTH_PREFIX_BYTES]);
        out.push(self.type_byte());
        match self {
            Frame::Hello {
                version,
                total_pages,
                scheme,
            } => {
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(&total_pages.to_be_bytes());
                out.push(*scheme);
            }
            Frame::HelloAck { version, page_size } => {
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(&page_size.to_be_bytes());
            }
            Frame::PageRequest { req_id, pages } | Frame::PrefetchBatch { req_id, pages } => {
                out.extend_from_slice(&req_id.to_be_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_be_bytes());
                for p in pages {
                    out.extend_from_slice(&p.0.to_be_bytes());
                }
            }
            Frame::PageReply { req_id, page, data } => {
                out.extend_from_slice(&req_id.to_be_bytes());
                out.extend_from_slice(&page.0.to_be_bytes());
                out.extend_from_slice(data);
            }
            Frame::SyscallForward { call_id, work_ns } => {
                out.extend_from_slice(&call_id.to_be_bytes());
                out.extend_from_slice(&work_ns.to_be_bytes());
            }
            Frame::SyscallReply { call_id } => {
                out.extend_from_slice(&call_id.to_be_bytes());
            }
            Frame::Ping { token } | Frame::Pong { token } => {
                out.extend_from_slice(&token.to_be_bytes());
            }
            Frame::StatsFetch | Frame::Bye => {}
            Frame::StatsReply(s) => {
                out.extend_from_slice(&s.queued_requests.to_be_bytes());
                out.extend_from_slice(&s.max_backlog_ns.to_be_bytes());
                out.extend_from_slice(&s.busy_time_ns.to_be_bytes());
                out.extend_from_slice(&s.pages_served.to_be_bytes());
                out.extend_from_slice(&s.requests_served.to_be_bytes());
                out.extend_from_slice(&s.pages_coalesced.to_be_bytes());
                out.extend_from_slice(&s.batch_replies.to_be_bytes());
                out.extend_from_slice(&s.max_pending_pages.to_be_bytes());
                out.extend_from_slice(&s.prefetch_pages_shed.to_be_bytes());
                out.extend_from_slice(&s.demand_pages_shed.to_be_bytes());
                out.extend_from_slice(&s.shed_events.to_be_bytes());
                out.extend_from_slice(&s.hellos_deferred.to_be_bytes());
            }
            Frame::PageBatchReply { req_id, pages } => {
                out.extend_from_slice(&req_id.to_be_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_be_bytes());
                for (page, data) in pages {
                    out.extend_from_slice(&page.0.to_be_bytes());
                    out.extend_from_slice(data);
                }
            }
            Frame::WritebackBatch { seq, pages } => {
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_be_bytes());
                for (page, version, data) in pages {
                    out.extend_from_slice(&page.0.to_be_bytes());
                    out.extend_from_slice(&version.to_be_bytes());
                    out.extend_from_slice(data);
                }
            }
            Frame::WritebackAck {
                seq,
                applied,
                duplicates,
            } => {
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&applied.to_be_bytes());
                out.extend_from_slice(&duplicates.to_be_bytes());
            }
            Frame::ReturnRequest => {}
            Frame::ReturnAck {
                stub_pages,
                freed_pages,
            } => {
                out.extend_from_slice(&stub_pages.to_be_bytes());
                out.extend_from_slice(&freed_pages.to_be_bytes());
            }
            Frame::Error { code, detail } => {
                out.extend_from_slice(&code.to_be_bytes());
                out.extend_from_slice(detail.as_bytes());
            }
        }
        let body = (out.len() - len_at - LENGTH_PREFIX_BYTES) as u32;
        out[len_at..len_at + LENGTH_PREFIX_BYTES].copy_from_slice(&body.to_be_bytes());
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame *body* (everything after the length prefix).
    pub fn decode(body: &[u8]) -> Result<Frame, CodecError> {
        let mut r = Reader::new(body);
        let ty = r.u8().map_err(|_| CodecError::Empty)?;
        let frame = match ty {
            0x01 => Frame::Hello {
                version: r.u16()?,
                total_pages: r.u64()?,
                scheme: r.u8()?,
            },
            0x02 => Frame::HelloAck {
                version: r.u16()?,
                page_size: r.u32()?,
            },
            0x03 | 0x04 => {
                let req_id = r.u64()?;
                let count = r.u32()?;
                let need = (count as usize)
                    .checked_mul(8)
                    .ok_or(CodecError::BadCount(count))?;
                if r.remaining() != need {
                    return Err(CodecError::BadCount(count));
                }
                let mut pages = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    pages.push(PageId(r.u64()?));
                }
                if ty == 0x03 {
                    Frame::PageRequest { req_id, pages }
                } else {
                    Frame::PrefetchBatch { req_id, pages }
                }
            }
            0x05 => {
                let req_id = r.u64()?;
                let page = PageId(r.u64()?);
                let data = r.rest();
                if data.len() as u64 != PAGE_SIZE {
                    return Err(CodecError::BadPageSize(data.len()));
                }
                Frame::PageReply {
                    req_id,
                    page,
                    data: data.to_vec(),
                }
            }
            0x06 => Frame::SyscallForward {
                call_id: r.u64()?,
                work_ns: r.u64()?,
            },
            0x07 => Frame::SyscallReply { call_id: r.u64()? },
            0x08 => Frame::Ping { token: r.u64()? },
            0x09 => Frame::Pong { token: r.u64()? },
            0x0a => Frame::StatsFetch,
            0x0b => Frame::StatsReply(WireStats {
                queued_requests: r.u64()?,
                max_backlog_ns: r.u64()?,
                busy_time_ns: r.u64()?,
                pages_served: r.u64()?,
                requests_served: r.u64()?,
                pages_coalesced: r.u64()?,
                batch_replies: r.u64()?,
                max_pending_pages: r.u64()?,
                prefetch_pages_shed: r.u64()?,
                demand_pages_shed: r.u64()?,
                shed_events: r.u64()?,
                hellos_deferred: r.u64()?,
            }),
            0x0c => {
                let code = r.u16()?;
                let detail = std::str::from_utf8(r.rest())
                    .map_err(|_| CodecError::BadUtf8)?
                    .to_string();
                Frame::Error { code, detail }
            }
            0x0d => Frame::Bye,
            0x0e => {
                let req_id = r.u64()?;
                let count = r.u32()?;
                if count as usize > MAX_BATCH_PAGES {
                    return Err(CodecError::BadCount(count));
                }
                let per_page = 8 + PAGE_SIZE as usize;
                let need = (count as usize)
                    .checked_mul(per_page)
                    .ok_or(CodecError::BadCount(count))?;
                if r.remaining() != need {
                    return Err(CodecError::BadCount(count));
                }
                let mut pages = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let page = PageId(r.u64()?);
                    let data = r.take(PAGE_SIZE as usize)?.to_vec();
                    pages.push((page, data));
                }
                Frame::PageBatchReply { req_id, pages }
            }
            0x0f => {
                let seq = r.u64()?;
                let count = r.u32()?;
                if count as usize > MAX_BATCH_PAGES {
                    return Err(CodecError::BadCount(count));
                }
                let per_page = 8 + 8 + PAGE_SIZE as usize;
                let need = (count as usize)
                    .checked_mul(per_page)
                    .ok_or(CodecError::BadCount(count))?;
                if r.remaining() != need {
                    return Err(CodecError::BadCount(count));
                }
                let mut pages = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let page = PageId(r.u64()?);
                    let version = r.u64()?;
                    let data = r.take(PAGE_SIZE as usize)?.to_vec();
                    pages.push((page, version, data));
                }
                Frame::WritebackBatch { seq, pages }
            }
            0x10 => Frame::WritebackAck {
                seq: r.u64()?,
                applied: r.u32()?,
                duplicates: r.u32()?,
            },
            0x11 => Frame::ReturnRequest,
            0x12 => Frame::ReturnAck {
                stub_pages: r.u64()?,
                freed_pages: r.u64()?,
            },
            other => return Err(CodecError::UnknownType(other)),
        };
        // PageReply/Error consume the rest by construction; everything
        // else must account for every byte.
        let left = r.remaining();
        if left > 0 {
            return Err(CodecError::TrailingBytes(left));
        }
        Ok(frame)
    }
}

/// Incremental frame extraction from a byte stream.
///
/// Socket reads land in [`FrameBuffer::extend`]; [`FrameBuffer::pop`]
/// yields complete frames as they become available, leaving partial
/// frames buffered. Used by both ends of the connection.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix (compacted lazily to amortise the memmove).
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw socket bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame, `Ok(None)` if more bytes are
    /// needed. A codec error is fatal for the stream (framing is lost).
    pub fn pop(&mut self) -> Result<Option<Frame>, CodecError> {
        let avail = &self.buf[self.start..];
        if avail.len() < LENGTH_PREFIX_BYTES {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME_BYTES {
            return Err(CodecError::Oversized(len));
        }
        if len == 0 {
            return Err(CodecError::Empty);
        }
        let total = LENGTH_PREFIX_BYTES + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = Frame::decode(&avail[LENGTH_PREFIX_BYTES..total])?;
        self.start += total;
        if self.start > 64 * 1024 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

/// Bounds-checked big-endian field reader.
struct Reader<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(body: &'a [u8]) -> Self {
        Reader { body, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.body.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                need: n,
                got: self.remaining(),
            });
        }
        let s = &self.body[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.body[self.at..];
        self.at = self.body.len();
        s
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Synthesizes the deterministic contents of `page` served by the test
/// deputy: the page id in the first 8 bytes, then a splitmix64 keystream.
/// Lets the client spot payload corruption without a real memory image.
pub fn page_payload(page: PageId) -> Vec<u8> {
    let mut data = vec![0u8; PAGE_SIZE as usize];
    page_payload_into(page, &mut data);
    data
}

/// [`page_payload`] without the allocation: fills `data` (exactly one
/// page) in place. The serving path synthesizes payloads directly into
/// pooled outbound segments through this, so a busy deputy allocates
/// nothing per page after warm-up.
pub fn page_payload_into(page: PageId, data: &mut [u8]) {
    assert_eq!(
        data.len() as u64,
        PAGE_SIZE,
        "payload buffer is not one page"
    );
    data[..8].copy_from_slice(&page.0.to_be_bytes());
    let mut x = page.0 ^ 0x9e37_79b9_7f4a_7c15;
    for chunk in data[8..].chunks_mut(8) {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let bytes = z.to_be_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
}

/// Whether `data` is a well-formed serve of `page`: exactly one page
/// long and tagged with the page id in its first 8 bytes. Both client
/// validation paths share this so they cannot drift.
pub fn payload_matches(page: PageId, data: &[u8]) -> bool {
    data.len() as u64 == PAGE_SIZE && data[..8] == page.0.to_be_bytes()
}

/// Appends an encoded [`Frame::PageReply`] for `page` to `out`, with the
/// payload synthesized in place — byte-identical to
/// `Frame::PageReply { req_id, page, data: page_payload(page) }.encode_into(out)`
/// but with no intermediate per-page allocation.
pub fn encode_page_reply_into(req_id: u64, page: PageId, out: &mut Vec<u8>) {
    let len_at = out.len();
    out.extend_from_slice(&[0u8; LENGTH_PREFIX_BYTES]);
    out.push(0x05);
    out.extend_from_slice(&req_id.to_be_bytes());
    out.extend_from_slice(&page.0.to_be_bytes());
    let data_at = out.len();
    out.resize(data_at + PAGE_SIZE as usize, 0);
    page_payload_into(page, &mut out[data_at..]);
    let body = (out.len() - len_at - LENGTH_PREFIX_BYTES) as u32;
    out[len_at..len_at + LENGTH_PREFIX_BYTES].copy_from_slice(&body.to_be_bytes());
}

/// Appends an encoded [`Frame::PageBatchReply`] to `out`, payloads
/// synthesized in place. `batch` entries are the pending queue's
/// `(req_id, page)` pairs; the frame's request id is the first entry's,
/// exactly as the DRR serving path batches. At most [`MAX_BATCH_PAGES`]
/// entries, at least one.
pub fn encode_page_batch_reply_into(batch: &[(u64, PageId)], out: &mut Vec<u8>) {
    assert!(
        !batch.is_empty() && batch.len() <= MAX_BATCH_PAGES,
        "batch of {} pages (bounds: 1..={MAX_BATCH_PAGES})",
        batch.len()
    );
    let len_at = out.len();
    out.extend_from_slice(&[0u8; LENGTH_PREFIX_BYTES]);
    out.push(0x0e);
    out.extend_from_slice(&batch[0].0.to_be_bytes());
    out.extend_from_slice(&(batch.len() as u32).to_be_bytes());
    for &(_, page) in batch {
        out.extend_from_slice(&page.0.to_be_bytes());
        let data_at = out.len();
        out.resize(data_at + PAGE_SIZE as usize, 0);
        page_payload_into(page, &mut out[data_at..]);
    }
    let body = (out.len() - len_at - LENGTH_PREFIX_BYTES) as u32;
    out[len_at..len_at + LENGTH_PREFIX_BYTES].copy_from_slice(&body.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_via_frame_buffer() {
        let frames = vec![
            Frame::Hello {
                version: WIRE_VERSION,
                total_pages: 4096,
                scheme: 2,
            },
            Frame::PageRequest {
                req_id: 7,
                pages: vec![PageId(1), PageId(9)],
            },
            Frame::PageReply {
                req_id: 7,
                page: PageId(1),
                data: page_payload(PageId(1)),
            },
            Frame::Bye,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut fb = FrameBuffer::new();
        // Feed one byte at a time: framing must survive arbitrary splits.
        let mut got = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(f) = fb.pop().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert_eq!(fb.pop(), Err(CodecError::Oversized(MAX_FRAME_BYTES + 1)));
    }

    #[test]
    fn payload_is_deterministic_and_tagged() {
        let a = page_payload(PageId(42));
        let b = page_payload(PageId(42));
        assert_eq!(a, b);
        assert_eq!(&a[..8], &42u64.to_be_bytes());
        assert_ne!(a, page_payload(PageId(43)));
        assert!(payload_matches(PageId(42), &a));
        assert!(!payload_matches(PageId(43), &a), "wrong tag");
        assert!(!payload_matches(PageId(42), &a[..100]), "wrong size");
    }

    #[test]
    fn allocation_free_reply_encoders_match_frame_encode() {
        let page = PageId(97);
        let mut direct = Vec::new();
        encode_page_reply_into(11, page, &mut direct);
        let via_frame = Frame::PageReply {
            req_id: 11,
            page,
            data: page_payload(page),
        }
        .encode();
        assert_eq!(direct, via_frame);

        let batch: Vec<(u64, PageId)> = vec![(5, PageId(0)), (6, PageId(3)), (5, PageId(900))];
        let mut direct = Vec::new();
        encode_page_batch_reply_into(&batch, &mut direct);
        let via_frame = Frame::PageBatchReply {
            req_id: 5,
            pages: batch.iter().map(|&(_, p)| (p, page_payload(p))).collect(),
        }
        .encode();
        assert_eq!(direct, via_frame, "batch encoder drifted from the codec");

        // Appending after existing bytes leaves them untouched.
        let mut tail = vec![0xAAu8; 7];
        encode_page_reply_into(1, PageId(1), &mut tail);
        assert_eq!(&tail[..7], &[0xAA; 7]);
    }
}
