//! The migrant-side connection: dial, handshake, frame I/O, reconnect.
//!
//! [`MigrantClient`] owns one socket to the deputy and the framing state
//! on it. It is deliberately mechanical — *when* to retry, degrade or
//! reconnect is decided by the shared
//! [`RetrySchedule`](ampom_core::RetrySchedule) driven from
//! [`LiveTransport`](crate::live::LiveTransport); the client only
//! provides the verbs (send a frame, receive with a deadline, redial).
//!
//! Client→deputy frames are small (a maximal 64-page request is under
//! 600 bytes), so sends never block on a full socket buffer while the
//! deputy is itself blocked writing replies — the client can always
//! finish a send and return to draining the reply stream, which is what
//! makes a single-threaded migrant deadlock-free.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ampom_mem::page::{PageId, PAGE_SIZE};

use crate::frame::{Frame, FrameBuffer, WIRE_VERSION};
use crate::RpcError;

/// Where the deputy listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, `host:port`.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// A TCP endpoint.
    pub fn tcp(addr: impl Into<String>) -> Self {
        Endpoint::Tcp(addr.into())
    }

    /// A Unix-domain endpoint.
    #[cfg(unix)]
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        Endpoint::Unix(path.into())
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(on),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(on),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// How long the version handshake may take before the connection is
/// declared dead. Generous: this also covers TCP connection setup.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// One migrant session with the deputy.
pub struct MigrantClient {
    endpoint: Endpoint,
    stream: Stream,
    fb: FrameBuffer,
    read_buf: Vec<u8>,
    total_pages: u64,
    scheme_byte: u8,
    next_req_id: u64,
    next_call_id: u64,
    next_token: u64,
    bytes_sent: u64,
    bytes_received: u64,
}

impl std::fmt::Debug for MigrantClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigrantClient")
            .field("endpoint", &self.endpoint)
            .field("total_pages", &self.total_pages)
            .field("bytes_sent", &self.bytes_sent)
            .field("bytes_received", &self.bytes_received)
            .finish()
    }
}

impl MigrantClient {
    /// Dials the deputy and completes the version handshake for a
    /// migrant whose address space spans `total_pages` pages.
    pub fn connect(
        endpoint: Endpoint,
        total_pages: u64,
        scheme_byte: u8,
    ) -> Result<MigrantClient, RpcError> {
        let stream = dial(&endpoint)?;
        let mut client = MigrantClient {
            endpoint,
            stream,
            fb: FrameBuffer::new(),
            read_buf: vec![0u8; 64 * 1024],
            total_pages,
            scheme_byte,
            next_req_id: 1,
            next_call_id: 1,
            next_token: 1,
            bytes_sent: 0,
            bytes_received: 0,
        };
        client.handshake()?;
        Ok(client)
    }

    /// Drops the current socket, redials and re-handshakes. Buffered
    /// partial frames from the dead connection are discarded (framing
    /// restarts clean on the new byte stream).
    pub fn reconnect(&mut self) -> Result<(), RpcError> {
        self.stream = dial(&self.endpoint)?;
        self.fb = FrameBuffer::new();
        self.handshake()
    }

    fn handshake(&mut self) -> Result<(), RpcError> {
        self.send(&Frame::Hello {
            version: WIRE_VERSION,
            total_pages: self.total_pages,
            scheme: self.scheme_byte,
        })?;
        match self.recv(HANDSHAKE_TIMEOUT)? {
            Some(Frame::HelloAck { version, page_size }) => {
                if version != WIRE_VERSION {
                    return Err(RpcError::Handshake(format!(
                        "deputy speaks version {version}, we speak {WIRE_VERSION}"
                    )));
                }
                if u64::from(page_size) != PAGE_SIZE {
                    return Err(RpcError::Handshake(format!(
                        "deputy serves {page_size}-byte pages, we use {PAGE_SIZE}"
                    )));
                }
                Ok(())
            }
            Some(Frame::Error { code, detail }) => Err(RpcError::Handshake(format!(
                "deputy error {code}: {detail}"
            ))),
            Some(other) => Err(RpcError::Handshake(format!(
                "expected hello-ack, got frame type {:#04x}",
                other.type_byte()
            ))),
            None => Err(RpcError::Handshake("hello-ack timed out".into())),
        }
    }

    /// Encodes and writes one frame (flushed — requests must not sit in
    /// a userspace buffer while we wait for their replies).
    pub fn send(&mut self, frame: &Frame) -> Result<(), RpcError> {
        let wire = frame.encode();
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        self.bytes_sent += wire.len() as u64;
        Ok(())
    }

    /// Receives the next frame, waiting at most `timeout`. `Ok(None)`
    /// means the deadline passed with no complete frame;
    /// [`RpcError::Disconnected`] means the deputy closed the stream.
    pub fn recv(&mut self, timeout: Duration) -> Result<Option<Frame>, RpcError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(frame) = self.fb.pop()? {
                return Ok(Some(frame));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            // set_read_timeout(0) would mean "block forever"; the
            // deadline check above guarantees remaining > 0 here.
            self.stream.set_read_timeout(Some(remaining))?;
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => return Err(RpcError::Disconnected),
                Ok(n) => {
                    self.bytes_received += n as u64;
                    self.fb.extend(&self.read_buf[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(RpcError::Io(e)),
            }
        }
    }

    /// Switches the socket's blocking mode. The `deputybench` driver
    /// multiplexes thousands of clients through one poll loop, so it
    /// flips them all non-blocking and consumes replies via
    /// [`MigrantClient::try_recv`]; the blocking verbs above assume the
    /// default blocking mode.
    pub fn set_nonblocking(&mut self, on: bool) -> Result<(), RpcError> {
        self.stream.set_nonblocking(on)?;
        Ok(())
    }

    /// The raw socket descriptor, for registering with a
    /// [`Poller`](crate::poll::Poller).
    #[cfg(unix)]
    pub fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        match &self.stream {
            Stream::Tcp(s) => {
                use std::os::unix::io::AsRawFd;
                s.as_raw_fd()
            }
            Stream::Unix(s) => {
                use std::os::unix::io::AsRawFd;
                s.as_raw_fd()
            }
        }
    }

    /// Non-blocking receive: returns an already-buffered frame or reads
    /// whatever the socket has. `Ok(None)` means no complete frame is
    /// available yet. The socket must be in non-blocking mode
    /// ([`MigrantClient::set_nonblocking`]) — on a blocking socket this
    /// degenerates to a blocking read.
    pub fn try_recv(&mut self) -> Result<Option<Frame>, RpcError> {
        loop {
            if let Some(frame) = self.fb.pop()? {
                return Ok(Some(frame));
            }
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => return Err(RpcError::Disconnected),
                Ok(n) => {
                    self.bytes_received += n as u64;
                    self.fb.extend(&self.read_buf[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(RpcError::Io(e)),
            }
        }
    }

    /// Drains every frame already available without blocking.
    pub fn drain(&mut self) -> Result<Vec<Frame>, RpcError> {
        let mut frames = Vec::new();
        while let Some(frame) = self.fb.pop()? {
            frames.push(frame);
        }
        self.stream.set_nonblocking(true)?;
        let outcome = loop {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => break Err(RpcError::Disconnected),
                Ok(n) => {
                    self.bytes_received += n as u64;
                    self.fb.extend(&self.read_buf[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) => break Err(RpcError::Io(e)),
            }
        };
        // Restore blocking mode before surfacing any error.
        self.stream.set_nonblocking(false)?;
        outcome?;
        while let Some(frame) = self.fb.pop()? {
            frames.push(frame);
        }
        Ok(frames)
    }

    /// Sends a paging request — demand page first, prefetch zone after —
    /// and returns the request id its replies will echo. An empty
    /// `demand` makes it a [`Frame::PrefetchBatch`].
    pub fn send_request(
        &mut self,
        demand: Option<PageId>,
        prefetch: &[PageId],
    ) -> Result<u64, RpcError> {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        let frame = match demand {
            Some(d) => {
                let mut pages = Vec::with_capacity(prefetch.len() + 1);
                pages.push(d);
                pages.extend_from_slice(prefetch);
                Frame::PageRequest { req_id, pages }
            }
            None => Frame::PrefetchBatch {
                req_id,
                pages: prefetch.to_vec(),
            },
        };
        self.send(&frame)?;
        Ok(req_id)
    }

    /// Sends one writeback delta batch — `(page, version)` pairs with
    /// deterministic page payloads — and returns the batch sequence
    /// number its [`Frame::WritebackAck`] will echo.
    pub fn send_writeback(&mut self, seq: u64, entries: &[(PageId, u64)]) -> Result<u64, RpcError> {
        let pages: Vec<(PageId, u64, Vec<u8>)> = entries
            .iter()
            .map(|&(p, v)| (p, v, crate::frame::page_payload(p)))
            .collect();
        self.send(&Frame::WritebackBatch { seq, pages })?;
        Ok(seq)
    }

    /// Begins home-return migration: sends a [`Frame::ReturnRequest`]
    /// and waits for the deputy's accounting. Frames that arrive in
    /// between (stale page replies, writeback acks) are returned
    /// alongside so the caller can process them.
    pub fn send_return(&mut self, timeout: Duration) -> Result<((u64, u64), Vec<Frame>), RpcError> {
        self.send(&Frame::ReturnRequest)?;
        let mut stray = Vec::new();
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.recv(remaining)? {
                Some(Frame::ReturnAck {
                    stub_pages,
                    freed_pages,
                }) => return Ok(((stub_pages, freed_pages), stray)),
                Some(other) => stray.push(other),
                None => {
                    return Err(RpcError::Protocol(format!(
                        "return-ack unanswered after {timeout:?}"
                    )))
                }
            }
        }
    }

    /// Forwards a system call and returns its call id.
    pub fn send_syscall(&mut self, work_ns: u64) -> Result<u64, RpcError> {
        let call_id = self.next_call_id;
        self.next_call_id += 1;
        self.send(&Frame::SyscallForward { call_id, work_ns })?;
        Ok(call_id)
    }

    /// One RTT probe: sends a ping and measures the wall time to its
    /// pong. Frames that arrive in between (stale page replies) are
    /// returned so the caller can process them instead of losing them.
    pub fn ping(&mut self, timeout: Duration) -> Result<(Duration, Vec<Frame>), RpcError> {
        let token = self.next_token;
        self.next_token += 1;
        let sent = Instant::now();
        self.send(&Frame::Ping { token })?;
        let mut stray = Vec::new();
        let deadline = sent + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.recv(remaining)? {
                Some(Frame::Pong { token: t }) if t == token => {
                    return Ok((sent.elapsed(), stray));
                }
                Some(other) => stray.push(other),
                None => {
                    return Err(RpcError::Protocol(format!(
                        "ping {token} unanswered after {timeout:?}"
                    )))
                }
            }
        }
    }

    /// Total wire bytes written to the deputy.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total wire bytes read from the deputy.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// The endpoint this client dials.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }
}

impl ampom_obs::MetricSource for MigrantClient {
    fn export_metrics(&self, reg: &mut ampom_obs::MetricsRegistry) {
        reg.export_counter(
            "ampom_migrant_bytes_sent_total",
            "Wire bytes written to the deputy",
            self.bytes_sent,
        );
        reg.export_counter(
            "ampom_migrant_bytes_received_total",
            "Wire bytes read from the deputy",
            self.bytes_received,
        );
    }
}

fn dial(endpoint: &Endpoint) -> Result<Stream, RpcError> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            Ok(Stream::Tcp(s))
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
    }
}
