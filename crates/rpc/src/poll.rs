//! A std-only readiness-wait abstraction over `poll(2)`.
//!
//! The deputy reactor ([`crate::server`]) and the `deputybench` load
//! driver both need one thing the standard library does not expose:
//! *block until any of N sockets is ready*. Rather than pull in a
//! dependency, this module declares the single libc symbol required —
//! `poll(2)`, which every Unix libc exports and which std already links
//! against — behind a safe, reusable [`Poller`].
//!
//! The contract is level-triggered, exactly as `poll(2)` behaves: a
//! descriptor with unread bytes (or writable buffer space, when write
//! interest was registered) reports ready on every call until the
//! condition is drained, so a caller that misses work one pass sees it
//! again on the next. `POLLERR`/`POLLHUP` are folded into readiness —
//! the subsequent read or write surfaces the actual error, which keeps
//! callers on the ordinary I/O error path.
//!
//! On non-Unix targets [`SUPPORTED`] is `false` and the reactor falls
//! back to the portable sleep-poll loop; this module still compiles (as
//! an empty shell) so callers can gate on the constant instead of on
//! `cfg` attributes.

/// Whether readiness waits are available on this target. When `false`,
/// [`Poller`] is not defined and callers must use their sleep-poll
/// fallback path.
pub const SUPPORTED: bool = cfg!(unix);

#[cfg(unix)]
pub use imp::Poller;

#[cfg(unix)]
mod imp {
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// Mirrors `struct pollfd`: identical layout on every Unix ABI.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: RawFd,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// `nfds_t`: `unsigned long` on glibc/musl, `unsigned int` on the
    /// BSD-family libcs.
    #[cfg(target_os = "linux")]
    type Nfds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type Nfds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
    }

    /// A reusable registration set for one `poll(2)` call. The caller
    /// re-registers its descriptors before every wait (interest changes
    /// pass to pass — e.g. write interest only while output is queued),
    /// and the backing vector is recycled so steady state allocates
    /// nothing.
    #[derive(Debug, Default)]
    pub struct Poller {
        fds: Vec<PollFd>,
    }

    impl std::fmt::Debug for PollFd {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("PollFd")
                .field("fd", &self.fd)
                .field("events", &self.events)
                .field("revents", &self.revents)
                .finish()
        }
    }

    impl Poller {
        /// An empty set.
        pub fn new() -> Self {
            Poller::default()
        }

        /// Drops every registration, keeping the allocation.
        pub fn clear(&mut self) {
            self.fds.clear();
        }

        /// Registers `fd` and returns its slot index (the index
        /// [`Poller::readable`]/[`Poller::writable`] answer for). A
        /// registration with neither interest still reports errors and
        /// hangups.
        pub fn push(&mut self, fd: RawFd, read: bool, write: bool) -> usize {
            let mut events = 0i16;
            if read {
                events |= POLLIN;
            }
            if write {
                events |= POLLOUT;
            }
            self.fds.push(PollFd {
                fd,
                events,
                revents: 0,
            });
            self.fds.len() - 1
        }

        /// Registered descriptors.
        pub fn len(&self) -> usize {
            self.fds.len()
        }

        /// Whether nothing is registered.
        pub fn is_empty(&self) -> bool {
            self.fds.is_empty()
        }

        /// Blocks until at least one registered descriptor is ready or
        /// `timeout` elapses; returns how many are ready (0 on timeout).
        /// `EINTR` counts as a timeout — callers loop anyway. An empty
        /// set sleeps for the full timeout (kernel semantics).
        pub fn wait(&mut self, timeout: Duration) -> io::Result<usize> {
            for e in &mut self.fds {
                e.revents = 0;
            }
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            if self.fds.is_empty() {
                // poll(NULL, 0, ms) is legal but pointless; sleep keeps
                // the contract without the FFI edge case.
                std::thread::sleep(timeout);
                return Ok(0);
            }
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as Nfds, ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(rc as usize)
        }

        /// Whether slot `idx` is ready for reading after the last wait.
        /// Errors, hangups and invalid descriptors report ready so the
        /// caller's next read surfaces the condition.
        pub fn readable(&self, idx: usize) -> bool {
            let r = self.fds[idx].revents;
            r & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
        }

        /// Whether slot `idx` is ready for writing after the last wait
        /// (errors and hangups included, as for [`Poller::readable`]).
        pub fn writable(&self, idx: usize) -> bool {
            let r = self.fds[idx].revents;
            r & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::Poller;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    #[test]
    fn reports_readable_only_after_bytes_arrive() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut p = Poller::new();

        p.clear();
        let slot = p.push(b.as_raw_fd(), true, false);
        let ready = p.wait(Duration::from_millis(0)).unwrap();
        assert_eq!(ready, 0, "no bytes yet");
        assert!(!p.readable(slot));

        a.write_all(b"ping").unwrap();
        p.clear();
        let slot = p.push(b.as_raw_fd(), true, false);
        let ready = p.wait(Duration::from_secs(5)).unwrap();
        assert_eq!(ready, 1);
        assert!(p.readable(slot), "bytes pending: level-triggered ready");

        // Level-triggered: still ready until drained.
        p.clear();
        let slot = p.push(b.as_raw_fd(), true, false);
        assert!(p.wait(Duration::from_millis(0)).unwrap() >= 1);
        assert!(p.readable(slot));
        let mut sink = [0u8; 8];
        let n = (&b).read(&mut sink).unwrap();
        assert_eq!(n, 4);
        p.clear();
        let slot = p.push(b.as_raw_fd(), true, false);
        assert_eq!(p.wait(Duration::from_millis(0)).unwrap(), 0);
        assert!(!p.readable(slot));
    }

    #[test]
    fn writable_socket_and_hangup_report_ready() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut p = Poller::new();
        let w = p.push(a.as_raw_fd(), false, true);
        assert!(p.wait(Duration::from_millis(0)).unwrap() >= 1);
        assert!(p.writable(w), "fresh socket has buffer space");

        drop(b);
        p.clear();
        let slot = p.push(a.as_raw_fd(), true, false);
        assert!(p.wait(Duration::from_secs(5)).unwrap() >= 1);
        assert!(p.readable(slot), "peer hangup folds into readable");
    }

    #[test]
    fn timeout_bounds_the_wait() {
        let (_a, b) = UnixStream::pair().unwrap();
        let mut p = Poller::new();
        p.push(b.as_raw_fd(), true, false);
        let start = Instant::now();
        assert_eq!(p.wait(Duration::from_millis(20)).unwrap(), 0);
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(15),
            "returned early: {waited:?}"
        );
        assert!(waited < Duration::from_secs(2), "overslept: {waited:?}");
    }
}
