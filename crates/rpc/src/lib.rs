//! # ampom-rpc — the live deputy↔migrant transport
//!
//! Everything else in this workspace simulates the AMPoM protocol; this
//! crate runs it over real sockets. The protocol surface is the
//! [`Transport`](ampom_core::Transport) trait extracted from the runner:
//!
//! * [`frame`] — the length-prefixed binary frame codec (one frame type
//!   per simulated message type, big-endian, typed decode errors),
//! * [`server`] — [`DeputyServer`]: the home-node deputy as a bounded
//!   pool of readiness-driven reactor shards over TCP or Unix-domain
//!   sockets,
//! * [`poll`] — the std-only `poll(2)` readiness wait the reactor (and
//!   the `deputybench` load driver) park in,
//! * [`client`] — [`MigrantClient`]: connection, handshake, frame I/O
//!   and reconnection for the migrant side,
//! * [`live`] — [`LiveTransport`]: plugs the client into
//!   [`run_with_transport`](ampom_core::run_with_transport), reusing the
//!   [`RetrySchedule`](ampom_core::RetrySchedule) recovery protocol
//!   unchanged on measured wall-clock timeouts,
//! * [`calibrate`] — the live oM_infoD handshake: RTT probes and a timed
//!   bulk fetch produce a
//!   [`MeasuredLink`](ampom_net::calibration::MeasuredLink) whose
//!   `LinkConfig` makes the simulator reproduce the measured wire.
//!
//! The crate is std-only: blocking sockets, a small worker pool, no
//! external dependencies — the same footprint as the openMosix kernel
//! code it stands in for.

pub mod calibrate;
pub mod client;
pub mod frame;
pub mod live;
pub mod poll;
pub mod server;

use std::fmt;

use ampom_core::AmpomError;

pub use calibrate::{calibrate_endpoint, CalibrateOptions};
pub use client::{Endpoint, MigrantClient};
pub use frame::{CodecError, Frame, FrameBuffer, WireStats, MAX_FRAME_BYTES, WIRE_VERSION};
pub use live::{run_live, LiveOptions, LiveReport, LiveTransport};
pub use server::{DeputyServer, PendingQueue, ServerConfig, ServerStats};

#[cfg(unix)]
pub use poll::Poller;

/// A failure of the live transport machinery.
///
/// Socket-level trouble (timeouts, resets, EOF) is normally absorbed by
/// the recovery protocol; an `RpcError` surfaces only when the protocol
/// itself cannot continue — handshake rejection, unrecoverable codec
/// state, or I/O failure past the retry budget.
#[derive(Debug)]
pub enum RpcError {
    /// An operating-system socket error.
    Io(std::io::Error),
    /// The byte stream no longer parses as frames (framing is lost, the
    /// connection must be abandoned).
    Codec(CodecError),
    /// The peer rejected or garbled the version handshake.
    Handshake(String),
    /// A frame violated the protocol state machine.
    Protocol(String),
    /// The peer closed the connection.
    Disconnected,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "socket error: {e}"),
            RpcError::Codec(e) => write!(f, "codec error: {e}"),
            RpcError::Handshake(why) => write!(f, "handshake failed: {why}"),
            RpcError::Protocol(why) => write!(f, "protocol violation: {why}"),
            RpcError::Disconnected => write!(f, "peer closed the connection"),
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Io(e) => Some(e),
            RpcError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

impl From<CodecError> for RpcError {
    fn from(e: CodecError) -> Self {
        RpcError::Codec(e)
    }
}

impl From<RpcError> for AmpomError {
    fn from(e: RpcError) -> Self {
        AmpomError::Transport(e.to_string())
    }
}
