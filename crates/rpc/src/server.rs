//! The live deputy: serves remote-paging requests over real sockets.
//!
//! [`DeputyServer`] is the socket-facing analog of
//! [`ampom_core::deputy::MultiDeputy`]: a bounded pool of worker threads
//! accepts connections on a TCP or Unix-domain listener, and each worker
//! *multiplexes* every session assigned to it through one event loop —
//! non-blocking reads, per-connection pending-page queues, and a
//! deficit-round-robin service pass across the sessions. One
//! `DeputyServer` therefore serves N concurrent migrants over a worker
//! pool smaller than N, exactly as the simulated multi-migrant deputy
//! shares one service capacity across shards.
//!
//! Within a worker the service discipline mirrors the simulation:
//!
//! * **Sharded pending store**: each connection owns a [`PendingQueue`]
//!   — FIFO service order per migrant, with a pending-set that
//!   *coalesces* a request for a page an earlier request already queued
//!   into the same service event. A page re-requested after being served
//!   (a retry for a lost reply) queues again, so coalescing never strands
//!   a migrant.
//! * **DRR fairness**: a cursor sweeps the worker's sessions; each visit
//!   grants [`ServerConfig::quantum_pages`] of deficit and serves pages
//!   while the deficit lasts, so a migrant flooding prefetch batches
//!   cannot starve a neighbour's demand fetches.
//! * **Reply batching**: the pages one visit serves leave as a single
//!   [`Frame::PageBatchReply`] (legacy [`Frame::PageReply`] when the
//!   visit serves exactly one page), bounded by
//!   [`MAX_BATCH_PAGES`].
//!
//! Backpressure is structural: a request may name at most
//! [`ServerConfig::max_pages_per_request`] pages (violations earn an
//! `Error` frame and a closed connection), the client side keeps a
//! bounded in-flight quota, and outbound bytes queue per connection with
//! partial non-blocking writes, so neither side buffers unboundedly.
//!
//! On top of the structural limits sits *admission control*, the live
//! analog of the simulated deputy's `AdmissionConfig`:
//!
//! * [`ServerConfig::max_pending_pages`] bounds each session's pending
//!   queue. A demand page (the head of a [`Frame::PageRequest`]) is
//!   always admitted; prefetch pages past the bound are **shed** with a
//!   single non-fatal [`CODE_OVERLOADED`] error frame naming them — the
//!   connection stays open and the client reverts the refused pages to
//!   the origin, where they degrade to later demand fetches.
//! * [`ServerConfig::gate_high`]/[`ServerConfig::gate_low`] form a
//!   hysteresis `Hello` gate per worker: once the worker's total pending
//!   pages reach `gate_high`, new sessions are deferred with a
//!   [`CODE_OVERLOADED`] handshake error until the backlog drains below
//!   `gate_low`.
//!
//! For fault-injection tests, [`ServerConfig::drop_after_pages`] makes
//! each connection die abruptly after serving that many pages — the
//! live equivalent of `DowntimeSchedule`'s deputy crash.
//!
//! ## The reactor
//!
//! Each worker is a *reactor shard*: it owns its sessions outright (no
//! cross-worker locks on the hot path — the listener itself is shared,
//! but `accept(2)` is its own synchronization) and, where the platform
//! supports it, parks in a [`crate::poll`] readiness wait across the
//! listener plus every session socket instead of the portable 1 ms
//! sleep-poll scan. Idle shards burn no CPU and wake the instant bytes
//! arrive; busy shards only issue read syscalls for sockets the kernel
//! reported readable. Outbound bytes queue as pooled segments and leave
//! via `write_vectored`, so one DRR pass's replies go out in one
//! syscall and the segment buffers recycle through a per-shard arena
//! ([`crate::frame::page_payload_into`] synthesizes payloads directly
//! into them — no per-page allocation). [`ServerConfig::reactor`]
//! selects the mode; the sleep-poll loop remains as the non-Unix
//! fallback and as a baseline for `deputybench`.
//!
//! Per-session outbound backpressure rides on the same machinery: a
//! session whose unflushed reply backlog reaches
//! [`ServerConfig::write_high_water`] stops being served (a
//! `write_stall`) until the backlog drains to
//! [`ServerConfig::write_low_water`] — hysteresis exactly like the
//! hello gate, bounding deputy memory against a stalled reader.

use std::collections::{HashSet, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ampom_mem::page::{PageId, PAGE_SIZE};
use ampom_mem::writeback::WritebackSink;

use crate::frame::{
    encode_page_batch_reply_into, encode_page_reply_into, Frame, FrameBuffer, WireStats,
    CODE_OVERLOADED, MAX_BATCH_PAGES, WIRE_VERSION,
};
use crate::RpcError;

/// Tuning knobs of a [`DeputyServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections. Each worker multiplexes any
    /// number of sessions, so N migrants complete on fewer workers.
    pub workers: usize,
    /// Upper bound on pages named by one request frame.
    pub max_pages_per_request: u32,
    /// Fault injection: close each connection abruptly after serving
    /// this many pages (`None` = reliable deputy).
    pub drop_after_pages: Option<u64>,
    /// DRR quantum: pages of deficit granted per scheduling visit to a
    /// session. Smaller quanta interleave migrants more finely.
    pub quantum_pages: u32,
    /// Admission bound on each session's pending queue (`None` =
    /// unbounded, the pre-v3 behaviour). Demand pages are always
    /// admitted; prefetch pages past the bound are shed with a non-fatal
    /// [`CODE_OVERLOADED`] frame.
    pub max_pending_pages: Option<usize>,
    /// Hello-gate high watermark: a worker whose total pending pages
    /// reach this defers new `Hello`s with [`CODE_OVERLOADED`]. The
    /// default (`usize::MAX`) never gates.
    pub gate_high: usize,
    /// Hello-gate low watermark: a gated worker re-opens admission once
    /// its total pending pages drop *below* this (hysteresis, so the
    /// gate does not flap at the boundary). Must be `<= gate_high`.
    pub gate_low: usize,
    /// Drive workers with readiness waits (`poll(2)`) instead of the
    /// 1 ms sleep-poll scan. Defaults on wherever [`crate::poll`]
    /// supports it; forced off (or on non-Unix targets) the portable
    /// sleep-poll loop runs instead. Wire behaviour is identical either
    /// way — the mode only changes how workers wait and which sockets
    /// they scan.
    pub reactor: bool,
    /// Outbound backpressure high-water mark, bytes: a session whose
    /// unflushed reply backlog reaches this stops being served (a
    /// `write_stall`) until the backlog drains. Bounds deputy memory
    /// against a slow or stalled reader; overshoot is at most one
    /// reply batch. Must be non-zero.
    pub write_high_water: usize,
    /// Outbound backpressure low-water mark, bytes: a stalled session
    /// resumes once its backlog drains to or below this (hysteresis,
    /// mirroring the hello gate). Must be `<= write_high_water`.
    pub write_low_water: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_pages_per_request: 4096,
            drop_after_pages: None,
            quantum_pages: 16,
            max_pending_pages: None,
            gate_high: usize::MAX,
            gate_low: usize::MAX,
            reactor: crate::poll::SUPPORTED,
            write_high_water: 8 * 1024 * 1024,
            write_low_water: 1024 * 1024,
        }
    }
}

/// Aggregate service counters across all sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames answered (demand + prefetch batches).
    pub requests_served: u64,
    /// Page replies written.
    pub pages_served: u64,
    /// Forwarded system calls answered.
    pub syscalls_served: u64,
    /// Ping probes answered.
    pub pings_served: u64,
    /// Connections the fault injector dropped.
    pub dropped_connections: u64,
    /// Connections accepted by a worker already serving other sessions
    /// (the pool multiplexed rather than dedicating a worker).
    pub queued_connections: u64,
    /// Page requests absorbed by coalescing across all sessions.
    pub pages_coalesced: u64,
    /// Batched reply frames written across all sessions.
    pub batch_replies: u64,
    /// Most concurrent live sessions observed server-wide.
    pub peak_sessions: u64,
    /// Prefetch pages shed by admission control (non-fatal 503s; the
    /// client reverts and re-fetches them on demand).
    pub prefetch_pages_shed: u64,
    /// Demand pages refused outright. Structurally zero: demand is
    /// always admitted.
    pub demand_pages_shed: u64,
    /// Request frames that had at least one page shed.
    pub shed_events: u64,
    /// `Hello`s deferred by the hysteresis admission gate.
    pub hellos_deferred: u64,
    /// Writeback batches applied by session sinks (fresh or duplicate).
    pub writeback_batches: u64,
    /// Dirty pages newly applied by writeback batches.
    pub writeback_pages_applied: u64,
    /// Writeback entries skipped as duplicates (batch- or version-level).
    pub writeback_duplicates: u64,
    /// Home-return negotiations answered with a [`Frame::ReturnAck`].
    pub returns_served: u64,
    /// Sessions paused by outbound backpressure (unflushed backlog
    /// reached [`ServerConfig::write_high_water`]).
    pub write_stalls: u64,
    /// Reply flushes that combined several queued segments into one
    /// `write_vectored` syscall.
    pub vectored_writes: u64,
    /// Worst unflushed outbound backlog any session reached, bytes.
    pub peak_write_backlog_bytes: u64,
}

impl ampom_obs::MetricSource for ServerStats {
    fn export_metrics(&self, reg: &mut ampom_obs::MetricsRegistry) {
        reg.export_counter(
            "ampom_deputy_server_connections_total",
            "Connections accepted",
            self.connections,
        );
        reg.export_counter(
            "ampom_deputy_server_requests_served_total",
            "Request frames answered (demand + prefetch batches)",
            self.requests_served,
        );
        reg.export_counter(
            "ampom_deputy_server_pages_served_total",
            "Page replies written",
            self.pages_served,
        );
        reg.export_counter(
            "ampom_deputy_server_syscalls_served_total",
            "Forwarded system calls answered",
            self.syscalls_served,
        );
        reg.export_counter(
            "ampom_deputy_server_pings_served_total",
            "Ping probes answered",
            self.pings_served,
        );
        reg.export_counter(
            "ampom_deputy_server_dropped_connections_total",
            "Connections the fault injector dropped",
            self.dropped_connections,
        );
        reg.export_counter(
            "ampom_deputy_server_queued_connections_total",
            "Connections multiplexed onto an already-busy worker",
            self.queued_connections,
        );
        reg.export_counter(
            "ampom_deputy_server_pages_coalesced_total",
            "Page requests absorbed by coalescing",
            self.pages_coalesced,
        );
        reg.export_counter(
            "ampom_deputy_server_batch_replies_total",
            "Batched reply frames written",
            self.batch_replies,
        );
        reg.export_counter(
            "ampom_deputy_server_peak_sessions",
            "Most concurrent live sessions observed",
            self.peak_sessions,
        );
        reg.export_counter(
            "ampom_shed_server_prefetch_pages_total",
            "Prefetch pages shed by admission control (non-fatal 503s)",
            self.prefetch_pages_shed,
        );
        reg.export_counter(
            "ampom_shed_server_demand_pages_total",
            "Demand pages refused outright (structurally zero)",
            self.demand_pages_shed,
        );
        reg.export_counter(
            "ampom_shed_server_events_total",
            "Request frames that had at least one page shed",
            self.shed_events,
        );
        reg.export_counter(
            "ampom_shed_server_hellos_deferred_total",
            "Hellos deferred by the hysteresis admission gate",
            self.hellos_deferred,
        );
        reg.export_counter(
            "ampom_writeback_server_batches_total",
            "Writeback batches applied by session sinks",
            self.writeback_batches,
        );
        reg.export_counter(
            "ampom_writeback_server_pages_applied_total",
            "Dirty pages newly applied by writeback batches",
            self.writeback_pages_applied,
        );
        reg.export_counter(
            "ampom_writeback_server_duplicates_total",
            "Writeback entries skipped as duplicates",
            self.writeback_duplicates,
        );
        reg.export_counter(
            "ampom_returns_served_total",
            "Home-return negotiations answered",
            self.returns_served,
        );
        reg.export_counter(
            "ampom_deputy_server_write_stalls_total",
            "Sessions paused by outbound backpressure",
            self.write_stalls,
        );
        reg.export_counter(
            "ampom_deputy_server_vectored_writes_total",
            "Flushes combining several segments into one syscall",
            self.vectored_writes,
        );
        reg.export_counter(
            "ampom_deputy_server_peak_write_backlog_bytes",
            "Worst unflushed outbound backlog any session reached",
            self.peak_write_backlog_bytes,
        );
    }
}

/// A worker's service counters, tallied as plain integers on the shard's
/// own stack — the hot path touches no shared cache line. The shard
/// publishes the tally into its [`ShardCounters`] slot once per event
///-loop pass; [`StatsHub::snapshot`] aggregates the slots on demand
/// (the live analog of `StatsFetch`-time aggregation).
#[derive(Debug, Default, Clone, Copy)]
struct ShardTally {
    connections: u64,
    requests_served: u64,
    pages_served: u64,
    syscalls_served: u64,
    pings_served: u64,
    dropped_connections: u64,
    queued_connections: u64,
    pages_coalesced: u64,
    batch_replies: u64,
    prefetch_pages_shed: u64,
    demand_pages_shed: u64,
    shed_events: u64,
    writeback_batches: u64,
    writeback_pages_applied: u64,
    writeback_duplicates: u64,
    returns_served: u64,
    write_stalls: u64,
    vectored_writes: u64,
    peak_write_backlog: u64,
}

/// One shard's published tally. Single writer (the owning worker),
/// many readers; plain relaxed stores suffice.
#[derive(Debug, Default)]
struct ShardCounters {
    connections: AtomicU64,
    requests_served: AtomicU64,
    pages_served: AtomicU64,
    syscalls_served: AtomicU64,
    pings_served: AtomicU64,
    dropped_connections: AtomicU64,
    queued_connections: AtomicU64,
    pages_coalesced: AtomicU64,
    batch_replies: AtomicU64,
    prefetch_pages_shed: AtomicU64,
    demand_pages_shed: AtomicU64,
    shed_events: AtomicU64,
    writeback_batches: AtomicU64,
    writeback_pages_applied: AtomicU64,
    writeback_duplicates: AtomicU64,
    returns_served: AtomicU64,
    write_stalls: AtomicU64,
    vectored_writes: AtomicU64,
    peak_write_backlog: AtomicU64,
}

impl ShardCounters {
    fn publish(&self, t: &ShardTally) {
        self.connections.store(t.connections, Ordering::Relaxed);
        self.requests_served
            .store(t.requests_served, Ordering::Relaxed);
        self.pages_served.store(t.pages_served, Ordering::Relaxed);
        self.syscalls_served
            .store(t.syscalls_served, Ordering::Relaxed);
        self.pings_served.store(t.pings_served, Ordering::Relaxed);
        self.dropped_connections
            .store(t.dropped_connections, Ordering::Relaxed);
        self.queued_connections
            .store(t.queued_connections, Ordering::Relaxed);
        self.pages_coalesced
            .store(t.pages_coalesced, Ordering::Relaxed);
        self.batch_replies.store(t.batch_replies, Ordering::Relaxed);
        self.prefetch_pages_shed
            .store(t.prefetch_pages_shed, Ordering::Relaxed);
        self.demand_pages_shed
            .store(t.demand_pages_shed, Ordering::Relaxed);
        self.shed_events.store(t.shed_events, Ordering::Relaxed);
        self.writeback_batches
            .store(t.writeback_batches, Ordering::Relaxed);
        self.writeback_pages_applied
            .store(t.writeback_pages_applied, Ordering::Relaxed);
        self.writeback_duplicates
            .store(t.writeback_duplicates, Ordering::Relaxed);
        self.returns_served
            .store(t.returns_served, Ordering::Relaxed);
        self.write_stalls.store(t.write_stalls, Ordering::Relaxed);
        self.vectored_writes
            .store(t.vectored_writes, Ordering::Relaxed);
        self.peak_write_backlog
            .store(t.peak_write_backlog, Ordering::Relaxed);
    }
}

/// The few truly cross-shard counters. `active`/`peak_sessions` need a
/// global view by definition, and a deferred `Hello` never becomes a
/// session, so its counter is deputy-wide too (the wire `StatsReply`
/// reports it per-deputy). All are cold-path.
#[derive(Debug, Default)]
struct SharedGauges {
    active_sessions: AtomicU64,
    peak_sessions: AtomicU64,
    hellos_deferred: AtomicU64,
}

impl SharedGauges {
    fn session_opened(&self) {
        let live = self.active_sessions.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_sessions.fetch_max(live, Ordering::Relaxed);
    }

    fn session_closed(&self) {
        self.active_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-shard counter slots plus the shared gauges.
#[derive(Debug)]
struct StatsHub {
    gauges: SharedGauges,
    shards: Vec<ShardCounters>,
}

impl StatsHub {
    fn new(workers: usize) -> StatsHub {
        StatsHub {
            gauges: SharedGauges::default(),
            shards: (0..workers).map(|_| ShardCounters::default()).collect(),
        }
    }

    fn snapshot(&self) -> ServerStats {
        let mut out = ServerStats::default();
        for sh in &self.shards {
            out.connections += sh.connections.load(Ordering::Relaxed);
            out.requests_served += sh.requests_served.load(Ordering::Relaxed);
            out.pages_served += sh.pages_served.load(Ordering::Relaxed);
            out.syscalls_served += sh.syscalls_served.load(Ordering::Relaxed);
            out.pings_served += sh.pings_served.load(Ordering::Relaxed);
            out.dropped_connections += sh.dropped_connections.load(Ordering::Relaxed);
            out.queued_connections += sh.queued_connections.load(Ordering::Relaxed);
            out.pages_coalesced += sh.pages_coalesced.load(Ordering::Relaxed);
            out.batch_replies += sh.batch_replies.load(Ordering::Relaxed);
            out.prefetch_pages_shed += sh.prefetch_pages_shed.load(Ordering::Relaxed);
            out.demand_pages_shed += sh.demand_pages_shed.load(Ordering::Relaxed);
            out.shed_events += sh.shed_events.load(Ordering::Relaxed);
            out.writeback_batches += sh.writeback_batches.load(Ordering::Relaxed);
            out.writeback_pages_applied += sh.writeback_pages_applied.load(Ordering::Relaxed);
            out.writeback_duplicates += sh.writeback_duplicates.load(Ordering::Relaxed);
            out.returns_served += sh.returns_served.load(Ordering::Relaxed);
            out.write_stalls += sh.write_stalls.load(Ordering::Relaxed);
            out.vectored_writes += sh.vectored_writes.load(Ordering::Relaxed);
            out.peak_write_backlog_bytes = out
                .peak_write_backlog_bytes
                .max(sh.peak_write_backlog.load(Ordering::Relaxed));
        }
        out.peak_sessions = self.gauges.peak_sessions.load(Ordering::Relaxed);
        out.hellos_deferred = self.gauges.hellos_deferred.load(Ordering::Relaxed);
        out
    }
}

/// What [`PendingQueue::push_bounded`] did with a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued for service.
    Queued,
    /// Absorbed into an earlier still-pending entry for the same page.
    Coalesced,
    /// Refused: the queue is at its admission bound and the page is not
    /// a demand page.
    Shed,
}

/// Per-connection pending page store with request coalescing.
///
/// Pages queue FIFO per connection. A request for a page that is already
/// queued-but-unserved is *coalesced*: the single queued entry answers
/// both requests, and the coalesce is counted. Once a page is taken for
/// service it leaves the pending set, so a later re-request (the
/// client's retry for a lost reply) queues — and is served — again.
/// These two rules are exactly the "never drops, never duplicates"
/// invariant the property suite pins.
///
/// The bounded push path adds admission control: past a depth bound,
/// non-demand pages are [`PushOutcome::Shed`] instead of queued (a
/// coalesce never sheds — the page is already paid for). Demand pages
/// bypass the bound entirely.
#[derive(Debug, Default)]
pub struct PendingQueue {
    queue: VecDeque<(u64, PageId)>,
    pending: HashSet<PageId>,
    coalesced: u64,
    max_depth: u64,
}

impl PendingQueue {
    /// An empty queue.
    pub fn new() -> Self {
        PendingQueue::default()
    }

    /// Enqueues `page` on behalf of `req_id` unless an earlier request
    /// for it is still pending. Returns `true` if enqueued, `false` if
    /// coalesced into the earlier entry.
    pub fn push(&mut self, req_id: u64, page: PageId) -> bool {
        self.push_bounded(req_id, page, None, true) != PushOutcome::Coalesced
    }

    /// The admission-controlled push. A `demand` page is always admitted
    /// (coalescing still applies); a prefetch page finding the queue at
    /// `bound` is shed untouched.
    pub fn push_bounded(
        &mut self,
        req_id: u64,
        page: PageId,
        bound: Option<usize>,
        demand: bool,
    ) -> PushOutcome {
        if self.pending.contains(&page) {
            self.coalesced += 1;
            return PushOutcome::Coalesced;
        }
        if !demand {
            if let Some(bound) = bound {
                if self.queue.len() >= bound {
                    return PushOutcome::Shed;
                }
            }
        }
        self.pending.insert(page);
        self.queue.push_back((req_id, page));
        self.max_depth = self.max_depth.max(self.queue.len() as u64);
        PushOutcome::Queued
    }

    /// Dequeues up to `n` pages for service, in FIFO order. The taken
    /// pages leave the pending set, so a re-request re-enqueues them.
    pub fn take(&mut self, n: usize) -> Vec<(u64, PageId)> {
        let n = n.min(self.queue.len());
        let out: Vec<(u64, PageId)> = self.queue.drain(..n).collect();
        for (_, page) in &out {
            self.pending.remove(page);
        }
        out
    }

    /// Pages queued and not yet taken.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests absorbed by coalescing so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Worst queue depth reached.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Non-blocking accept; `Ok(None)` when no connection is pending.
    fn try_accept(&self) -> std::io::Result<Option<ServerStream>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true).ok();
                    Ok(Some(ServerStream::Tcp(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(ServerStream::Unix(s))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }
}

enum ServerStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ServerStream {
    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            ServerStream::Tcp(s) => s.set_nonblocking(on),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.set_nonblocking(on),
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd {
        match self {
            ServerStream::Tcp(s) => s.as_raw_fd(),
            ServerStream::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for ServerStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ServerStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
        match self {
            ServerStream::Tcp(s) => s.write_vectored(bufs),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ServerStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.flush(),
        }
    }
}

/// The per-shard segment arena: outbound buffers retire here when fully
/// flushed and are reissued (cleared, capacity intact) for the next
/// reply, so a steady-state shard serves pages with no allocation at
/// all — the reply encoder synthesizes payloads straight into a
/// recycled segment. Bounded so a burst cannot pin memory forever.
#[derive(Debug, Default)]
struct BufferPool {
    free: Vec<Vec<u8>>,
}

impl BufferPool {
    /// Segments retained; 64 maximal batch replies is ~16 MiB a shard.
    const MAX_FREE: usize = 64;

    fn take(&mut self) -> Vec<u8> {
        self.free.pop().unwrap_or_default()
    }

    fn put(&mut self, mut seg: Vec<u8>) {
        if self.free.len() < Self::MAX_FREE {
            seg.clear();
            self.free.push(seg);
        }
    }
}

/// A session's unflushed outbound bytes, kept as the queue of pooled
/// segments they were encoded into. `head_at` marks the flushed prefix
/// of the front segment; fully flushed segments return to the pool.
/// Keeping segments separate (instead of one growing `Vec`) is what
/// lets [`pump_writes`] hand a whole DRR pass to `write_vectored` in
/// one syscall and recycle the buffers.
#[derive(Debug, Default)]
struct OutQueue {
    segs: VecDeque<Vec<u8>>,
    head_at: usize,
    bytes: usize,
}

impl OutQueue {
    /// Unflushed bytes queued.
    fn unflushed(&self) -> usize {
        self.bytes
    }

    fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Queues an encoded segment (empty segments go straight back).
    fn push_seg(&mut self, seg: Vec<u8>, pool: &mut BufferPool) {
        if seg.is_empty() {
            pool.put(seg);
            return;
        }
        self.bytes += seg.len();
        self.segs.push_back(seg);
    }

    /// Encodes one frame into a pooled segment and queues it.
    fn frame(&mut self, f: &Frame, pool: &mut BufferPool) {
        let mut seg = pool.take();
        f.encode_into(&mut seg);
        self.push_seg(seg, pool);
    }

    /// Fills `bufs` with the unflushed regions, front first; returns how
    /// many slots were used.
    fn fill_slices<'a>(&'a self, bufs: &mut [IoSlice<'a>]) -> usize {
        let mut n = 0;
        for (i, seg) in self.segs.iter().enumerate() {
            if n == bufs.len() {
                break;
            }
            let region = if i == 0 {
                &seg[self.head_at..]
            } else {
                &seg[..]
            };
            if region.is_empty() {
                continue;
            }
            bufs[n] = IoSlice::new(region);
            n += 1;
        }
        n
    }

    /// Consumes `n` flushed bytes from the front, retiring drained
    /// segments to the pool. `n` must not exceed [`OutQueue::unflushed`].
    fn advance(&mut self, mut n: usize, pool: &mut BufferPool) {
        self.bytes -= n;
        while n > 0 {
            let head_len = self.segs.front().map(Vec::len).unwrap_or(0);
            let left = head_len - self.head_at;
            if n >= left {
                n -= left;
                self.head_at = 0;
                if let Some(seg) = self.segs.pop_front() {
                    pool.put(seg);
                }
            } else {
                self.head_at += n;
                n = 0;
            }
        }
    }
}

/// A running deputy server; dropping it (or calling
/// [`DeputyServer::shutdown`]) stops the workers.
pub struct DeputyServer {
    addr: String,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsHub>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for DeputyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeputyServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl DeputyServer {
    /// Binds a TCP listener (use `"127.0.0.1:0"` for an ephemeral
    /// loopback port) and starts the worker pool.
    pub fn bind_tcp(addr: &str, cfg: ServerConfig) -> Result<DeputyServer, RpcError> {
        let listener = TcpListener::bind(addr).map_err(RpcError::Io)?;
        let local = listener.local_addr().map_err(RpcError::Io)?.to_string();
        listener.set_nonblocking(true).map_err(RpcError::Io)?;
        Self::start(Listener::Tcp(listener), local, cfg)
    }

    /// Binds a Unix-domain listener at `path` and starts the worker pool.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path, cfg: ServerConfig) -> Result<DeputyServer, RpcError> {
        let listener = UnixListener::bind(path).map_err(RpcError::Io)?;
        listener.set_nonblocking(true).map_err(RpcError::Io)?;
        Self::start(Listener::Unix(listener), path.display().to_string(), cfg)
    }

    fn start(
        listener: Listener,
        addr: String,
        cfg: ServerConfig,
    ) -> Result<DeputyServer, RpcError> {
        if cfg.workers == 0 {
            return Err(RpcError::Protocol("server needs at least 1 worker".into()));
        }
        if cfg.quantum_pages == 0 {
            return Err(RpcError::Protocol(
                "server needs a DRR quantum of at least 1 page".into(),
            ));
        }
        if cfg.max_pending_pages == Some(0) {
            return Err(RpcError::Protocol(
                "a pending-page bound of 0 would shed every prefetch; use None for unbounded"
                    .into(),
            ));
        }
        if cfg.gate_low > cfg.gate_high {
            return Err(RpcError::Protocol(format!(
                "hello gate inverted: gate_low {} > gate_high {}",
                cfg.gate_low, cfg.gate_high
            )));
        }
        if cfg.write_high_water == 0 {
            return Err(RpcError::Protocol(
                "a write high-water mark of 0 would stall every session before \
                 its first reply"
                    .into(),
            ));
        }
        if cfg.write_low_water > cfg.write_high_water {
            return Err(RpcError::Protocol(format!(
                "write watermarks inverted: low {} > high {}",
                cfg.write_low_water, cfg.write_high_water
            )));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsHub::new(cfg.workers));
        // The listener is the only shared descriptor: accept(2) is its
        // own synchronization, so every shard polls it and races to
        // accept — no mutex on the path.
        let listener = Arc::new(listener);
        let mut workers = Vec::with_capacity(cfg.workers);
        for shard_idx in 0..cfg.workers {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let listener = Arc::clone(&listener);
            let cfg = cfg.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(&listener, &stop, &stats, shard_idx, &cfg);
            }));
        }
        Ok(DeputyServer {
            addr,
            stop,
            stats,
            workers,
        })
    }

    /// The bound address (`host:port` for TCP, the socket path for Unix).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// A snapshot of the aggregate service counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Stops accepting, lets in-progress sessions wind down, and joins
    /// the workers.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for DeputyServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// How long an idle *sleep-poll* worker sleeps between passes (the
/// portable fallback; reactor shards park in `poll(2)` instead).
const POLL_INTERVAL: Duration = Duration::from_millis(1);

/// Longest a reactor shard parks in one readiness wait. Bounds shutdown
/// latency (the stop flag is only checked between waits); readiness
/// itself ends the wait immediately.
const REACTOR_WAIT: Duration = Duration::from_millis(25);

/// Most segments one `write_vectored` call flushes. Far below any
/// platform `IOV_MAX`; 32 maximal batch replies is ~8 MiB, well past
/// what one socket buffer accepts anyway.
const MAX_WRITE_IOV: usize = 32;

/// One multiplexed migrant session inside a worker's event loop.
struct SessionConn {
    conn: ServerStream,
    fb: FrameBuffer,
    /// Encoded outbound bytes awaiting flush, as pooled segments.
    out: OutQueue,
    greeted: bool,
    total_pages: u64,
    pages_this_conn: u64,
    pending: PendingQueue,
    /// DRR deficit, in pages.
    deficit: u64,
    /// Wall instant the pending queue last became non-empty; the wait
    /// since then is this session's observed backlog.
    backlog_since: Option<Instant>,
    local: WireStats,
    /// Idempotent writeback sink: applies dirty-page batches exactly
    /// once under retransmission (per-page version compare).
    sink: WritebackSink,
    /// Every page this session ever served — the "fetched" set the
    /// home-return accounting partitions into stub vs freed.
    served_pages: HashSet<PageId>,
    state: ConnState,
    /// Outbound backpressure: past the high-water mark the DRR pass
    /// skips this session until its backlog drains below the low mark.
    write_blocked: bool,
    /// Whether the last readiness wait reported bytes to read (always
    /// true in sleep-poll mode, which scans every socket).
    ready_read: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Reading and serving.
    Open,
    /// Flush the outbound queue (a final error/ack), then close.
    Closing,
    /// Close immediately, discarding unflushed output.
    Dropped,
}

impl SessionConn {
    fn new(conn: ServerStream) -> std::io::Result<SessionConn> {
        conn.set_nonblocking(true)?;
        Ok(SessionConn {
            conn,
            fb: FrameBuffer::new(),
            out: OutQueue::default(),
            greeted: false,
            total_pages: 0,
            pages_this_conn: 0,
            pending: PendingQueue::new(),
            deficit: 0,
            backlog_since: None,
            local: WireStats::default(),
            sink: WritebackSink::new(),
            served_pages: HashSet::new(),
            state: ConnState::Open,
            write_blocked: false,
            ready_read: true,
        })
    }

    fn finished(&self) -> bool {
        match self.state {
            ConnState::Open => false,
            ConnState::Dropped => true,
            ConnState::Closing => self.out.is_empty(),
        }
    }
}

/// How a shard waits for work: a [`crate::poll`] readiness wait where
/// supported and configured, the portable sleep-poll scan otherwise.
struct WaitMode {
    #[cfg(unix)]
    poller: Option<crate::poll::Poller>,
}

impl WaitMode {
    fn new(cfg: &ServerConfig) -> WaitMode {
        #[cfg(unix)]
        {
            WaitMode {
                poller: cfg.reactor.then(crate::poll::Poller::new),
            }
        }
        #[cfg(not(unix))]
        {
            let _ = cfg;
            WaitMode {}
        }
    }

    /// The wait phase of one pass. In reactor mode: parks in `poll(2)`
    /// (only when the previous pass was idle — a busy shard just
    /// refreshes readiness with a zero timeout), then marks each
    /// session's `ready_read`. In sleep-poll mode: sleeps when idle and
    /// marks everything ready, i.e. the original scan-everything loop.
    /// Returns whether the listener should be accepted from.
    fn wait(&mut self, listener: &Listener, sessions: &mut [SessionConn], idle: bool) -> bool {
        #[cfg(unix)]
        if let Some(poller) = &mut self.poller {
            poller.clear();
            poller.push(listener.raw_fd(), true, false);
            for s in sessions.iter() {
                poller.push(
                    s.conn.raw_fd(),
                    s.state == ConnState::Open,
                    !s.out.is_empty(),
                );
            }
            let timeout = if idle { REACTOR_WAIT } else { Duration::ZERO };
            match poller.wait(timeout) {
                Ok(_) => {
                    for (i, s) in sessions.iter_mut().enumerate() {
                        s.ready_read = poller.readable(i + 1);
                    }
                    return poller.readable(0);
                }
                Err(_) => {
                    // Readiness unavailable this pass: degrade to the
                    // sleep-poll scan rather than spin or stall.
                    for s in sessions.iter_mut() {
                        s.ready_read = true;
                    }
                    if idle {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    return true;
                }
            }
        }
        let _ = listener;
        for s in sessions.iter_mut() {
            s.ready_read = true;
        }
        if idle {
            std::thread::sleep(POLL_INTERVAL);
        }
        true
    }
}

fn worker_loop(
    listener: &Listener,
    stop: &AtomicBool,
    hub: &StatsHub,
    shard_idx: usize,
    cfg: &ServerConfig,
) {
    let gauges = &hub.gauges;
    let shard = &hub.shards[shard_idx];
    let mut tally = ShardTally::default();
    let mut sessions: Vec<SessionConn> = Vec::new();
    let mut cursor = 0usize;
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut pool = BufferPool::default();
    let mut wait_mode = WaitMode::new(cfg);
    // Hysteresis hello gate, per worker: closes at `gate_high` total
    // pending pages, re-opens below `gate_low`.
    let mut gated = false;
    // Whether the previous pass made no progress (the wait phase then
    // blocks instead of spinning).
    let mut idle = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            // Best-effort flush of what sessions are owed, then bail.
            for s in &mut sessions {
                pump_writes(s, &mut pool, &mut tally);
                gauges.session_closed();
            }
            shard.publish(&tally);
            return;
        }
        let accept_ready = wait_mode.wait(listener, &mut sessions, idle);
        let mut progress = false;

        // Accept whatever is pending. Every shard polls the listener
        // and races to accept; the kernel hands each connection to
        // exactly one of them, and a shard already serving sessions
        // multiplexes the newcomer alongside.
        if accept_ready {
            while let Ok(Some(conn)) = listener.try_accept() {
                tally.connections += 1;
                if !sessions.is_empty() {
                    tally.queued_connections += 1;
                }
                match SessionConn::new(conn) {
                    Ok(s) => {
                        gauges.session_opened();
                        sessions.push(s);
                        progress = true;
                    }
                    Err(e) => {
                        // An accepted socket we cannot put into
                        // non-blocking mode is unusable for the
                        // event loop; drop it *loudly*.
                        tally.dropped_connections += 1;
                        eprintln!(
                            "deputy shard {shard_idx}: dropping accepted \
                             connection (set_nonblocking failed: {e})"
                        );
                    }
                }
            }
        }

        let total_pending: usize = sessions.iter().map(|s| s.pending.len()).sum();
        gated = hello_gate(gated, total_pending, cfg);
        for s in &mut sessions {
            if s.ready_read {
                progress |= pump_reads(s, cfg, &mut tally, gauges, &mut pool, &mut read_buf, gated);
            }
        }
        progress |= drr_serve(&mut sessions, &mut cursor, cfg, &mut tally, &mut pool);
        // Publish protocol counters *before* draining output so a client
        // that observes a reply also observes the counters behind it;
        // the end-of-pass publish below picks up the write-side tallies.
        shard.publish(&tally);
        for s in &mut sessions {
            progress |= pump_writes(s, &mut pool, &mut tally);
            // Backpressure hysteresis: a stalled session resumes once
            // its backlog drains to the low-water mark.
            if s.write_blocked && s.out.unflushed() <= cfg.write_low_water {
                s.write_blocked = false;
            }
        }
        let before = sessions.len();
        sessions.retain(|s| {
            if s.finished() {
                gauges.session_closed();
                false
            } else {
                true
            }
        });
        if sessions.len() != before && !sessions.is_empty() {
            cursor %= sessions.len();
        }

        shard.publish(&tally);
        idle = !progress;
    }
}

/// One step of the hysteresis hello gate: closed at `gate_high` total
/// pending pages, open again strictly below `gate_low`. With
/// `gate_low <= gate_high` the gate cannot flap at a single boundary.
fn hello_gate(gated: bool, total_pending: usize, cfg: &ServerConfig) -> bool {
    if gated {
        total_pending >= cfg.gate_low
    } else {
        total_pending >= cfg.gate_high
    }
}

/// Reads available bytes and handles every complete frame. Control
/// frames are answered inline; page requests land in the pending queue
/// for the DRR pass.
fn pump_reads(
    s: &mut SessionConn,
    cfg: &ServerConfig,
    tally: &mut ShardTally,
    gauges: &SharedGauges,
    pool: &mut BufferPool,
    read_buf: &mut [u8],
    gated: bool,
) -> bool {
    if s.state != ConnState::Open {
        return false;
    }
    let mut progress = false;
    loop {
        match s.conn.read(read_buf) {
            Ok(0) => {
                s.state = ConnState::Dropped;
                break;
            }
            Ok(n) => {
                progress = true;
                s.fb.extend(&read_buf[..n]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                s.state = ConnState::Dropped;
                break;
            }
        }
    }
    loop {
        if s.state != ConnState::Open {
            break;
        }
        let frame = match s.fb.pop() {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(e) => {
                s.out.frame(
                    &Frame::Error {
                        code: 400,
                        detail: format!("codec: {e}"),
                    },
                    pool,
                );
                s.state = ConnState::Closing;
                break;
            }
        };
        progress = true;
        let served_at = Instant::now();
        handle_frame(s, frame, cfg, tally, gauges, pool, gated);
        s.local.busy_time_ns += served_at.elapsed().as_nanos() as u64;
    }
    progress
}

fn handle_frame(
    s: &mut SessionConn,
    frame: Frame,
    cfg: &ServerConfig,
    tally: &mut ShardTally,
    gauges: &SharedGauges,
    pool: &mut BufferPool,
    gated: bool,
) {
    match frame {
        Frame::Hello {
            version,
            total_pages,
            ..
        } => {
            if version != WIRE_VERSION {
                s.out.frame(
                    &Frame::Error {
                        code: 426,
                        detail: format!("version {version}, deputy speaks {WIRE_VERSION}"),
                    },
                    pool,
                );
                s.state = ConnState::Closing;
                return;
            }
            if gated {
                // The admission gate is closed: defer the session. The
                // client's reconnect loop redials until the backlog
                // drains below the low watermark.
                gauges.hellos_deferred.fetch_add(1, Ordering::Relaxed);
                s.out.frame(
                    &Frame::Error {
                        code: CODE_OVERLOADED,
                        detail: "admission gate closed; retry later".into(),
                    },
                    pool,
                );
                s.state = ConnState::Closing;
                return;
            }
            s.greeted = true;
            s.total_pages = total_pages;
            s.out.frame(
                &Frame::HelloAck {
                    version: WIRE_VERSION,
                    page_size: PAGE_SIZE as u32,
                },
                pool,
            );
        }
        // A PageRequest leads with its demand page; a PrefetchBatch is
        // speculation only. The distinction is what admission control
        // keys on, so the two types take the same path with a flag.
        Frame::PageRequest { req_id, pages } => {
            queue_request(s, req_id, pages, true, cfg, tally, pool);
        }
        Frame::PrefetchBatch { req_id, pages } => {
            queue_request(s, req_id, pages, false, cfg, tally, pool);
        }
        Frame::SyscallForward { call_id, .. } => {
            // The call's `work` is charged virtually by the migrant; the
            // deputy only provides the round trip.
            tally.syscalls_served += 1;
            s.out.frame(&Frame::SyscallReply { call_id }, pool);
        }
        Frame::Ping { token } => {
            tally.pings_served += 1;
            s.out.frame(&Frame::Pong { token }, pool);
        }
        Frame::StatsFetch => {
            let mut ws = s.local;
            ws.pages_coalesced = s.pending.coalesced();
            ws.max_pending_pages = s.pending.max_depth();
            // Deferred hellos never become sessions, so the counter is
            // deputy-wide rather than session-local.
            ws.hellos_deferred = gauges.hellos_deferred.load(Ordering::Relaxed);
            s.out.frame(&Frame::StatsReply(ws), pool);
        }
        Frame::Bye => s.state = ConnState::Closing,
        Frame::WritebackBatch { seq, pages } => {
            if !s.greeted {
                s.out.frame(
                    &Frame::Error {
                        code: 401,
                        detail: "writeback before hello".into(),
                    },
                    pool,
                );
                s.state = ConnState::Closing;
                return;
            }
            for (page, _, _) in &pages {
                if page.0 >= s.total_pages {
                    s.out.frame(
                        &Frame::Error {
                            code: 416,
                            detail: format!(
                                "writeback page {page} beyond image ({})",
                                s.total_pages
                            ),
                        },
                        pool,
                    );
                    s.state = ConnState::Closing;
                    return;
                }
            }
            let entries: Vec<(PageId, u64)> = pages.iter().map(|&(p, v, _)| (p, v)).collect();
            let outcome = s.sink.apply_batch(seq, &entries);
            tally.writeback_batches += 1;
            tally.writeback_pages_applied += u64::from(outcome.applied);
            tally.writeback_duplicates += u64::from(outcome.duplicates);
            s.out.frame(
                &Frame::WritebackAck {
                    seq,
                    applied: outcome.applied,
                    duplicates: outcome.duplicates,
                },
                pool,
            );
        }
        Frame::ReturnRequest => {
            if !s.greeted {
                s.out.frame(
                    &Frame::Error {
                        code: 401,
                        detail: "return before hello".into(),
                    },
                    pool,
                );
                s.state = ConnState::Closing;
                return;
            }
            // Home-return accounting over the pages this session served:
            // a fetched page that was never written back stays behind as
            // the remote deputy stub; everything else is free at home
            // (never fetched, or fetched and since written back).
            let stub_pages = s
                .served_pages
                .iter()
                .filter(|p| s.sink.applied_version(**p) == 0)
                .count() as u64;
            let freed_pages = s.total_pages.saturating_sub(stub_pages);
            tally.returns_served += 1;
            s.out.frame(
                &Frame::ReturnAck {
                    stub_pages,
                    freed_pages,
                },
                pool,
            );
        }
        Frame::HelloAck { .. }
        | Frame::PageReply { .. }
        | Frame::PageBatchReply { .. }
        | Frame::SyscallReply { .. }
        | Frame::Pong { .. }
        | Frame::StatsReply(_)
        | Frame::WritebackAck { .. }
        | Frame::ReturnAck { .. }
        | Frame::Error { .. } => {
            s.out.frame(
                &Frame::Error {
                    code: 400,
                    detail: "deputy received a reply frame".into(),
                },
                pool,
            );
            s.state = ConnState::Closing;
        }
    }
}

/// Queues one request frame's pages for the DRR pass, applying the
/// session's admission bound. `has_demand` marks a [`Frame::PageRequest`],
/// whose head page is the faulting (demand) page — always admitted.
/// Prefetch pages past [`ServerConfig::max_pending_pages`] are shed and
/// answered with a single non-fatal [`CODE_OVERLOADED`] frame naming
/// them, so the client can revert exactly those pages to the origin.
fn queue_request(
    s: &mut SessionConn,
    req_id: u64,
    pages: Vec<PageId>,
    has_demand: bool,
    cfg: &ServerConfig,
    tally: &mut ShardTally,
    pool: &mut BufferPool,
) {
    if !s.greeted {
        s.out.frame(
            &Frame::Error {
                code: 401,
                detail: "request before hello".into(),
            },
            pool,
        );
        s.state = ConnState::Closing;
        return;
    }
    if exceeds_request_cap(pages.len(), cfg.max_pages_per_request) {
        s.out.frame(
            &Frame::Error {
                code: 413,
                detail: format!(
                    "{} pages exceeds per-request cap {}",
                    pages.len(),
                    cfg.max_pages_per_request
                ),
            },
            pool,
        );
        s.state = ConnState::Closing;
        return;
    }
    // A request arriving while earlier pages are still pending
    // found the deputy busy: that wait is this session's backlog.
    if !s.pending.is_empty() {
        s.local.queued_requests += 1;
        if let Some(since) = s.backlog_since {
            let waited = since.elapsed().as_nanos() as u64;
            s.local.max_backlog_ns = s.local.max_backlog_ns.max(waited);
        }
    }
    s.local.requests_served += 1;
    tally.requests_served += 1;
    let mut shed: Vec<PageId> = Vec::new();
    for (i, page) in pages.into_iter().enumerate() {
        if page.0 >= s.total_pages {
            s.out.frame(
                &Frame::Error {
                    code: 416,
                    detail: format!("page {page} beyond image ({})", s.total_pages),
                },
                pool,
            );
            s.state = ConnState::Closing;
            return;
        }
        let was_empty = s.pending.is_empty();
        let demand = has_demand && i == 0;
        match s
            .pending
            .push_bounded(req_id, page, cfg.max_pending_pages, demand)
        {
            PushOutcome::Queued => {
                if was_empty {
                    s.backlog_since = Some(Instant::now());
                }
            }
            PushOutcome::Coalesced => {
                tally.pages_coalesced += 1;
            }
            PushOutcome::Shed => shed.push(page),
        }
    }
    if !shed.is_empty() {
        s.local.prefetch_pages_shed += shed.len() as u64;
        s.local.shed_events += 1;
        tally.prefetch_pages_shed += shed.len() as u64;
        tally.shed_events += 1;
        let list = shed
            .iter()
            .map(|p| p.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        // Non-fatal by contract: the connection stays Open; the client
        // reverts the named pages and re-fetches them on demand later.
        s.out.frame(
            &Frame::Error {
                code: CODE_OVERLOADED,
                detail: format!("shed prefetch: {list}"),
            },
            pool,
        );
    }
}

/// Whether a request naming `len` pages exceeds `cap`, compared in
/// `u64`. The old `len as u32` comparison wrapped for lengths at or
/// above 2³² — a 2³²-page request truncated to 0 and sailed past the
/// cap entirely.
fn exceeds_request_cap(len: usize, cap: u32) -> bool {
    len as u64 > u64::from(cap)
}

/// One full DRR drain: the cursor sweeps the worker's sessions, each
/// visit grants a quantum of deficit and serves pages while it lasts.
/// Runs until no session has pending pages (the client in-flight quota
/// bounds the pass).
fn drr_serve(
    sessions: &mut [SessionConn],
    cursor: &mut usize,
    cfg: &ServerConfig,
    tally: &mut ShardTally,
    pool: &mut BufferPool,
) -> bool {
    /// Servable now: open, pages pending, reader keeping up.
    fn eligible(s: &SessionConn) -> bool {
        s.state == ConnState::Open && !s.pending.is_empty() && !s.write_blocked
    }
    if sessions.is_empty() {
        return false;
    }
    let quantum = u64::from(cfg.quantum_pages.max(1));
    let n = sessions.len();
    // Tracked incrementally: nothing *becomes* eligible during the pass
    // (reads are done, service only shrinks queues), so one count up
    // front plus a decrement when a visited session drains or stalls
    // replaces the O(sessions) rescan the old loop made per visit.
    let mut remaining = sessions.iter().filter(|s| eligible(s)).count();
    let mut progress = false;
    while remaining > 0 {
        let idx = *cursor % n;
        *cursor = (idx + 1) % n;
        let s = &mut sessions[idx];
        if !eligible(s) {
            continue;
        }
        s.deficit += quantum;
        while s.deficit > 0 && !s.pending.is_empty() && s.state == ConnState::Open {
            // Backpressure: past the high-water mark this session's
            // reader owes us a drain before we owe it more pages.
            if s.out.unflushed() >= cfg.write_high_water {
                if !s.write_blocked {
                    s.write_blocked = true;
                    tally.write_stalls += 1;
                }
                break;
            }
            let take = (s.deficit.min(MAX_BATCH_PAGES as u64)) as usize;
            let batch = s.pending.take(take);
            s.deficit -= batch.len() as u64;
            serve_batch(s, batch, cfg, tally, pool);
            progress = true;
        }
        if s.pending.is_empty() {
            s.deficit = 0;
            s.backlog_since = None;
        }
        if !eligible(s) {
            remaining -= 1;
        }
    }
    progress
}

/// Encodes one visit's pages into the session's outbound queue: a
/// [`Frame::PageBatchReply`] when the visit serves several pages, the
/// legacy single-page [`Frame::PageReply`] otherwise.
fn serve_batch(
    s: &mut SessionConn,
    batch: Vec<(u64, PageId)>,
    cfg: &ServerConfig,
    tally: &mut ShardTally,
    pool: &mut BufferPool,
) {
    if batch.is_empty() {
        return;
    }
    let served_at = Instant::now();
    let served = batch.len() as u64;
    // Served pages are the "fetched" set the home-return accounting
    // partitions; re-serves (retries) are already in the set.
    s.served_pages.extend(batch.iter().map(|&(_, page)| page));
    // One pooled segment per reply frame, payloads synthesized in
    // place: the steady-state serving path allocates nothing.
    let mut seg = pool.take();
    if batch.len() == 1 {
        let (req_id, page) = batch[0];
        encode_page_reply_into(req_id, page, &mut seg);
    } else {
        encode_page_batch_reply_into(&batch, &mut seg);
        s.local.batch_replies += 1;
        tally.batch_replies += 1;
    }
    s.out.push_seg(seg, pool);
    tally.peak_write_backlog = tally.peak_write_backlog.max(s.out.unflushed() as u64);
    s.local.pages_served += served;
    s.pages_this_conn += served;
    tally.pages_served += served;
    s.local.busy_time_ns += served_at.elapsed().as_nanos() as u64;
    if let Some(limit) = cfg.drop_after_pages {
        if s.pages_this_conn >= limit {
            // Abrupt: unflushed replies are discarded with the socket,
            // so the migrant sees an EOF mid-stream.
            tally.dropped_connections += 1;
            s.state = ConnState::Dropped;
        }
    }
}

/// Flushes as much of the outbound queue as the socket accepts, handing
/// up to [`MAX_WRITE_IOV`] queued segments to each `write_vectored`
/// call — a whole DRR pass leaves in one syscall. Drained segments
/// retire to the pool.
fn pump_writes(s: &mut SessionConn, pool: &mut BufferPool, tally: &mut ShardTally) -> bool {
    if s.state == ConnState::Dropped || s.out.is_empty() {
        return false;
    }
    let mut progress = false;
    loop {
        if s.out.is_empty() {
            break;
        }
        const EMPTY: &[u8] = &[];
        let mut bufs = [IoSlice::new(EMPTY); MAX_WRITE_IOV];
        let n = s.out.fill_slices(&mut bufs);
        match s.conn.write_vectored(&bufs[..n]) {
            Ok(0) => {
                s.state = ConnState::Dropped;
                return progress;
            }
            Ok(written) => {
                if n > 1 {
                    tally.vectored_writes += 1;
                }
                s.out.advance(written, pool);
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                s.state = ConnState::Dropped;
                return progress;
            }
        }
    }
    if s.out.is_empty() {
        let _ = s.conn.flush();
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ephemeral_bind_reports_port() {
        let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        assert!(addr.starts_with("127.0.0.1:"));
        assert!(!addr.ends_with(":0"));
        server.shutdown();
    }

    #[test]
    fn rejects_zero_workers() {
        let cfg = ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        };
        assert!(DeputyServer::bind_tcp("127.0.0.1:0", cfg).is_err());
    }

    #[test]
    fn rejects_zero_quantum() {
        let cfg = ServerConfig {
            quantum_pages: 0,
            ..ServerConfig::default()
        };
        assert!(DeputyServer::bind_tcp("127.0.0.1:0", cfg).is_err());
    }

    #[test]
    fn pending_queue_coalesces_and_revives() {
        let mut q = PendingQueue::new();
        assert!(q.push(1, PageId(5)));
        assert!(!q.push(2, PageId(5)), "second request coalesces");
        assert_eq!(q.coalesced(), 1);
        assert_eq!(q.len(), 1);
        let taken = q.take(4);
        assert_eq!(taken, vec![(1, PageId(5))]);
        assert!(q.push(3, PageId(5)), "re-request after service re-queues");
        assert_eq!(q.max_depth(), 1);
    }

    #[test]
    fn bounded_push_sheds_prefetch_never_demand() {
        let mut q = PendingQueue::new();
        let bound = Some(2);
        assert_eq!(
            q.push_bounded(1, PageId(0), bound, false),
            PushOutcome::Queued
        );
        assert_eq!(
            q.push_bounded(1, PageId(1), bound, false),
            PushOutcome::Queued
        );
        assert_eq!(
            q.push_bounded(1, PageId(2), bound, false),
            PushOutcome::Shed,
            "prefetch past the bound is shed"
        );
        assert_eq!(
            q.push_bounded(2, PageId(3), bound, true),
            PushOutcome::Queued,
            "demand bypasses the bound"
        );
        assert_eq!(
            q.push_bounded(3, PageId(1), bound, false),
            PushOutcome::Coalesced,
            "a coalesce is never shed: the page is already queued"
        );
        assert_eq!(q.len(), 3);
        // A shed page left no trace: re-requesting it within the bound
        // queues normally.
        q.take(3);
        assert_eq!(
            q.push_bounded(4, PageId(2), bound, false),
            PushOutcome::Queued
        );
    }

    #[test]
    fn hello_gate_hysteresis_opens_below_low_watermark() {
        let cfg = ServerConfig {
            gate_high: 10,
            gate_low: 4,
            ..ServerConfig::default()
        };
        assert!(!hello_gate(false, 9, &cfg), "below high: stays open");
        assert!(hello_gate(false, 10, &cfg), "at high: closes");
        assert!(hello_gate(true, 5, &cfg), "above low: stays closed");
        assert!(hello_gate(true, 4, &cfg), "at low: still closed");
        assert!(!hello_gate(true, 3, &cfg), "below low: re-opens");
        let default = ServerConfig::default();
        assert!(
            !hello_gate(false, usize::MAX - 1, &default),
            "the default config never gates"
        );
    }

    #[test]
    fn request_cap_compares_in_full_width() {
        // The boundary: exactly at the cap is admitted, one past is not.
        assert!(!exceeds_request_cap(4096, 4096));
        assert!(exceeds_request_cap(4097, 4096));
        assert!(!exceeds_request_cap(0, 0));
        assert!(exceeds_request_cap(1, 0));
        // The regression: `len as u32` wrapped 2³² to 0 and let the
        // request through. (Lengths this large cannot arrive off the
        // wire — MAX_FRAME_BYTES bounds a real request to ~131k pages —
        // so the helper is the honest place to pin the arithmetic.)
        #[cfg(target_pointer_width = "64")]
        {
            let wrap = (u32::MAX as usize) + 1; // == 2^32, wraps to 0u32
            assert_eq!(wrap as u32, 0, "the old comparison saw this as 0");
            assert!(exceeds_request_cap(wrap, 4096));
            assert!(exceeds_request_cap(usize::MAX, u32::MAX));
        }
        assert!(!exceeds_request_cap(u32::MAX as usize, u32::MAX));
    }

    #[test]
    fn inverted_or_zero_write_watermarks_are_rejected() {
        let cfg = ServerConfig {
            write_high_water: 1024,
            write_low_water: 4096,
            ..ServerConfig::default()
        };
        assert!(DeputyServer::bind_tcp("127.0.0.1:0", cfg).is_err());
        let cfg = ServerConfig {
            write_high_water: 0,
            write_low_water: 0,
            ..ServerConfig::default()
        };
        assert!(DeputyServer::bind_tcp("127.0.0.1:0", cfg).is_err());
        // Equal watermarks are legal (degenerate hysteresis).
        let cfg = ServerConfig {
            write_high_water: 4096,
            write_low_water: 4096,
            ..ServerConfig::default()
        };
        let server = DeputyServer::bind_tcp("127.0.0.1:0", cfg).expect("equal marks bind");
        server.shutdown();
    }

    #[test]
    fn out_queue_accounts_and_recycles_segments() {
        let mut pool = BufferPool::default();
        let mut q = OutQueue::default();
        assert!(q.is_empty());

        q.push_seg(vec![1, 2, 3], &mut pool);
        q.push_seg(Vec::new(), &mut pool); // empty: straight to the pool
        q.push_seg(vec![4, 5], &mut pool);
        assert_eq!(q.unflushed(), 5);

        let mut bufs = [IoSlice::new(&[]); MAX_WRITE_IOV];
        let n = q.fill_slices(&mut bufs);
        assert_eq!(n, 2);
        assert_eq!(&*bufs[0], &[1, 2, 3]);
        assert_eq!(&*bufs[1], &[4, 5]);

        // Partial flush inside the first segment...
        q.advance(2, &mut pool);
        assert_eq!(q.unflushed(), 3);
        let mut bufs = [IoSlice::new(&[]); MAX_WRITE_IOV];
        let n = q.fill_slices(&mut bufs);
        assert_eq!(n, 2);
        assert_eq!(&*bufs[0], &[3], "head_at skips the flushed prefix");

        // ...then a flush spanning the segment boundary.
        q.advance(3, &mut pool);
        assert!(q.is_empty());
        let mut bufs = [IoSlice::new(&[]); MAX_WRITE_IOV];
        assert_eq!(q.fill_slices(&mut bufs), 0);

        // Both drained segments (plus the empty push) were recycled.
        assert_eq!(pool.free.len(), 3);
        let seg = pool.take();
        assert!(seg.is_empty(), "pooled segments come back cleared");
        assert!(seg.capacity() >= 2, "capacity survives the recycle");
    }

    #[test]
    fn frames_queued_via_pool_round_trip() {
        let mut pool = BufferPool::default();
        let mut q = OutQueue::default();
        q.frame(&Frame::Ping { token: 9 }, &mut pool);
        q.frame(&Frame::Bye, &mut pool);
        let mut bufs = [IoSlice::new(&[]); MAX_WRITE_IOV];
        let n = q.fill_slices(&mut bufs);
        let wire: Vec<u8> = bufs[..n].iter().flat_map(|b| b.to_vec()).collect();
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        assert_eq!(fb.pop().unwrap(), Some(Frame::Ping { token: 9 }));
        assert_eq!(fb.pop().unwrap(), Some(Frame::Bye));
        assert_eq!(fb.pop().unwrap(), None);
    }

    #[test]
    fn inverted_gate_and_zero_bound_are_rejected() {
        let cfg = ServerConfig {
            gate_high: 4,
            gate_low: 10,
            ..ServerConfig::default()
        };
        assert!(DeputyServer::bind_tcp("127.0.0.1:0", cfg).is_err());
        let cfg = ServerConfig {
            max_pending_pages: Some(0),
            ..ServerConfig::default()
        };
        assert!(DeputyServer::bind_tcp("127.0.0.1:0", cfg).is_err());
    }

    #[test]
    fn overload_sheds_prefetch_with_nonfatal_503_and_keeps_demand() {
        use crate::client::{Endpoint, MigrantClient};

        let cfg = ServerConfig {
            workers: 1,
            max_pending_pages: Some(4),
            ..ServerConfig::default()
        };
        let server = DeputyServer::bind_tcp("127.0.0.1:0", cfg).expect("bind");
        let mut client =
            MigrantClient::connect(Endpoint::tcp(server.local_addr()), 64, 2).expect("connect");

        // One frame: demand page 0 plus nine prefetch pages. The demand
        // and the first three prefetches fill the bound of 4; the other
        // six prefetches are shed in one 503.
        let prefetch: Vec<PageId> = (1..10).map(PageId).collect();
        client
            .send_request(Some(PageId(0)), &prefetch)
            .expect("send");

        let mut served = std::collections::HashSet::new();
        let mut shed_errors = 0u32;
        let deadline = Instant::now() + Duration::from_secs(5);
        while served.len() < 4 || shed_errors == 0 {
            assert!(Instant::now() < deadline, "replies never arrived");
            let remaining = deadline.saturating_duration_since(Instant::now());
            match client.recv(remaining).expect("recv") {
                Some(Frame::PageReply { page, .. }) => {
                    served.insert(page);
                }
                Some(Frame::PageBatchReply { pages, .. }) => {
                    served.extend(pages.into_iter().map(|(p, _)| p));
                }
                Some(Frame::Error { code, detail }) => {
                    assert_eq!(code, CODE_OVERLOADED, "unexpected error: {detail}");
                    shed_errors += 1;
                }
                other => panic!("unexpected frame: {other:?}"),
            }
        }
        assert!(served.contains(&PageId(0)), "the demand page was shed");
        assert_eq!(shed_errors, 1, "one request sheds once");

        // Non-fatal by contract: the same connection still answers.
        client.ping(Duration::from_secs(5)).expect("ping after 503");
        client.send(&Frame::StatsFetch).expect("stats fetch");
        let ws = loop {
            match client.recv(Duration::from_secs(5)).expect("recv") {
                Some(Frame::StatsReply(ws)) => break ws,
                Some(_) => continue,
                None => panic!("stats reply timed out"),
            }
        };
        assert_eq!(ws.prefetch_pages_shed, 6);
        assert_eq!(ws.demand_pages_shed, 0);
        assert_eq!(ws.shed_events, 1);
        assert_eq!(server.stats().prefetch_pages_shed, 6);
        assert_eq!(server.stats().shed_events, 1);

        drop(client);
        server.shutdown();
    }

    #[test]
    fn closed_hello_gate_defers_new_sessions() {
        use crate::client::{Endpoint, MigrantClient};

        // gate_high = gate_low = 0: the gate closes on the first pass and
        // (total pending never drops below 0) never re-opens.
        let cfg = ServerConfig {
            workers: 1,
            gate_high: 0,
            gate_low: 0,
            ..ServerConfig::default()
        };
        let server = DeputyServer::bind_tcp("127.0.0.1:0", cfg).expect("bind");
        let refused = MigrantClient::connect(Endpoint::tcp(server.local_addr()), 64, 2);
        assert!(refused.is_err(), "a gated deputy accepted a hello");
        assert!(server.stats().hellos_deferred >= 1);
        server.shutdown();
    }
}
