//! The live deputy: serves remote-paging requests over real sockets.
//!
//! [`DeputyServer`] is the socket-facing analog of
//! [`ampom_core::deputy::MultiDeputy`]: a bounded pool of worker threads
//! accepts connections on a TCP or Unix-domain listener, and each worker
//! *multiplexes* every session assigned to it through one event loop —
//! non-blocking reads, per-connection pending-page queues, and a
//! deficit-round-robin service pass across the sessions. One
//! `DeputyServer` therefore serves N concurrent migrants over a worker
//! pool smaller than N, exactly as the simulated multi-migrant deputy
//! shares one service capacity across shards.
//!
//! Within a worker the service discipline mirrors the simulation:
//!
//! * **Sharded pending store**: each connection owns a [`PendingQueue`]
//!   — FIFO service order per migrant, with a pending-set that
//!   *coalesces* a request for a page an earlier request already queued
//!   into the same service event. A page re-requested after being served
//!   (a retry for a lost reply) queues again, so coalescing never strands
//!   a migrant.
//! * **DRR fairness**: a cursor sweeps the worker's sessions; each visit
//!   grants [`ServerConfig::quantum_pages`] of deficit and serves pages
//!   while the deficit lasts, so a migrant flooding prefetch batches
//!   cannot starve a neighbour's demand fetches.
//! * **Reply batching**: the pages one visit serves leave as a single
//!   [`Frame::PageBatchReply`] (legacy [`Frame::PageReply`] when the
//!   visit serves exactly one page), bounded by
//!   [`MAX_BATCH_PAGES`].
//!
//! Backpressure is structural: a request may name at most
//! [`ServerConfig::max_pages_per_request`] pages (violations earn an
//! `Error` frame and a closed connection), the client side keeps a
//! bounded in-flight quota, and outbound bytes queue per connection with
//! partial non-blocking writes, so neither side buffers unboundedly.
//!
//! For fault-injection tests, [`ServerConfig::drop_after_pages`] makes
//! each connection die abruptly after serving that many pages — the
//! live equivalent of `DowntimeSchedule`'s deputy crash.

use std::collections::{HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ampom_mem::page::{PageId, PAGE_SIZE};

use crate::frame::{page_payload, Frame, FrameBuffer, WireStats, MAX_BATCH_PAGES, WIRE_VERSION};
use crate::RpcError;

/// Tuning knobs of a [`DeputyServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections. Each worker multiplexes any
    /// number of sessions, so N migrants complete on fewer workers.
    pub workers: usize,
    /// Upper bound on pages named by one request frame.
    pub max_pages_per_request: u32,
    /// Fault injection: close each connection abruptly after serving
    /// this many pages (`None` = reliable deputy).
    pub drop_after_pages: Option<u64>,
    /// DRR quantum: pages of deficit granted per scheduling visit to a
    /// session. Smaller quanta interleave migrants more finely.
    pub quantum_pages: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_pages_per_request: 4096,
            drop_after_pages: None,
            quantum_pages: 16,
        }
    }
}

/// Aggregate service counters across all sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames answered (demand + prefetch batches).
    pub requests_served: u64,
    /// Page replies written.
    pub pages_served: u64,
    /// Forwarded system calls answered.
    pub syscalls_served: u64,
    /// Ping probes answered.
    pub pings_served: u64,
    /// Connections the fault injector dropped.
    pub dropped_connections: u64,
    /// Connections accepted by a worker already serving other sessions
    /// (the pool multiplexed rather than dedicating a worker).
    pub queued_connections: u64,
    /// Page requests absorbed by coalescing across all sessions.
    pub pages_coalesced: u64,
    /// Batched reply frames written across all sessions.
    pub batch_replies: u64,
    /// Most concurrent live sessions observed server-wide.
    pub peak_sessions: u64,
}

impl ampom_obs::MetricSource for ServerStats {
    fn export_metrics(&self, reg: &mut ampom_obs::MetricsRegistry) {
        reg.export_counter(
            "ampom_deputy_server_connections_total",
            "Connections accepted",
            self.connections,
        );
        reg.export_counter(
            "ampom_deputy_server_requests_served_total",
            "Request frames answered (demand + prefetch batches)",
            self.requests_served,
        );
        reg.export_counter(
            "ampom_deputy_server_pages_served_total",
            "Page replies written",
            self.pages_served,
        );
        reg.export_counter(
            "ampom_deputy_server_syscalls_served_total",
            "Forwarded system calls answered",
            self.syscalls_served,
        );
        reg.export_counter(
            "ampom_deputy_server_pings_served_total",
            "Ping probes answered",
            self.pings_served,
        );
        reg.export_counter(
            "ampom_deputy_server_dropped_connections_total",
            "Connections the fault injector dropped",
            self.dropped_connections,
        );
        reg.export_counter(
            "ampom_deputy_server_queued_connections_total",
            "Connections multiplexed onto an already-busy worker",
            self.queued_connections,
        );
        reg.export_counter(
            "ampom_deputy_server_pages_coalesced_total",
            "Page requests absorbed by coalescing",
            self.pages_coalesced,
        );
        reg.export_counter(
            "ampom_deputy_server_batch_replies_total",
            "Batched reply frames written",
            self.batch_replies,
        );
        reg.export_counter(
            "ampom_deputy_server_peak_sessions",
            "Most concurrent live sessions observed",
            self.peak_sessions,
        );
    }
}

#[derive(Debug, Default)]
struct SharedStats {
    connections: AtomicU64,
    requests_served: AtomicU64,
    pages_served: AtomicU64,
    syscalls_served: AtomicU64,
    pings_served: AtomicU64,
    dropped_connections: AtomicU64,
    queued_connections: AtomicU64,
    pages_coalesced: AtomicU64,
    batch_replies: AtomicU64,
    active_sessions: AtomicU64,
    peak_sessions: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            pages_served: self.pages_served.load(Ordering::Relaxed),
            syscalls_served: self.syscalls_served.load(Ordering::Relaxed),
            pings_served: self.pings_served.load(Ordering::Relaxed),
            dropped_connections: self.dropped_connections.load(Ordering::Relaxed),
            queued_connections: self.queued_connections.load(Ordering::Relaxed),
            pages_coalesced: self.pages_coalesced.load(Ordering::Relaxed),
            batch_replies: self.batch_replies.load(Ordering::Relaxed),
            peak_sessions: self.peak_sessions.load(Ordering::Relaxed),
        }
    }

    fn session_opened(&self) {
        let live = self.active_sessions.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_sessions.fetch_max(live, Ordering::Relaxed);
    }

    fn session_closed(&self) {
        self.active_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-connection pending page store with request coalescing.
///
/// Pages queue FIFO per connection. A request for a page that is already
/// queued-but-unserved is *coalesced*: the single queued entry answers
/// both requests, and the coalesce is counted. Once a page is taken for
/// service it leaves the pending set, so a later re-request (the
/// client's retry for a lost reply) queues — and is served — again.
/// These two rules are exactly the "never drops, never duplicates"
/// invariant the property suite pins.
#[derive(Debug, Default)]
pub struct PendingQueue {
    queue: VecDeque<(u64, PageId)>,
    pending: HashSet<PageId>,
    coalesced: u64,
    max_depth: u64,
}

impl PendingQueue {
    /// An empty queue.
    pub fn new() -> Self {
        PendingQueue::default()
    }

    /// Enqueues `page` on behalf of `req_id` unless an earlier request
    /// for it is still pending. Returns `true` if enqueued, `false` if
    /// coalesced into the earlier entry.
    pub fn push(&mut self, req_id: u64, page: PageId) -> bool {
        if !self.pending.insert(page) {
            self.coalesced += 1;
            return false;
        }
        self.queue.push_back((req_id, page));
        self.max_depth = self.max_depth.max(self.queue.len() as u64);
        true
    }

    /// Dequeues up to `n` pages for service, in FIFO order. The taken
    /// pages leave the pending set, so a re-request re-enqueues them.
    pub fn take(&mut self, n: usize) -> Vec<(u64, PageId)> {
        let n = n.min(self.queue.len());
        let out: Vec<(u64, PageId)> = self.queue.drain(..n).collect();
        for (_, page) in &out {
            self.pending.remove(page);
        }
        out
    }

    /// Pages queued and not yet taken.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests absorbed by coalescing so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Worst queue depth reached.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Non-blocking accept; `Ok(None)` when no connection is pending.
    fn try_accept(&self) -> std::io::Result<Option<ServerStream>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true).ok();
                    Ok(Some(ServerStream::Tcp(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(ServerStream::Unix(s))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

enum ServerStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ServerStream {
    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            ServerStream::Tcp(s) => s.set_nonblocking(on),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.set_nonblocking(on),
        }
    }
}

impl Read for ServerStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ServerStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ServerStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.flush(),
        }
    }
}

/// A running deputy server; dropping it (or calling
/// [`DeputyServer::shutdown`]) stops the workers.
pub struct DeputyServer {
    addr: String,
    stop: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for DeputyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeputyServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl DeputyServer {
    /// Binds a TCP listener (use `"127.0.0.1:0"` for an ephemeral
    /// loopback port) and starts the worker pool.
    pub fn bind_tcp(addr: &str, cfg: ServerConfig) -> Result<DeputyServer, RpcError> {
        let listener = TcpListener::bind(addr).map_err(RpcError::Io)?;
        let local = listener.local_addr().map_err(RpcError::Io)?.to_string();
        listener.set_nonblocking(true).map_err(RpcError::Io)?;
        Self::start(Listener::Tcp(listener), local, cfg)
    }

    /// Binds a Unix-domain listener at `path` and starts the worker pool.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path, cfg: ServerConfig) -> Result<DeputyServer, RpcError> {
        let listener = UnixListener::bind(path).map_err(RpcError::Io)?;
        listener.set_nonblocking(true).map_err(RpcError::Io)?;
        Self::start(Listener::Unix(listener), path.display().to_string(), cfg)
    }

    fn start(
        listener: Listener,
        addr: String,
        cfg: ServerConfig,
    ) -> Result<DeputyServer, RpcError> {
        if cfg.workers == 0 {
            return Err(RpcError::Protocol("server needs at least 1 worker".into()));
        }
        if cfg.quantum_pages == 0 {
            return Err(RpcError::Protocol(
                "server needs a DRR quantum of at least 1 page".into(),
            ));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let listener = Arc::new(Mutex::new(listener));
        let mut workers = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let listener = Arc::clone(&listener);
            let cfg = cfg.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(&listener, &stop, &stats, &cfg);
            }));
        }
        Ok(DeputyServer {
            addr,
            stop,
            stats,
            workers,
        })
    }

    /// The bound address (`host:port` for TCP, the socket path for Unix).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// A snapshot of the aggregate service counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Stops accepting, lets in-progress sessions wind down, and joins
    /// the workers.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for DeputyServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// How long an idle worker sleeps between event-loop passes.
const POLL_INTERVAL: Duration = Duration::from_millis(1);

/// One multiplexed migrant session inside a worker's event loop.
struct SessionConn {
    conn: ServerStream,
    fb: FrameBuffer,
    /// Encoded outbound bytes; `out_at` marks the flushed prefix.
    out: Vec<u8>,
    out_at: usize,
    greeted: bool,
    total_pages: u64,
    pages_this_conn: u64,
    pending: PendingQueue,
    /// DRR deficit, in pages.
    deficit: u64,
    /// Wall instant the pending queue last became non-empty; the wait
    /// since then is this session's observed backlog.
    backlog_since: Option<Instant>,
    local: WireStats,
    state: ConnState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Reading and serving.
    Open,
    /// Flush the outbound queue (a final error/ack), then close.
    Closing,
    /// Close immediately, discarding unflushed output.
    Dropped,
}

impl SessionConn {
    fn new(conn: ServerStream) -> Option<SessionConn> {
        conn.set_nonblocking(true).ok()?;
        Some(SessionConn {
            conn,
            fb: FrameBuffer::new(),
            out: Vec::with_capacity(128 * 1024),
            out_at: 0,
            greeted: false,
            total_pages: 0,
            pages_this_conn: 0,
            pending: PendingQueue::new(),
            deficit: 0,
            backlog_since: None,
            local: WireStats::default(),
            state: ConnState::Open,
        })
    }

    fn finished(&self) -> bool {
        match self.state {
            ConnState::Open => false,
            ConnState::Dropped => true,
            ConnState::Closing => self.out_at >= self.out.len(),
        }
    }
}

fn worker_loop(
    listener: &Mutex<Listener>,
    stop: &AtomicBool,
    stats: &SharedStats,
    cfg: &ServerConfig,
) {
    let mut sessions: Vec<SessionConn> = Vec::new();
    let mut cursor = 0usize;
    let mut read_buf = vec![0u8; 64 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            // Best-effort flush of what sessions are owed, then bail.
            for s in &mut sessions {
                pump_writes(s);
                stats.session_closed();
            }
            return;
        }
        let mut progress = false;

        // Accept whatever is pending; the lock shards arrivals across
        // workers, and a worker already serving sessions multiplexes.
        loop {
            let accepted = match listener.lock() {
                Ok(guard) => guard.try_accept(),
                Err(_) => return,
            };
            match accepted {
                Ok(Some(conn)) => {
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    if !sessions.is_empty() {
                        stats.queued_connections.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(s) = SessionConn::new(conn) {
                        stats.session_opened();
                        sessions.push(s);
                        progress = true;
                    }
                }
                Ok(None) | Err(_) => break,
            }
        }

        for s in &mut sessions {
            progress |= pump_reads(s, cfg, stats, &mut read_buf);
        }
        progress |= drr_serve(&mut sessions, &mut cursor, cfg, stats);
        for s in &mut sessions {
            progress |= pump_writes(s);
        }
        let before = sessions.len();
        sessions.retain(|s| {
            if s.finished() {
                stats.session_closed();
                false
            } else {
                true
            }
        });
        if sessions.len() != before && !sessions.is_empty() {
            cursor %= sessions.len();
        }

        if !progress {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

/// Reads available bytes and handles every complete frame. Control
/// frames are answered inline; page requests land in the pending queue
/// for the DRR pass.
fn pump_reads(
    s: &mut SessionConn,
    cfg: &ServerConfig,
    stats: &SharedStats,
    read_buf: &mut [u8],
) -> bool {
    if s.state != ConnState::Open {
        return false;
    }
    let mut progress = false;
    loop {
        match s.conn.read(read_buf) {
            Ok(0) => {
                s.state = ConnState::Dropped;
                break;
            }
            Ok(n) => {
                progress = true;
                s.fb.extend(&read_buf[..n]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                s.state = ConnState::Dropped;
                break;
            }
        }
    }
    loop {
        if s.state != ConnState::Open {
            break;
        }
        let frame = match s.fb.pop() {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(e) => {
                Frame::Error {
                    code: 400,
                    detail: format!("codec: {e}"),
                }
                .encode_into(&mut s.out);
                s.state = ConnState::Closing;
                break;
            }
        };
        progress = true;
        let served_at = Instant::now();
        handle_frame(s, frame, cfg, stats);
        s.local.busy_time_ns += served_at.elapsed().as_nanos() as u64;
    }
    progress
}

fn handle_frame(s: &mut SessionConn, frame: Frame, cfg: &ServerConfig, stats: &SharedStats) {
    match frame {
        Frame::Hello {
            version,
            total_pages,
            ..
        } => {
            if version != WIRE_VERSION {
                Frame::Error {
                    code: 426,
                    detail: format!("version {version}, deputy speaks {WIRE_VERSION}"),
                }
                .encode_into(&mut s.out);
                s.state = ConnState::Closing;
                return;
            }
            s.greeted = true;
            s.total_pages = total_pages;
            Frame::HelloAck {
                version: WIRE_VERSION,
                page_size: PAGE_SIZE as u32,
            }
            .encode_into(&mut s.out);
        }
        Frame::PageRequest { req_id, pages } | Frame::PrefetchBatch { req_id, pages } => {
            if !s.greeted {
                Frame::Error {
                    code: 401,
                    detail: "request before hello".into(),
                }
                .encode_into(&mut s.out);
                s.state = ConnState::Closing;
                return;
            }
            if pages.len() as u32 > cfg.max_pages_per_request {
                Frame::Error {
                    code: 413,
                    detail: format!(
                        "{} pages exceeds per-request cap {}",
                        pages.len(),
                        cfg.max_pages_per_request
                    ),
                }
                .encode_into(&mut s.out);
                s.state = ConnState::Closing;
                return;
            }
            // A request arriving while earlier pages are still pending
            // found the deputy busy: that wait is this session's backlog.
            if !s.pending.is_empty() {
                s.local.queued_requests += 1;
                if let Some(since) = s.backlog_since {
                    let waited = since.elapsed().as_nanos() as u64;
                    s.local.max_backlog_ns = s.local.max_backlog_ns.max(waited);
                }
            }
            s.local.requests_served += 1;
            stats.requests_served.fetch_add(1, Ordering::Relaxed);
            for page in pages {
                if page.0 >= s.total_pages {
                    Frame::Error {
                        code: 416,
                        detail: format!("page {page} beyond image ({})", s.total_pages),
                    }
                    .encode_into(&mut s.out);
                    s.state = ConnState::Closing;
                    return;
                }
                let was_empty = s.pending.is_empty();
                if !s.pending.push(req_id, page) {
                    stats.pages_coalesced.fetch_add(1, Ordering::Relaxed);
                } else if was_empty {
                    s.backlog_since = Some(Instant::now());
                }
            }
        }
        Frame::SyscallForward { call_id, .. } => {
            // The call's `work` is charged virtually by the migrant; the
            // deputy only provides the round trip.
            stats.syscalls_served.fetch_add(1, Ordering::Relaxed);
            Frame::SyscallReply { call_id }.encode_into(&mut s.out);
        }
        Frame::Ping { token } => {
            stats.pings_served.fetch_add(1, Ordering::Relaxed);
            Frame::Pong { token }.encode_into(&mut s.out);
        }
        Frame::StatsFetch => {
            let mut ws = s.local;
            ws.pages_coalesced = s.pending.coalesced();
            ws.max_pending_pages = s.pending.max_depth();
            Frame::StatsReply(ws).encode_into(&mut s.out);
        }
        Frame::Bye => s.state = ConnState::Closing,
        Frame::HelloAck { .. }
        | Frame::PageReply { .. }
        | Frame::PageBatchReply { .. }
        | Frame::SyscallReply { .. }
        | Frame::Pong { .. }
        | Frame::StatsReply(_)
        | Frame::Error { .. } => {
            Frame::Error {
                code: 400,
                detail: "deputy received a reply frame".into(),
            }
            .encode_into(&mut s.out);
            s.state = ConnState::Closing;
        }
    }
}

/// One full DRR drain: the cursor sweeps the worker's sessions, each
/// visit grants a quantum of deficit and serves pages while it lasts.
/// Runs until no session has pending pages (the client in-flight quota
/// bounds the pass).
fn drr_serve(
    sessions: &mut [SessionConn],
    cursor: &mut usize,
    cfg: &ServerConfig,
    stats: &SharedStats,
) -> bool {
    if sessions.is_empty() {
        return false;
    }
    let quantum = u64::from(cfg.quantum_pages.max(1));
    let n = sessions.len();
    let mut progress = false;
    loop {
        let eligible = sessions
            .iter()
            .any(|s| s.state == ConnState::Open && !s.pending.is_empty());
        if !eligible {
            break;
        }
        let idx = *cursor % n;
        {
            let s = &mut sessions[idx];
            if s.state == ConnState::Open && !s.pending.is_empty() {
                s.deficit += quantum;
                while s.deficit > 0 && !s.pending.is_empty() && s.state == ConnState::Open {
                    let take = (s.deficit.min(MAX_BATCH_PAGES as u64)) as usize;
                    let batch = s.pending.take(take);
                    s.deficit -= batch.len() as u64;
                    serve_batch(s, batch, cfg, stats);
                    progress = true;
                }
                if s.pending.is_empty() {
                    s.deficit = 0;
                    s.backlog_since = None;
                }
            }
        }
        *cursor = (idx + 1) % n;
    }
    progress
}

/// Encodes one visit's pages into the session's outbound queue: a
/// [`Frame::PageBatchReply`] when the visit serves several pages, the
/// legacy single-page [`Frame::PageReply`] otherwise.
fn serve_batch(
    s: &mut SessionConn,
    batch: Vec<(u64, PageId)>,
    cfg: &ServerConfig,
    stats: &SharedStats,
) {
    if batch.is_empty() {
        return;
    }
    let served_at = Instant::now();
    let served = batch.len() as u64;
    if batch.len() == 1 {
        let (req_id, page) = batch[0];
        Frame::PageReply {
            req_id,
            page,
            data: page_payload(page),
        }
        .encode_into(&mut s.out);
    } else {
        let req_id = batch[0].0;
        let pages: Vec<(PageId, Vec<u8>)> = batch
            .into_iter()
            .map(|(_, page)| (page, page_payload(page)))
            .collect();
        Frame::PageBatchReply { req_id, pages }.encode_into(&mut s.out);
        s.local.batch_replies += 1;
        stats.batch_replies.fetch_add(1, Ordering::Relaxed);
    }
    s.local.pages_served += served;
    s.pages_this_conn += served;
    stats.pages_served.fetch_add(served, Ordering::Relaxed);
    s.local.busy_time_ns += served_at.elapsed().as_nanos() as u64;
    if let Some(limit) = cfg.drop_after_pages {
        if s.pages_this_conn >= limit {
            // Abrupt: unflushed replies are discarded with the socket,
            // so the migrant sees an EOF mid-stream.
            stats.dropped_connections.fetch_add(1, Ordering::Relaxed);
            s.state = ConnState::Dropped;
        }
    }
}

/// Flushes as much of the outbound queue as the socket accepts.
fn pump_writes(s: &mut SessionConn) -> bool {
    if s.state == ConnState::Dropped || s.out_at >= s.out.len() {
        return false;
    }
    let mut progress = false;
    while s.out_at < s.out.len() {
        match s.conn.write(&s.out[s.out_at..]) {
            Ok(0) => {
                s.state = ConnState::Dropped;
                return progress;
            }
            Ok(n) => {
                s.out_at += n;
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                s.state = ConnState::Dropped;
                return progress;
            }
        }
    }
    if s.out_at >= s.out.len() {
        s.out.clear();
        s.out_at = 0;
        let _ = s.conn.flush();
    } else if s.out_at > 64 * 1024 {
        s.out.drain(..s.out_at);
        s.out_at = 0;
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ephemeral_bind_reports_port() {
        let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        assert!(addr.starts_with("127.0.0.1:"));
        assert!(!addr.ends_with(":0"));
        server.shutdown();
    }

    #[test]
    fn rejects_zero_workers() {
        let cfg = ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        };
        assert!(DeputyServer::bind_tcp("127.0.0.1:0", cfg).is_err());
    }

    #[test]
    fn rejects_zero_quantum() {
        let cfg = ServerConfig {
            quantum_pages: 0,
            ..ServerConfig::default()
        };
        assert!(DeputyServer::bind_tcp("127.0.0.1:0", cfg).is_err());
    }

    #[test]
    fn pending_queue_coalesces_and_revives() {
        let mut q = PendingQueue::new();
        assert!(q.push(1, PageId(5)));
        assert!(!q.push(2, PageId(5)), "second request coalesces");
        assert_eq!(q.coalesced(), 1);
        assert_eq!(q.len(), 1);
        let taken = q.take(4);
        assert_eq!(taken, vec![(1, PageId(5))]);
        assert!(q.push(3, PageId(5)), "re-request after service re-queues");
        assert_eq!(q.max_depth(), 1);
    }
}
