//! The live deputy: serves remote-paging requests over real sockets.
//!
//! [`DeputyServer`] is the socket-facing analog of
//! [`ampom_core::deputy::Deputy`]: a bounded pool of worker threads
//! accepts connections on a TCP or Unix-domain listener and serves each
//! migrant session to completion. Within a session the read→serve→write
//! loop is single-threaded — exactly the "deputy is a single kernel
//! thread" assumption of the simulation — so requests pipeline through
//! socket buffering rather than concurrency: replies to one batch
//! serialize while the next request is already queued, which is the
//! paper's §5.4 pipelining effect on a real wire.
//!
//! Backpressure is structural: a request may name at most
//! [`ServerConfig::max_pages_per_request`] pages (violations earn an
//! `Error` frame and a closed connection), and the client side keeps a
//! bounded in-flight quota, so neither side buffers unboundedly.
//!
//! For fault-injection tests, [`ServerConfig::drop_after_pages`] makes
//! each connection die abruptly after serving that many pages — the
//! live equivalent of `DowntimeSchedule`'s deputy crash.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ampom_mem::page::PAGE_SIZE;

use crate::frame::{page_payload, Frame, FrameBuffer, WireStats, WIRE_VERSION};
use crate::RpcError;

/// Tuning knobs of a [`DeputyServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads accepting and serving connections (the bounded
    /// thread pool; one migrant session occupies one worker).
    pub workers: usize,
    /// Upper bound on pages named by one request frame.
    pub max_pages_per_request: u32,
    /// Fault injection: close each connection abruptly after serving
    /// this many pages (`None` = reliable deputy).
    pub drop_after_pages: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_pages_per_request: 4096,
            drop_after_pages: None,
        }
    }
}

/// Aggregate service counters across all sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames answered (demand + prefetch batches).
    pub requests_served: u64,
    /// Page replies written.
    pub pages_served: u64,
    /// Forwarded system calls answered.
    pub syscalls_served: u64,
    /// Ping probes answered.
    pub pings_served: u64,
    /// Connections the fault injector dropped.
    pub dropped_connections: u64,
    /// Requests that arrived while every worker was busy serving another
    /// session (observed backlog — the accept queue was non-empty).
    pub queued_connections: u64,
}

impl ampom_obs::MetricSource for ServerStats {
    fn export_metrics(&self, reg: &mut ampom_obs::MetricsRegistry) {
        reg.export_counter(
            "ampom_deputy_server_connections_total",
            "Connections accepted",
            self.connections,
        );
        reg.export_counter(
            "ampom_deputy_server_requests_served_total",
            "Request frames answered (demand + prefetch batches)",
            self.requests_served,
        );
        reg.export_counter(
            "ampom_deputy_server_pages_served_total",
            "Page replies written",
            self.pages_served,
        );
        reg.export_counter(
            "ampom_deputy_server_syscalls_served_total",
            "Forwarded system calls answered",
            self.syscalls_served,
        );
        reg.export_counter(
            "ampom_deputy_server_pings_served_total",
            "Ping probes answered",
            self.pings_served,
        );
        reg.export_counter(
            "ampom_deputy_server_dropped_connections_total",
            "Connections the fault injector dropped",
            self.dropped_connections,
        );
        reg.export_counter(
            "ampom_deputy_server_queued_connections_total",
            "Requests arriving while every worker was busy",
            self.queued_connections,
        );
    }
}

#[derive(Debug, Default)]
struct SharedStats {
    connections: AtomicU64,
    requests_served: AtomicU64,
    pages_served: AtomicU64,
    syscalls_served: AtomicU64,
    pings_served: AtomicU64,
    dropped_connections: AtomicU64,
    queued_connections: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            pages_served: self.pages_served.load(Ordering::Relaxed),
            syscalls_served: self.syscalls_served.load(Ordering::Relaxed),
            pings_served: self.pings_served.load(Ordering::Relaxed),
            dropped_connections: self.dropped_connections.load(Ordering::Relaxed),
            queued_connections: self.queued_connections.load(Ordering::Relaxed),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Non-blocking accept; `Ok(None)` when no connection is pending.
    fn try_accept(&self) -> std::io::Result<Option<ServerStream>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true).ok();
                    Ok(Some(ServerStream::Tcp(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(ServerStream::Unix(s))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

enum ServerStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ServerStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            ServerStream::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for ServerStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ServerStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ServerStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ServerStream::Unix(s) => s.flush(),
        }
    }
}

/// A running deputy server; dropping it (or calling
/// [`DeputyServer::shutdown`]) stops the workers.
pub struct DeputyServer {
    addr: String,
    stop: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for DeputyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeputyServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl DeputyServer {
    /// Binds a TCP listener (use `"127.0.0.1:0"` for an ephemeral
    /// loopback port) and starts the worker pool.
    pub fn bind_tcp(addr: &str, cfg: ServerConfig) -> Result<DeputyServer, RpcError> {
        let listener = TcpListener::bind(addr).map_err(RpcError::Io)?;
        let local = listener.local_addr().map_err(RpcError::Io)?.to_string();
        listener.set_nonblocking(true).map_err(RpcError::Io)?;
        Self::start(Listener::Tcp(listener), local, cfg)
    }

    /// Binds a Unix-domain listener at `path` and starts the worker pool.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path, cfg: ServerConfig) -> Result<DeputyServer, RpcError> {
        let listener = UnixListener::bind(path).map_err(RpcError::Io)?;
        listener.set_nonblocking(true).map_err(RpcError::Io)?;
        Self::start(Listener::Unix(listener), path.display().to_string(), cfg)
    }

    fn start(
        listener: Listener,
        addr: String,
        cfg: ServerConfig,
    ) -> Result<DeputyServer, RpcError> {
        if cfg.workers == 0 {
            return Err(RpcError::Protocol("server needs at least 1 worker".into()));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let listener = Arc::new(Mutex::new(listener));
        let mut workers = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let listener = Arc::clone(&listener);
            let cfg = cfg.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(&listener, &stop, &stats, &cfg);
            }));
        }
        Ok(DeputyServer {
            addr,
            stop,
            stats,
            workers,
        })
    }

    /// The bound address (`host:port` for TCP, the socket path for Unix).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// A snapshot of the aggregate service counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Stops accepting, lets in-progress sessions wind down, and joins
    /// the workers.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for DeputyServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// How often idle workers poll the (non-blocking) listener and serving
/// workers check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

fn worker_loop(
    listener: &Mutex<Listener>,
    stop: &AtomicBool,
    stats: &SharedStats,
    cfg: &ServerConfig,
) {
    while !stop.load(Ordering::SeqCst) {
        let accepted = {
            let guard = listener.lock().expect("listener lock");
            guard.try_accept()
        };
        match accepted {
            Ok(Some(conn)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                // A second pending connection right behind this one means
                // the pool is the bottleneck; record the backlog.
                if let Ok(guard) = listener.lock() {
                    if let Ok(Some(extra)) = guard.try_accept() {
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        stats.queued_connections.fetch_add(1, Ordering::Relaxed);
                        drop(guard);
                        // Serve the first, then the stolen one, in order.
                        serve_connection(conn, stop, stats, cfg);
                        serve_connection(extra, stop, stats, cfg);
                        continue;
                    }
                }
                serve_connection(conn, stop, stats, cfg);
            }
            Ok(None) => std::thread::sleep(POLL_INTERVAL),
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Serves one migrant session to completion.
fn serve_connection(
    mut conn: ServerStream,
    stop: &AtomicBool,
    stats: &SharedStats,
    cfg: &ServerConfig,
) {
    if conn.set_read_timeout(Some(POLL_INTERVAL * 20)).is_err() {
        return;
    }
    let mut fb = FrameBuffer::new();
    let mut read_buf = [0u8; 64 * 1024];
    let mut write_buf: Vec<u8> = Vec::with_capacity(128 * 1024);
    let mut session = Session {
        total_pages: 0,
        greeted: false,
        pages_this_conn: 0,
        local: WireStats::default(),
    };

    loop {
        // Drain every complete frame already buffered before reading.
        // Frames after the first in a burst were waiting while earlier
        // ones were served — that wait is the deputy's request backlog.
        let mut burst_busy = Duration::ZERO;
        let mut burst_len = 0u32;
        loop {
            let frame = match fb.pop() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(e) => {
                    let reply = Frame::Error {
                        code: 400,
                        detail: format!("codec: {e}"),
                    };
                    reply.encode_into(&mut write_buf);
                    let _ = conn.write_all(&write_buf);
                    return;
                }
            };
            let is_request = matches!(
                frame,
                Frame::PageRequest { .. }
                    | Frame::PrefetchBatch { .. }
                    | Frame::SyscallForward { .. }
            );
            if is_request && burst_len > 0 {
                session.local.queued_requests += 1;
                let backlog = burst_busy.as_nanos() as u64;
                session.local.max_backlog_ns = session.local.max_backlog_ns.max(backlog);
            }
            burst_len += 1;
            let served_at = Instant::now();
            let step = session.handle(frame, cfg, stats, &mut write_buf);
            let service = served_at.elapsed();
            burst_busy += service;
            session.local.busy_time_ns += service.as_nanos() as u64;
            match step {
                SessionStep::Continue => {}
                SessionStep::Close => {
                    let _ = conn.write_all(&write_buf);
                    let _ = conn.flush();
                    return;
                }
                SessionStep::DropAbruptly => {
                    stats.dropped_connections.fetch_add(1, Ordering::Relaxed);
                    // No flush: the migrant sees an EOF mid-stream.
                    return;
                }
            }
        }
        if !write_buf.is_empty() {
            // Reply batching: one write per request burst, so a
            // PrefetchBatch's pages leave back-to-back.
            if conn.write_all(&write_buf).is_err() {
                return;
            }
            if conn.flush().is_err() {
                return;
            }
            write_buf.clear();
        }
        match conn.read(&mut read_buf) {
            Ok(0) => return, // peer closed
            Ok(n) => fb.extend(&read_buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

struct Session {
    total_pages: u64,
    greeted: bool,
    pages_this_conn: u64,
    local: WireStats,
}

enum SessionStep {
    Continue,
    Close,
    DropAbruptly,
}

impl Session {
    fn handle(
        &mut self,
        frame: Frame,
        cfg: &ServerConfig,
        stats: &SharedStats,
        out: &mut Vec<u8>,
    ) -> SessionStep {
        match frame {
            Frame::Hello {
                version,
                total_pages,
                ..
            } => {
                if version != WIRE_VERSION {
                    Frame::Error {
                        code: 426,
                        detail: format!("version {version}, deputy speaks {WIRE_VERSION}"),
                    }
                    .encode_into(out);
                    return SessionStep::Close;
                }
                self.greeted = true;
                self.total_pages = total_pages;
                Frame::HelloAck {
                    version: WIRE_VERSION,
                    page_size: PAGE_SIZE as u32,
                }
                .encode_into(out);
                SessionStep::Continue
            }
            Frame::PageRequest { req_id, pages } | Frame::PrefetchBatch { req_id, pages } => {
                if !self.greeted {
                    Frame::Error {
                        code: 401,
                        detail: "request before hello".into(),
                    }
                    .encode_into(out);
                    return SessionStep::Close;
                }
                if pages.len() as u32 > cfg.max_pages_per_request {
                    Frame::Error {
                        code: 413,
                        detail: format!(
                            "{} pages exceeds per-request cap {}",
                            pages.len(),
                            cfg.max_pages_per_request
                        ),
                    }
                    .encode_into(out);
                    return SessionStep::Close;
                }
                self.local.requests_served += 1;
                stats.requests_served.fetch_add(1, Ordering::Relaxed);
                for page in pages {
                    if page.0 >= self.total_pages {
                        Frame::Error {
                            code: 416,
                            detail: format!("page {page} beyond image ({})", self.total_pages),
                        }
                        .encode_into(out);
                        return SessionStep::Close;
                    }
                    Frame::PageReply {
                        req_id,
                        page,
                        data: page_payload(page),
                    }
                    .encode_into(out);
                    self.local.pages_served += 1;
                    self.pages_this_conn += 1;
                    stats.pages_served.fetch_add(1, Ordering::Relaxed);
                    if let Some(limit) = cfg.drop_after_pages {
                        if self.pages_this_conn >= limit {
                            return SessionStep::DropAbruptly;
                        }
                    }
                }
                SessionStep::Continue
            }
            Frame::SyscallForward { call_id, .. } => {
                // The call's `work` is charged virtually by the migrant;
                // the deputy only provides the round trip.
                stats.syscalls_served.fetch_add(1, Ordering::Relaxed);
                Frame::SyscallReply { call_id }.encode_into(out);
                SessionStep::Continue
            }
            Frame::Ping { token } => {
                stats.pings_served.fetch_add(1, Ordering::Relaxed);
                Frame::Pong { token }.encode_into(out);
                SessionStep::Continue
            }
            Frame::StatsFetch => {
                Frame::StatsReply(self.local).encode_into(out);
                SessionStep::Continue
            }
            Frame::Bye => SessionStep::Close,
            Frame::HelloAck { .. }
            | Frame::PageReply { .. }
            | Frame::SyscallReply { .. }
            | Frame::Pong { .. }
            | Frame::StatsReply(_)
            | Frame::Error { .. } => {
                Frame::Error {
                    code: 400,
                    detail: "deputy received a reply frame".into(),
                }
                .encode_into(out);
                SessionStep::Close
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ephemeral_bind_reports_port() {
        let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        assert!(addr.starts_with("127.0.0.1:"));
        assert!(!addr.ends_with(":0"));
        server.shutdown();
    }

    #[test]
    fn rejects_zero_workers() {
        let cfg = ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        };
        assert!(DeputyServer::bind_tcp("127.0.0.1:0", cfg).is_err());
    }
}
