//! The live calibration handshake.
//!
//! The simulated monitor daemon (§4's modified oM_infoD) estimates the
//! two quantities Eq. 3 needs — the one-way latency `t0` and the page
//! transfer time `td` — from the link model. This module measures the
//! same quantities on a real wire:
//!
//! 1. **RTT probes**: a burst of ping/pong round trips feeds the same
//!    [`RttProber`] EWMA the simulator uses (wall durations mapped onto
//!    the virtual axis 1:1); `t0` is half the smoothed RTT.
//! 2. **Timed bulk fetch**: a batch of page fetches, timed end to end,
//!    gives the effective goodput in wire bytes per second — framing and
//!    protocol headers included, exactly what the simulator's calibrated
//!    `FAST_ETHERNET_GOODPUT` constant represents.
//! 3. `td` then follows as the serialization time of one page reply at
//!    that capacity — the same formula
//!    ([`page_transfer_time`]) the simulator applies to its
//!    `LinkConfig`.
//!
//! The result is a [`MeasuredLink`]; its
//! [`link_config`](MeasuredLink::link_config) parameterises a simulated
//! run of the same experiment, which is how `hpcc-repro live` reports
//! simulated-vs-live divergence.

use std::time::{Duration, Instant};

use ampom_mem::page::PageId;
use ampom_net::calibration::{page_transfer_time, MeasuredLink};
use ampom_net::probe::RttProber;
use ampom_sim::time::{SimDuration, SimTime};

use crate::client::{Endpoint, MigrantClient};
use crate::frame::Frame;
use crate::live::fetch_all;
use crate::RpcError;

/// Calibration handshake parameters.
#[derive(Debug, Clone)]
pub struct CalibrateOptions {
    /// RTT probes to send (EWMA-smoothed; more probes, stabler `t0`).
    pub pings: u32,
    /// Pages in the timed bulk fetch (more pages, stabler capacity).
    pub bulk_pages: u64,
}

impl Default for CalibrateOptions {
    fn default() -> Self {
        CalibrateOptions {
            pings: 16,
            bulk_pages: 256,
        }
    }
}

/// Timeout for one calibration ping.
const PING_TIMEOUT: Duration = Duration::from_secs(5);

/// Dials `endpoint` on a short-lived session and measures the link.
pub fn calibrate_endpoint(
    endpoint: &Endpoint,
    opts: &CalibrateOptions,
) -> Result<MeasuredLink, RpcError> {
    if opts.pings == 0 || opts.bulk_pages == 0 {
        return Err(RpcError::Protocol(
            "calibration needs at least one ping and one bulk page".into(),
        ));
    }
    // The calibration session's address space only has to cover the
    // bulk-fetch page ids; the page contents are synthesized and thrown
    // away, so which pages we fetch is immaterial.
    let mut client = MigrantClient::connect(endpoint.clone(), opts.bulk_pages, 0xff)?;

    let epoch = Instant::now();
    let mut prober = RttProber::new();
    for _ in 0..opts.pings {
        let sent = SimTime::ZERO + sim_duration(epoch.elapsed());
        let id = prober.probe_sent(sent);
        let (rtt, _stray) = client.ping(PING_TIMEOUT)?;
        prober.ack_received(id, sent + sim_duration(rtt));
    }
    let t0 = prober
        .t0()
        .ok_or_else(|| RpcError::Protocol("no calibration probe completed".into()))?
        // A loopback RTT can smooth to zero at nanosecond resolution;
        // the link model needs a strictly positive latency.
        .max(SimDuration::from_nanos(1));

    let pages: Vec<PageId> = (0..opts.bulk_pages).map(PageId).collect();
    let before_bytes = client.bytes_received();
    let before = Instant::now();
    fetch_all(&mut client, &pages)?;
    let elapsed = before.elapsed();
    let wire_bytes = client.bytes_received() - before_bytes;

    let secs = elapsed.as_secs_f64();
    let capacity_bytes_per_sec = if secs > 0.0 {
        ((wire_bytes as f64 / secs) as u64).max(1)
    } else {
        u64::MAX
    };

    let measured = MeasuredLink {
        t0,
        td: page_transfer_time(&ampom_net::link::LinkConfig {
            capacity_bytes_per_sec,
            latency: t0,
        }),
        capacity_bytes_per_sec,
    };
    let _ = client.send(&Frame::Bye);
    Ok(measured)
}

fn sim_duration(d: Duration) -> SimDuration {
    SimDuration::from_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}
