//! Property tests for the simulation substrate.

use ampom_sim::event::EventQueue;
use ampom_sim::propcheck::forall;
use ampom_sim::stats::{Histogram, OnlineStats};
use ampom_sim::time::{SimDuration, SimTime};

#[test]
fn event_queue_pops_sorted_and_stable() {
    forall("queue-sorted-stable", 256, |g| {
        let times = g.vec_u64(0..200, 0..1000);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), times.len());
        // Non-decreasing timestamps; FIFO (ascending payload index) among
        // equal timestamps.
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1);
            }
        }
        // Every payload appears exactly once.
        let mut ids: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..times.len()).collect::<Vec<_>>());
    });
}

#[test]
fn event_queue_clock_is_monotone() {
    forall("queue-clock-monotone", 256, |g| {
        let times = g.vec_u64(1..100, 0..1000);
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            assert_eq!(q.now(), t);
            last = t;
        }
    });
}

#[test]
fn online_stats_match_naive() {
    forall("online-stats-naive", 256, |g| {
        let xs = g.vec(1..500, |g| (g.unit_f64() - 0.5) * 2e6);
        let mut s = OnlineStats::new();
        xs.iter().for_each(|&x| s.record(x));
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        assert!((s.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
        assert_eq!(s.min(), xs.iter().copied().reduce(f64::min));
        assert_eq!(s.max(), xs.iter().copied().reduce(f64::max));
    });
}

#[test]
fn online_stats_merge_any_split() {
    forall("online-stats-merge", 256, |g| {
        let xs = g.vec(2..200, |g| (g.unit_f64() - 0.5) * 2e3);
        let split = g.usize(0..200) % xs.len();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..split].iter().for_each(|&x| a.record(x));
        xs[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    });
}

#[test]
fn histogram_counts_and_quantile_bounds() {
    forall("histogram-quantiles", 256, |g| {
        let values = g.vec_u64(1..500, 0..1_000_000);
        let mut h = Histogram::new();
        values.iter().for_each(|&v| h.record(v));
        assert_eq!(h.count(), values.len() as u64);
        let total: u64 = h.nonempty_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, values.len() as u64);
        // The q-quantile upper bound really bounds the empirical quantile.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &[0.0, 0.5, 0.9, 1.0] {
            let bound = h.quantile_upper_bound(q).unwrap();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let empirical = sorted[rank - 1];
            assert!(bound >= empirical, "q={q}: bound {bound} < {empirical}");
        }
    });
}

#[test]
fn duration_arithmetic_is_consistent() {
    forall("duration-arithmetic", 256, |g| {
        let a = g.u64(0..1_000_000_000);
        let b = g.u64(0..1_000_000_000);
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        assert_eq!((da + db).as_nanos(), a + b);
        assert_eq!(da.max(db).as_nanos(), a.max(b));
        assert_eq!(da.min(db).as_nanos(), a.min(b));
        let t = SimTime::ZERO + da;
        assert_eq!(t.since(SimTime::ZERO), da);
        assert_eq!((t + db).since(t), db);
    });
}

#[test]
fn from_secs_f64_round_trips() {
    forall("secs-f64-round-trip", 256, |g| {
        let ns = g.u64(0..1_000_000_000_000);
        let d = SimDuration::from_nanos(ns);
        let rt = SimDuration::from_secs_f64(d.as_secs_f64());
        // f64 has 52 mantissa bits; allow a proportional error.
        let err = (rt.as_nanos() as i128 - ns as i128).unsigned_abs();
        assert!(err <= 1 + ns as u128 / (1 << 40));
    });
}
