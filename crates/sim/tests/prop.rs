//! Property tests for the simulation substrate.

use ampom_sim::event::EventQueue;
use ampom_sim::stats::{Histogram, OnlineStats};
use ampom_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        // Non-decreasing timestamps; FIFO (ascending payload index) among
        // equal timestamps.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        // Every payload appears exactly once.
        let mut ids: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..times.len()).collect::<Vec<_>>());
    }

    #[test]
    fn event_queue_clock_is_monotone(times in prop::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(q.now(), t);
            last = t;
        }
    }

    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut s = OnlineStats::new();
        xs.iter().for_each(|&x| s.record(x));
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
        prop_assert_eq!(s.min(), xs.iter().copied().reduce(f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().reduce(f64::max));
    }

    #[test]
    fn online_stats_merge_any_split(xs in prop::collection::vec(-1e3f64..1e3, 2..200), split in 0usize..200) {
        let split = split % xs.len();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..split].iter().for_each(|&x| a.record(x));
        xs[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn histogram_counts_and_quantile_bounds(values in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = Histogram::new();
        values.iter().for_each(|&v| h.record(v));
        prop_assert_eq!(h.count(), values.len() as u64);
        let total: u64 = h.nonempty_buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(total, values.len() as u64);
        // The q-quantile upper bound really bounds the empirical quantile.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &[0.0, 0.5, 0.9, 1.0] {
            let bound = h.quantile_upper_bound(q).unwrap();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let empirical = sorted[rank - 1];
            prop_assert!(bound >= empirical, "q={q}: bound {bound} < {empirical}");
        }
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!(da.max(db).as_nanos(), a.max(b));
        prop_assert_eq!(da.min(db).as_nanos(), a.min(b));
        let t = SimTime::ZERO + da;
        prop_assert_eq!(t.since(SimTime::ZERO), da);
        prop_assert_eq!((t + db).since(t), db);
    }

    #[test]
    fn from_secs_f64_round_trips(ns in 0u64..1_000_000_000_000) {
        let d = SimDuration::from_nanos(ns);
        let rt = SimDuration::from_secs_f64(d.as_secs_f64());
        // f64 has 52 mantissa bits; allow a proportional error.
        let err = (rt.as_nanos() as i128 - ns as i128).unsigned_abs();
        prop_assert!(err <= 1 + ns as u128 / (1 << 40));
    }
}
