//! Simulated time.
//!
//! All simulation timestamps are absolute nanoseconds since the start of the
//! run ([`SimTime`]); intervals are [`SimDuration`]. Both are thin `u64`
//! newtypes: cheap to copy, totally ordered, and overflow-checked in debug
//! builds. A `u64` of nanoseconds covers ~584 years of simulated time, far
//! beyond any experiment here (the longest paper run is a few minutes).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds from t=0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since t=0.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since t=0 as a float (for reporting only — never use floats
    /// for scheduling).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so this indicates a scheduling bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is in the future"),
        )
    }

    /// Saturating variant of [`SimTime::since`], clamping to zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty interval.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero — callers
    /// feed this with measured rates that can transiently be garbage.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting and rate arithmetic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Difference of two durations, clamping to zero. For subtracting a
    /// component that is nominally a subset of a measured whole but may
    /// exceed it by wall-clock rounding on the live transport.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_nanos(5).as_nanos(), 5);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn time_advances_and_measures() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(150);
        assert_eq!(t1.since(t0), SimDuration::from_micros(150));
        assert_eq!(t1.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_backwards_clock() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_nanos(1);
        let _ = t0.since(t1);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!(a + b, SimDuration::from_micros(14));
        assert_eq!(a - b, SimDuration::from_micros(6));
        assert_eq!(a * 3, SimDuration::from_micros(30));
        assert_eq!(a / 2, SimDuration::from_micros(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
