//! Event tracing.
//!
//! A [`Trace`] records timestamped, labelled events from a simulation run.
//! It backs the Figure 2 migration-timeline reproduction (`hpcc-repro fig2`)
//! and is invaluable when debugging protocol interleavings. Tracing is off
//! by default ([`Trace::disabled`]) and costs one branch per event when off.

use std::fmt;

use crate::time::SimTime;

/// Category of a traced event, mirroring the phases drawn in the paper's
/// Figure 2 timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Migration initiated; process frozen on the original node.
    FreezeBegin,
    /// Process state + initial pages fully transferred; execution resumes.
    FreezeEnd,
    /// A batch of pages sent from the original node.
    PagesSent,
    /// A batch of pages arrived at the destination.
    PagesArrived,
    /// The migrant took a page fault.
    PageFault,
    /// A remote paging / prefetch request was issued.
    PagingRequest,
    /// The migrant resumed after a fault stall.
    FaultResolved,
    /// FFA only: dirty pages flushed to the file server.
    FileServerFlush,
    /// A system call was forwarded to the home node.
    SyscallForwarded,
    /// The workload ran to completion.
    WorkloadDone,
    /// Live transport: a socket connection to the deputy was established
    /// (initial dial or the calibration handshake).
    LiveConnect,
    /// Live transport: a demand request timed out and was resent.
    LiveRetry,
    /// Live transport: the connection was re-dialled after a drop or a
    /// retry-budget exhaustion.
    LiveReconnect,
    /// Free-form annotation.
    Note,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::FreezeBegin => "freeze-begin",
            TraceKind::FreezeEnd => "freeze-end",
            TraceKind::PagesSent => "pages-sent",
            TraceKind::PagesArrived => "pages-arrived",
            TraceKind::PageFault => "page-fault",
            TraceKind::PagingRequest => "paging-request",
            TraceKind::FaultResolved => "fault-resolved",
            TraceKind::FileServerFlush => "file-server-flush",
            TraceKind::SyscallForwarded => "syscall-forwarded",
            TraceKind::WorkloadDone => "workload-done",
            TraceKind::LiveConnect => "live-connect",
            TraceKind::LiveRetry => "live-retry",
            TraceKind::LiveReconnect => "live-reconnect",
            TraceKind::Note => "note",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When the event happened on the simulated clock.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Human-readable detail (page ranges, byte counts, …).
    pub detail: String,
}

/// A bounded, optionally-disabled event recorder.
#[derive(Debug)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Default cap on retained events; enough for any single migration
    /// timeline while bounding memory on multi-minute runs.
    pub const DEFAULT_CAPACITY: usize = 100_000;

    /// An enabled trace with the default capacity.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            capacity: Self::DEFAULT_CAPACITY,
            dropped: 0,
        }
    }

    /// An enabled trace retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            capacity,
            dropped: 0,
        }
    }

    /// A disabled trace: `record` is a no-op.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
            capacity: 0,
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled; drops when at capacity).
    pub fn record(&mut self, at: SimTime, kind: TraceKind, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            at,
            kind,
            detail: detail.into(),
        });
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind, in order.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The first event of `kind`, if any.
    pub fn first_of(&self, kind: TraceKind) -> Option<&TraceEvent> {
        self.of_kind(kind).next()
    }

    /// Number of events dropped after hitting capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the trace as an aligned text timeline (Figure 2 style).
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>14}  {:<18} {}\n",
                format!("{:.6}s", e.at.as_secs_f64()),
                e.kind.to_string(),
                e.detail
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("... ({} events dropped)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn records_in_order_and_filters() {
        let mut tr = Trace::enabled();
        let t0 = SimTime::ZERO;
        tr.record(t0, TraceKind::FreezeBegin, "pid 1");
        tr.record(
            t0 + SimDuration::from_millis(1),
            TraceKind::PagesSent,
            "3 pages",
        );
        tr.record(t0 + SimDuration::from_millis(2), TraceKind::FreezeEnd, "");
        assert_eq!(tr.events().len(), 3);
        assert_eq!(tr.of_kind(TraceKind::PagesSent).count(), 1);
        assert_eq!(tr.first_of(TraceKind::FreezeBegin).unwrap().detail, "pid 1");
        assert!(tr.first_of(TraceKind::PageFault).is_none());
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.record(SimTime::ZERO, TraceKind::Note, "ignored");
        assert!(tr.events().is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut tr = Trace::with_capacity(2);
        for i in 0..5 {
            tr.record(SimTime::from_nanos(i), TraceKind::Note, "x");
        }
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.dropped(), 3);
        assert!(tr.render_timeline().contains("3 events dropped"));
    }

    #[test]
    fn timeline_renders_every_event() {
        let mut tr = Trace::enabled();
        tr.record(SimTime::ZERO, TraceKind::FreezeBegin, "start");
        tr.record(
            SimTime::ZERO + SimDuration::from_secs(1),
            TraceKind::WorkloadDone,
            "done",
        );
        let text = tr.render_timeline();
        assert!(text.contains("freeze-begin"));
        assert!(text.contains("workload-done"));
        assert!(text.contains("1.000000s"));
    }
}
