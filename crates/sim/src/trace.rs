//! Event tracing.
//!
//! A [`Trace`] records timestamped, structured events from a simulation run.
//! It backs the Figure 2 migration-timeline reproduction (`hpcc-repro fig2`),
//! the `hpcc-repro profile` phase report, and is invaluable when debugging
//! protocol interleavings. Tracing is off by default ([`Trace::disabled`])
//! and costs one branch per event when off.
//!
//! Payloads are typed ([`TraceData`]): the quantities a policy decision
//! depends on — page id, zone size `N`, score `S`, paging rate `r`, RTT
//! sample, retry count — travel as plain numbers, not pre-rendered strings.
//! That keeps the hot fault path allocation-free (building a `TraceData` of
//! numeric fields is a handful of register moves) and lets consumers filter
//! and aggregate without parsing. Sites that want a free-form annotation use
//! [`Trace::record_with`], whose closure only runs when the trace is live.

use std::fmt;

use crate::time::SimTime;

/// Category of a traced event, mirroring the phases drawn in the paper's
/// Figure 2 timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Migration initiated; process frozen on the original node.
    FreezeBegin,
    /// Process state + initial pages fully transferred; execution resumes.
    FreezeEnd,
    /// A batch of pages sent from the original node.
    PagesSent,
    /// A batch of pages arrived at the destination.
    PagesArrived,
    /// The migrant took a page fault.
    PageFault,
    /// A remote paging / prefetch request was issued.
    PagingRequest,
    /// The migrant resumed after a fault stall.
    FaultResolved,
    /// FFA only: dirty pages flushed to the file server.
    FileServerFlush,
    /// A system call was forwarded to the home node.
    SyscallForwarded,
    /// The workload ran to completion.
    WorkloadDone,
    /// One adaptive-zone analysis: the inputs and output of Eq. 3 for a
    /// single fault (score `S`, rate `r`, raw and budgeted zone size `N`).
    ZoneAnalysis,
    /// The Eq. 1 spatial score exceeded 1.0 before clamping — a
    /// repeated-page window that would otherwise be silently normalized.
    ScoreClamped,
    /// Live transport: a socket connection to the deputy was established
    /// (initial dial or the calibration handshake).
    LiveConnect,
    /// Live transport: a demand request timed out and was resent.
    LiveRetry,
    /// Live transport: the connection was re-dialled after a drop or a
    /// retry-budget exhaustion.
    LiveReconnect,
    /// Live transport: an overloaded deputy shed prefetch pages (a
    /// non-fatal 503) and the client reverted them to the origin.
    LiveShed,
    /// A writeback delta batch left the migrant for the home node.
    WritebackFlush,
    /// A writeback batch (or its ack) was presumed lost and resent.
    WritebackRetransmit,
    /// The home-return migration froze the process on the remote node.
    ReturnFreeze,
    /// Pages that never left the home node (or whose contents were
    /// written back) became resident for free after the return.
    PagesFreedAtHome,
    /// Free-form annotation.
    Note,
}

impl TraceKind {
    /// The stable kebab-case name used in timelines and JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::FreezeBegin => "freeze-begin",
            TraceKind::FreezeEnd => "freeze-end",
            TraceKind::PagesSent => "pages-sent",
            TraceKind::PagesArrived => "pages-arrived",
            TraceKind::PageFault => "page-fault",
            TraceKind::PagingRequest => "paging-request",
            TraceKind::FaultResolved => "fault-resolved",
            TraceKind::FileServerFlush => "file-server-flush",
            TraceKind::SyscallForwarded => "syscall-forwarded",
            TraceKind::WorkloadDone => "workload-done",
            TraceKind::ZoneAnalysis => "zone-analysis",
            TraceKind::ScoreClamped => "score-clamped",
            TraceKind::LiveConnect => "live-connect",
            TraceKind::LiveRetry => "live-retry",
            TraceKind::LiveReconnect => "live-reconnect",
            TraceKind::LiveShed => "live-shed",
            TraceKind::WritebackFlush => "writeback-flush",
            TraceKind::WritebackRetransmit => "writeback-retransmit",
            TraceKind::ReturnFreeze => "return-freeze",
            TraceKind::PagesFreedAtHome => "pages-freed-at-home",
            TraceKind::Note => "note",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Structured payload of one traced event.
///
/// Every field is optional; an event carries exactly the quantities its
/// site knows. All-numeric payloads allocate nothing, so hot paths (one
/// event per page fault) stay cheap even with tracing on, and cost one
/// branch with it off.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// The page the event concerns.
    pub page: Option<u64>,
    /// A page count (batch size, prefetch zone length, …).
    pub pages: Option<u64>,
    /// A byte count (transfer sizes).
    pub bytes: Option<u64>,
    /// The applied zone budget `N` after rounding and clamping.
    pub zone: Option<u64>,
    /// The spatial score `S` (post-clamp).
    pub score: Option<f64>,
    /// An unclamped raw value backing `score` or `zone` (Eq. 1 raw sum,
    /// Eq. 3 raw `N`).
    pub raw: Option<f64>,
    /// The paging rate `r` in faults/second.
    pub rate: Option<f64>,
    /// A round-trip-time sample in nanoseconds.
    pub rtt_ns: Option<u64>,
    /// A retry attempt count.
    pub retry: Option<u64>,
    /// Free-form annotation. The only allocating field — prefer
    /// [`Trace::record_with`] when attaching one on a hot path.
    pub note: Option<String>,
}

impl TraceData {
    /// An empty payload.
    pub fn empty() -> Self {
        TraceData::default()
    }

    /// A payload carrying just a page id.
    pub fn page(page: u64) -> Self {
        TraceData {
            page: Some(page),
            ..TraceData::default()
        }
    }

    /// A payload carrying just a page count.
    pub fn pages(pages: u64) -> Self {
        TraceData {
            pages: Some(pages),
            ..TraceData::default()
        }
    }

    /// A payload carrying just a note.
    pub fn note(note: impl Into<String>) -> Self {
        TraceData {
            note: Some(note.into()),
            ..TraceData::default()
        }
    }

    /// Sets the page id.
    pub fn with_page(mut self, page: u64) -> Self {
        self.page = Some(page);
        self
    }

    /// Sets the page count.
    pub fn with_pages(mut self, pages: u64) -> Self {
        self.pages = Some(pages);
        self
    }

    /// Sets the byte count.
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = Some(bytes);
        self
    }

    /// Sets the applied zone budget.
    pub fn with_zone(mut self, zone: u64) -> Self {
        self.zone = Some(zone);
        self
    }

    /// Sets the spatial score.
    pub fn with_score(mut self, score: f64) -> Self {
        self.score = Some(score);
        self
    }

    /// Sets the raw (unclamped) value.
    pub fn with_raw(mut self, raw: f64) -> Self {
        self.raw = Some(raw);
        self
    }

    /// Sets the paging rate.
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = Some(rate);
        self
    }

    /// Sets the RTT sample.
    pub fn with_rtt_ns(mut self, rtt_ns: u64) -> Self {
        self.rtt_ns = Some(rtt_ns);
        self
    }

    /// Sets the retry count.
    pub fn with_retry(mut self, retry: u64) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Sets the note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// True when no field is set.
    pub fn is_empty(&self) -> bool {
        *self == TraceData::default()
    }
}

impl fmt::Display for TraceData {
    /// Renders set fields as `key=value` pairs; the note trails verbatim.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        let mut put = |f: &mut fmt::Formatter<'_>, s: fmt::Arguments<'_>| -> fmt::Result {
            f.write_str(sep)?;
            sep = " ";
            f.write_fmt(s)
        };
        if let Some(v) = self.page {
            put(f, format_args!("page={v}"))?;
        }
        if let Some(v) = self.pages {
            put(f, format_args!("pages={v}"))?;
        }
        if let Some(v) = self.bytes {
            put(f, format_args!("bytes={v}"))?;
        }
        if let Some(v) = self.zone {
            put(f, format_args!("zone={v}"))?;
        }
        if let Some(v) = self.score {
            put(f, format_args!("score={v:.4}"))?;
        }
        if let Some(v) = self.raw {
            put(f, format_args!("raw={v:.4}"))?;
        }
        if let Some(v) = self.rate {
            put(f, format_args!("rate={v:.1}"))?;
        }
        if let Some(v) = self.rtt_ns {
            put(f, format_args!("rtt_ns={v}"))?;
        }
        if let Some(v) = self.retry {
            put(f, format_args!("retry={v}"))?;
        }
        if let Some(v) = &self.note {
            put(f, format_args!("{v}"))?;
        }
        Ok(())
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When the event happened on the simulated clock.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Structured detail (page ids, zone sizes, scores, …).
    pub data: TraceData,
}

/// A bounded, optionally-disabled event recorder.
#[derive(Debug)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Default cap on retained events; enough for any single migration
    /// timeline while bounding memory on multi-minute runs.
    pub const DEFAULT_CAPACITY: usize = 100_000;

    /// An enabled trace with the default capacity.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            capacity: Self::DEFAULT_CAPACITY,
            dropped: 0,
        }
    }

    /// An enabled trace retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            capacity,
            dropped: 0,
        }
    }

    /// A disabled trace: `record` is a no-op.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
            capacity: 0,
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled; drops when at capacity).
    pub fn record(&mut self, at: SimTime, kind: TraceKind, data: TraceData) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent { at, kind, data });
    }

    /// Records an event whose payload is built lazily: `make` runs only
    /// when the trace is enabled and below capacity. Use this for payloads
    /// that allocate (notes), so a disabled trace stays strictly one
    /// branch per event.
    pub fn record_with(&mut self, at: SimTime, kind: TraceKind, make: impl FnOnce() -> TraceData) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            at,
            kind,
            data: make(),
        });
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind, in order.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The first event of `kind`, if any.
    pub fn first_of(&self, kind: TraceKind) -> Option<&TraceEvent> {
        self.of_kind(kind).next()
    }

    /// Number of events dropped after hitting capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the trace as an aligned text timeline (Figure 2 style).
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>14}  {:<18} {}\n",
                format!("{:.6}s", e.at.as_secs_f64()),
                e.kind.to_string(),
                e.data
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("... ({} events dropped)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn records_in_order_and_filters() {
        let mut tr = Trace::enabled();
        let t0 = SimTime::ZERO;
        tr.record(t0, TraceKind::FreezeBegin, TraceData::note("pid 1"));
        tr.record(
            t0 + SimDuration::from_millis(1),
            TraceKind::PagesSent,
            TraceData::pages(3),
        );
        tr.record(
            t0 + SimDuration::from_millis(2),
            TraceKind::FreezeEnd,
            TraceData::empty(),
        );
        assert_eq!(tr.events().len(), 3);
        assert_eq!(tr.of_kind(TraceKind::PagesSent).count(), 1);
        assert_eq!(
            tr.first_of(TraceKind::FreezeBegin).unwrap().data.note,
            Some("pid 1".to_string())
        );
        assert_eq!(
            tr.first_of(TraceKind::PagesSent).unwrap().data.pages,
            Some(3)
        );
        assert!(tr.first_of(TraceKind::PageFault).is_none());
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.record(SimTime::ZERO, TraceKind::Note, TraceData::note("ignored"));
        tr.record_with(SimTime::ZERO, TraceKind::Note, || {
            panic!("payload closure must not run on a disabled trace")
        });
        assert!(tr.events().is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut tr = Trace::with_capacity(2);
        for i in 0..5 {
            tr.record(SimTime::from_nanos(i), TraceKind::Note, TraceData::empty());
        }
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.dropped(), 3);
        assert!(tr.render_timeline().contains("3 events dropped"));
    }

    #[test]
    fn timeline_renders_every_event() {
        let mut tr = Trace::enabled();
        tr.record(
            SimTime::ZERO,
            TraceKind::FreezeBegin,
            TraceData::note("start"),
        );
        tr.record(
            SimTime::ZERO + SimDuration::from_secs(1),
            TraceKind::WorkloadDone,
            TraceData::empty(),
        );
        let text = tr.render_timeline();
        assert!(text.contains("freeze-begin"));
        assert!(text.contains("workload-done"));
        assert!(text.contains("1.000000s"));
    }

    #[test]
    fn structured_payload_renders_key_value_pairs() {
        let data = TraceData::page(42)
            .with_zone(16)
            .with_score(0.953_21)
            .with_rate(1234.56)
            .with_rtt_ns(250_000)
            .with_retry(2);
        let text = data.to_string();
        assert_eq!(
            text,
            "page=42 zone=16 score=0.9532 rate=1234.6 rtt_ns=250000 retry=2"
        );
        assert!(TraceData::empty().to_string().is_empty());
        assert!(TraceData::empty().is_empty());
        assert!(!data.is_empty());
    }

    #[test]
    fn lazy_record_runs_closure_only_when_live() {
        let mut tr = Trace::with_capacity(1);
        tr.record_with(SimTime::ZERO, TraceKind::Note, || TraceData::note("first"));
        // At capacity: the closure must not run, only the drop counter moves.
        tr.record_with(SimTime::ZERO, TraceKind::Note, || {
            panic!("payload closure must not run past capacity")
        });
        assert_eq!(tr.events().len(), 1);
        assert_eq!(tr.dropped(), 1);
    }
}
