//! The future-event list.
//!
//! [`EventQueue`] is a min-heap keyed on `(SimTime, sequence)`: events fire
//! in timestamp order, and events scheduled for the *same* instant fire in
//! the order they were scheduled (FIFO). The tie-break matters — the remote
//! paging protocol frequently enqueues a fault reply and a prefetch batch
//! for the same nanosecond, and the paper's Algorithm 1 depends on arrival
//! order being the send order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// One scheduled entry. Ordered for a **max**-heap, so comparisons are
/// reversed to give min-heap behaviour.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest time (then lowest sequence) is the "greatest".
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list for a discrete-event simulation.
///
/// The queue tracks the current simulated time: [`EventQueue::pop`] advances
/// the clock to the popped event's timestamp. Scheduling an event in the
/// past is a logic error and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at t=0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current simulated time.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: now={:?} at={at:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the simulation has run dry.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Scheduled { at, payload, .. } = self.heap.pop()?;
        debug_assert!(at >= self.now, "event queue produced a time reversal");
        self.now = at;
        Some((at, payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Drops every pending event (used when a run finishes early).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// One planned outage: the node is down over `[down_at, up_at)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Instant the node crashes (inclusive).
    pub down_at: SimTime,
    /// Instant the node is back up (exclusive — the node answers at
    /// `up_at` itself).
    pub up_at: SimTime,
}

/// A scheduled crash/restart timetable for one node.
///
/// This is the deterministic stand-in for a node's MTBF process: outages
/// are fixed on the simulated timeline before the run starts, so a run
/// with a downtime schedule is exactly as reproducible as one without.
/// The empty schedule means "never fails" and costs one comparison per
/// query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DowntimeSchedule {
    outages: Vec<Outage>,
}

impl DowntimeSchedule {
    /// A schedule from a list of outages.
    ///
    /// Outages must be well-formed (`down_at < up_at`), sorted by
    /// `down_at`, and non-overlapping — otherwise "is the node down at t"
    /// has no single answer.
    pub fn new(outages: Vec<Outage>) -> Result<Self, String> {
        for o in &outages {
            if o.down_at >= o.up_at {
                return Err(format!(
                    "outage ends at {:?} before it starts at {:?}",
                    o.up_at, o.down_at
                ));
            }
        }
        for w in outages.windows(2) {
            if w[1].down_at < w[0].up_at {
                return Err(format!(
                    "outage starting at {:?} overlaps the one ending at {:?}",
                    w[1].down_at, w[0].up_at
                ));
            }
        }
        Ok(DowntimeSchedule { outages })
    }

    /// A schedule with a single outage over `[down_at, up_at)`.
    ///
    /// # Panics
    /// Panics if `down_at >= up_at`.
    pub fn single(down_at: SimTime, up_at: SimTime) -> Self {
        DowntimeSchedule::new(vec![Outage { down_at, up_at }]).expect("invalid outage window")
    }

    /// True if the schedule has no outages.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// The planned outages, in order.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// True if the node is down at instant `t`.
    pub fn is_down(&self, t: SimTime) -> bool {
        self.outages.iter().any(|o| o.down_at <= t && t < o.up_at)
    }

    /// The earliest instant `>= t` at which the node is up — `t` itself
    /// when the node is already up.
    pub fn next_up(&self, t: SimTime) -> SimTime {
        match self.outages.iter().find(|o| o.down_at <= t && t < o.up_at) {
            Some(o) => o.up_at,
            None => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_micros(7));
        assert_eq!(q.now(), t);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), 1u32);
        q.pop();
        q.schedule_in(SimDuration::from_nanos(50), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_nanos(150));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), ());
        q.pop();
        q.schedule(SimTime::from_nanos(50), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn empty_schedule_is_always_up() {
        let s = DowntimeSchedule::default();
        assert!(s.is_empty());
        assert!(!s.is_down(SimTime::ZERO));
        assert!(!s.is_down(SimTime::from_nanos(u64::MAX / 2)));
        assert_eq!(s.next_up(SimTime::from_nanos(42)), SimTime::from_nanos(42));
    }

    #[test]
    fn single_outage_window_is_half_open() {
        let s = DowntimeSchedule::single(SimTime::from_nanos(100), SimTime::from_nanos(200));
        assert!(!s.is_down(SimTime::from_nanos(99)));
        assert!(s.is_down(SimTime::from_nanos(100)));
        assert!(s.is_down(SimTime::from_nanos(199)));
        assert!(!s.is_down(SimTime::from_nanos(200)));
        assert_eq!(
            s.next_up(SimTime::from_nanos(150)),
            SimTime::from_nanos(200)
        );
        assert_eq!(
            s.next_up(SimTime::from_nanos(250)),
            SimTime::from_nanos(250)
        );
    }

    #[test]
    fn multiple_outages_resolve_independently() {
        let s = DowntimeSchedule::new(vec![
            Outage {
                down_at: SimTime::from_nanos(10),
                up_at: SimTime::from_nanos(20),
            },
            Outage {
                down_at: SimTime::from_nanos(50),
                up_at: SimTime::from_nanos(60),
            },
        ])
        .unwrap();
        assert!(s.is_down(SimTime::from_nanos(15)));
        assert!(!s.is_down(SimTime::from_nanos(30)));
        assert!(s.is_down(SimTime::from_nanos(55)));
        assert_eq!(s.next_up(SimTime::from_nanos(55)), SimTime::from_nanos(60));
    }

    #[test]
    fn malformed_schedules_are_rejected() {
        assert!(DowntimeSchedule::new(vec![Outage {
            down_at: SimTime::from_nanos(20),
            up_at: SimTime::from_nanos(20),
        }])
        .is_err());
        assert!(DowntimeSchedule::new(vec![
            Outage {
                down_at: SimTime::from_nanos(10),
                up_at: SimTime::from_nanos(30),
            },
            Outage {
                down_at: SimTime::from_nanos(20),
                up_at: SimTime::from_nanos(40),
            },
        ])
        .is_err());
    }
}
