//! Measurement primitives.
//!
//! Everything the experiment harness reports — freeze times, fault counts,
//! prefetch batch sizes, analysis overhead — flows through these types:
//!
//! * [`Counter`] — a monotonically increasing event count,
//! * [`OnlineStats`] — streaming mean / variance / min / max (Welford),
//! * [`Histogram`] — power-of-two bucketed distribution,
//! * [`TimeSeries`] — `(SimTime, f64)` samples for plotting figures.

use std::fmt;

use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean/variance/extrema via Welford's algorithm.
///
/// Numerically stable for long runs; no sample storage.
#[derive(Debug, Default, Clone, Copy)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram with power-of-two buckets: bucket `k` covers `[2^k, 2^{k+1})`
/// with a dedicated bucket for zero. Suited to latency-like quantities that
/// span several orders of magnitude.
#[derive(Debug, Clone)]
pub struct Histogram {
    zero: u64,
    buckets: [u64; 64],
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            zero: 0,
            buckets: [0; 64],
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        if value == 0 {
            self.zero += 1;
        } else {
            self.buckets[63 - value.leading_zeros() as usize] += 1;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// An upper bound on the `q`-quantile (`q` in `[0, 1]`): the exclusive
    /// top of the bucket containing that rank. Returns `None` if empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.zero;
        if seen >= rank {
            return Some(0);
        }
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if k >= 63 { u64::MAX } else { 1 << (k + 1) });
            }
        }
        Some(u64::MAX)
    }

    /// Iterator over `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        std::iter::once((0, self.zero))
            .chain(
                self.buckets
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| (1u64 << k, c)),
            )
            .filter(|&(_, c)| c > 0)
    }
}

/// A `(time, value)` series for plotting paper figures.
#[derive(Debug, Default, Clone)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Timestamps must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(t >= last, "TimeSeries timestamps must be non-decreasing");
        }
        self.samples.push((t, v));
    }

    /// All samples in order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The final value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Time-weighted average of the series over its recorded span, treating
    /// each value as holding until the next sample. Returns `None` with
    /// fewer than two samples.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let mut area = 0.0;
        for w in self.samples.windows(2) {
            let dt = w[1].0.since(w[0].0).as_secs_f64();
            area += w[0].1 * dt;
        }
        let span = self
            .samples
            .last()
            .unwrap()
            .0
            .since(self.samples[0].0)
            .as_secs_f64();
        (span > 0.0).then(|| area / span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..37].iter().for_each(|&x| a.record(x));
        xs[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 7, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        // zero bucket holds rank 1.
        assert_eq!(h.quantile_upper_bound(0.0), Some(0));
        // the 100 lands in [64,128): upper bound 128.
        assert_eq!(h.quantile_upper_bound(1.0), Some(128));
        let total: u64 = h.nonempty_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn time_series_time_weighted_mean() {
        let mut ts = TimeSeries::new();
        let t0 = SimTime::ZERO;
        ts.push(t0, 10.0);
        ts.push(t0 + SimDuration::from_secs(1), 20.0);
        ts.push(t0 + SimDuration::from_secs(2), 20.0);
        // 10 held for 1s, 20 held for 1s => 15.
        assert!((ts.time_weighted_mean().unwrap() - 15.0).abs() < 1e-12);
        assert_eq!(ts.last_value(), Some(20.0));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_series_rejects_time_reversal() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_nanos(10), 1.0);
        ts.push(SimTime::from_nanos(5), 2.0);
    }
}
