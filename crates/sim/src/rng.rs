//! Deterministic randomness for simulations.
//!
//! Every stochastic element of an experiment (RandomAccess update streams,
//! cross-traffic arrivals, scheduler jitter) draws from a [`SimRng`] seeded
//! from the experiment configuration, so any run can be replayed exactly.
//! [`SimRng`] is a self-contained xoshiro256++ generator (no external
//! crates — the workspace builds offline) and adds the handful of
//! distributions the simulator needs.
//!
//! The implementation mirrors the exact pipeline the repository previously
//! used via `rand::rngs::SmallRng` on 64-bit targets: splitmix64 expansion
//! of the 64-bit seed into the xoshiro256++ state, Lemire widening-multiply
//! rejection sampling for bounded integers, and the 53-bit mantissa mapping
//! for unit-interval floats. Streams are therefore bit-identical to the
//! historical ones for every `(seed, call sequence)` pair.

/// A seeded simulation random source.
///
/// xoshiro256++ (Blackman & Vigna) — small, fast, and not cryptographic,
/// which is exactly right for a simulator. Child generators derived with
/// [`SimRng::fork`] are independent streams keyed by a label, so subsystems
/// can draw randomness without perturbing each other's sequences.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    base_seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit experiment seed.
    ///
    /// The four state words are produced by the splitmix64 sequence of the
    /// seed, per the xoshiro reference initialisation.
    pub fn seed_from_u64(seed: u64) -> Self {
        const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut state = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        SimRng { s, base_seed: seed }
    }

    /// The seed this stream was created from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Derives an independent child stream, keyed by `label`. The child's
    /// sequence depends only on `(base_seed, label)` — not on how many draws
    /// the parent has already made — so forking is order-insensitive.
    pub fn fork(&self, label: u64) -> SimRng {
        // splitmix64 over the (seed, label) pair.
        let mut z = label
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.base_seed.rotate_left(17));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below(0)");
        self.range(0, bound)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range: empty range");
        let span = hi - lo;
        // Lemire widening-multiply with rejection: unbiased, and accepts on
        // the first draw unless the span divides 2^64 unevenly enough for
        // the value to land in the biased zone.
        let zone = (span << span.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let m = (v as u128).wrapping_mul(span as u128);
            let hi_part = (m >> 64) as u64;
            let lo_part = m as u64;
            if lo_part <= zone {
                return lo + hi_part;
            }
        }
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed draw with the given mean (used for Poisson
    /// cross-traffic inter-arrival times). Returns `mean` unchanged for
    /// degenerate (non-positive or non-finite) inputs.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean.is_nan() || mean <= 0.0 || mean == f64::INFINITY {
            return mean;
        }
        let u = 1.0 - self.unit_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Raw 64-bit draw (the xoshiro256++ output function).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector_from_xoshiro_seed_zero() {
        // splitmix64(0) expansion gives the canonical state; the first
        // outputs are fixed for all time. Golden values pin the generator
        // so a refactor can never silently change every experiment.
        let mut r = SimRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0x5317_5D61_490B_23DF,
                0x61DA_6F3D_C380_D507,
                0x5C0F_DF91_EC9A_7BFC,
                0x02EE_BF8C_3BBE_5E1A,
            ]
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially disjoint");
    }

    #[test]
    fn forks_are_independent_of_draw_position() {
        let parent = SimRng::seed_from_u64(7);
        let mut c1 = parent.fork(3);
        let mut drained = SimRng::seed_from_u64(7);
        for _ in 0..10 {
            drained.next_u64();
        }
        let mut c2 = drained.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let parent = SimRng::seed_from_u64(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_the_whole_range() {
        let mut r = SimRng::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_stays_in_interval() {
        let mut r = SimRng::seed_from_u64(21);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_has_roughly_right_mean() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() < mean * 0.05, "mean {got} vs {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(5.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes");
    }
}
