//! Deterministic randomness for simulations.
//!
//! Every stochastic element of an experiment (RandomAccess update streams,
//! cross-traffic arrivals, scheduler jitter) draws from a [`SimRng`] seeded
//! from the experiment configuration, so any run can be replayed exactly.
//! [`SimRng`] wraps a small, fast PRNG and adds the handful of distributions
//! the simulator needs without pulling in heavyweight dependencies.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded simulation random source.
///
/// Wraps [`rand::rngs::SmallRng`] (xoshiro-family, not cryptographic —
/// exactly right for a simulator). Child generators derived with
/// [`SimRng::fork`] are independent streams keyed by a label, so subsystems
/// can draw randomness without perturbing each other's sequences.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    base_seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit experiment seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            base_seed: seed,
        }
    }

    /// The seed this stream was created from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Derives an independent child stream, keyed by `label`. The child's
    /// sequence depends only on `(base_seed, label)` — not on how many draws
    /// the parent has already made — so forking is order-insensitive.
    pub fn fork(&self, label: u64) -> SimRng {
        // splitmix64 over the (seed, label) pair.
        let mut z = label
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.base_seed.rotate_left(17));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below(0)");
        self.inner.gen_range(0..bound)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range: empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed draw with the given mean (used for Poisson
    /// cross-traffic inter-arrival times). Returns `mean` unchanged for
    /// degenerate (non-positive or non-finite) inputs.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean.is_nan() || mean <= 0.0 || mean == f64::INFINITY {
            return mean;
        }
        let u = 1.0 - self.unit_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially disjoint");
    }

    #[test]
    fn forks_are_independent_of_draw_position() {
        let parent = SimRng::seed_from_u64(7);
        let mut c1 = parent.fork(3);
        let mut drained = SimRng::seed_from_u64(7);
        for _ in 0..10 {
            drained.next_u64();
        }
        let mut c2 = drained.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let parent = SimRng::seed_from_u64(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn exponential_has_roughly_right_mean() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() < mean * 0.05, "mean {got} vs {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(5.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes");
    }
}
