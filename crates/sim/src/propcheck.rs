//! A tiny, dependency-free property-check harness.
//!
//! The workspace builds offline, so instead of an external property
//! testing crate the test suites use this: a [`Gen`] wrapper around
//! [`SimRng`] plus [`forall`], a driver that runs a property
//! over many cases with **per-case derived seeds**. Each case forks its
//! RNG from `(suite label, case index)`, so a failure report's case
//! number alone reproduces the inputs — no shrink files on disk, no
//! global state.
//!
//! ```
//! use ampom_sim::propcheck::{forall, Gen};
//!
//! forall("addition-commutes", 64, |g: &mut Gen| {
//!     let a = g.u64(0..1000);
//!     let b = g.u64(0..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Properties signal failure by panicking (plain `assert!` family);
//! `forall` catches the panic, reports the suite label, case index and
//! seed, and re-raises so the test still fails.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::SimRng;

/// Per-case input generator: a seeded [`SimRng`] with convenience
/// samplers for the shapes the suites need.
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// A generator seeded directly (normally created by [`forall`]).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG, for samplers not covered here.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// A uniform `u64` in `range` (half-open; panics on an empty range).
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.rng.below(range.end - range.start)
    }

    /// A uniform `usize` in `range` (half-open).
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.unit_f64()
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A vector of `len ∈ len_range` elements drawn by `f`.
    pub fn vec<T>(&mut self, len_range: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.usize(len_range);
        (0..len).map(|_| f(self)).collect()
    }

    /// A vector of uniform `u64`s, the most common shape in the suites.
    pub fn vec_u64(&mut self, len_range: Range<usize>, value_range: Range<u64>) -> Vec<u64> {
        let r = value_range;
        self.vec(len_range, move |g| g.u64(r.start..r.end))
    }

    /// One element of a non-empty slice, by reference.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "choose from empty slice");
        &options[self.usize(0..options.len())]
    }
}

/// The seed for `case` of the suite named `label` — stable across runs
/// and platforms, so a reported case number is a full repro.
pub fn case_seed(label: &str, case: u64) -> u64 {
    let mut rng = SimRng::seed_from_u64(0x70_72_6F_70); // "prop"
    for b in label.as_bytes() {
        rng = rng.fork(u64::from(*b));
    }
    rng.fork(case).base_seed()
}

/// Runs `property` over `cases` independently seeded [`Gen`]s. On a
/// panic, prints the suite label, case index and seed, then re-raises
/// the panic so the enclosing `#[test]` fails with the original message.
pub fn forall(label: &str, cases: u64, mut property: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = case_seed(label, case);
        let mut gen = Gen::from_seed(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut gen))) {
            eprintln!("propcheck failure: suite '{label}', case {case}/{cases}, seed {seed:#018x}");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_case_and_label() {
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
    }

    #[test]
    fn generators_respect_ranges() {
        forall("gen-ranges", 128, |g| {
            let v = g.u64(10..20);
            assert!((10..20).contains(&v));
            let xs = g.vec_u64(0..24, 0..40);
            assert!(xs.len() < 24);
            assert!(xs.iter().all(|&x| x < 40));
            let u = g.unit_f64();
            assert!((0.0..1.0).contains(&u));
        });
    }

    #[test]
    fn failures_propagate() {
        let result = std::panic::catch_unwind(|| {
            forall("always-fails", 8, |_| panic!("intended"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn cases_are_reproducible() {
        let mut first = Vec::new();
        forall("repro", 16, |g| first.push(g.u64(0..1_000_000)));
        let mut second = Vec::new();
        forall("repro", 16, |g| second.push(g.u64(0..1_000_000)));
        assert_eq!(first, second);
    }
}
