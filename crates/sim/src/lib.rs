//! # ampom-sim — discrete-event simulation engine
//!
//! The substrate every other crate in this workspace runs on. The AMPoM
//! paper's results are entirely determined by *when* pages move across a
//! network and *how long* a migrated process stalls waiting for them, so we
//! reproduce the system as a deterministic discrete-event simulation (DES)
//! instead of a Linux 2.4 kernel patch (see `DESIGN.md` §2).
//!
//! This crate provides the domain-agnostic pieces:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — nanosecond-resolution
//!   simulated clock arithmetic,
//! * [`event::EventQueue`] — a stable (FIFO within equal timestamps)
//!   priority queue of future events,
//! * [`rng::SimRng`] — a seeded random source so every experiment is
//!   bit-for-bit reproducible,
//! * [`stats`] — counters, online mean/variance, histograms and time series
//!   used by the measurement harness,
//! * [`trace`] — an optional event trace used to render the Figure 2
//!   migration timelines,
//! * [`propcheck`] — a tiny in-tree property-check harness (seeded,
//!   dependency-free) used by every crate's property suites.
//!
//! ## Quick example
//!
//! ```
//! use ampom_sim::event::EventQueue;
//! use ampom_sim::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(5), "second");
//! q.schedule(SimTime::ZERO, "first");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (SimTime::ZERO, "first"));
//! ```

pub mod event;
pub mod propcheck;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
