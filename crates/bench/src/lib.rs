//! # ampom-bench — benchmark support
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `algorithm` — microbenchmarks of the AMPoM analysis path (window
//!   record, stride census, Eq. 1 score, Eq. 3 zone sizing, full
//!   `on_fault`), grounding the Figure 11 overhead model,
//! * `figures` — one Criterion group per paper figure, running reduced
//!   problem sizes so `cargo bench` completes in minutes,
//! * `ablations` — the design-choice sweeps DESIGN.md calls out (baseline
//!   read-ahead on/off, lookback window length, `dmax`, prefetch cap).
//!
//! This library module only hosts shared helpers.

use ampom_core::migration::Scheme;
use ampom_core::runner::{run_workload, RunConfig};
use ampom_core::RunReport;
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::{build_kernel, Kernel};

/// Runs one reduced-size cell for benchmarking (4 MB by default keeps a
/// single run under ~10 ms).
pub fn bench_cell(kernel: Kernel, memory_mb: u64, scheme: Scheme) -> RunReport {
    let size = ProblemSize {
        problem: 0,
        memory_mb,
    };
    let mut w = build_kernel(kernel, &size, 42);
    run_workload(w.as_mut(), &RunConfig::new(scheme))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_cell_is_usable() {
        let r = bench_cell(Kernel::Stream, 4, Scheme::Ampom);
        assert!(r.total_time.as_nanos() > 0);
    }
}
