//! # ampom-bench — benchmark support
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `algorithm` — microbenchmarks of the AMPoM analysis path (window
//!   record, stride census, Eq. 1 score, Eq. 3 zone sizing, full
//!   `on_fault`), grounding the Figure 11 overhead model,
//! * `figures` — one group per paper figure, running reduced problem
//!   sizes so `cargo bench` completes in minutes,
//! * `ablations` — the design-choice sweeps DESIGN.md calls out (baseline
//!   read-ahead on/off, lookback window length, `dmax`, prefetch cap).
//!
//! The workspace builds offline, so instead of an external benchmark
//! crate the benches run on the [`Harness`] here: a small self-timing
//! loop (warm-up, then `samples` timed iterations) that prints a
//! min/mean/max table per group. The binaries accept the conventional
//! `cargo bench` arguments — a positional substring filter plus the
//! `--bench` flag Cargo appends — and `--samples N` to trade precision
//! for wall-clock.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

use ampom_core::experiment::Experiment;
use ampom_core::migration::Scheme;
use ampom_core::RunReport;
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::Kernel;

/// Seed shared by every bench workload (the harness' matrix seed).
pub const BENCH_SEED: u64 = 42;

/// Runs one reduced-size cell for benchmarking (4 MB by default keeps a
/// single run under ~10 ms).
pub fn bench_cell(kernel: Kernel, memory_mb: u64, scheme: Scheme) -> RunReport {
    let size = ProblemSize {
        problem: 0,
        memory_mb,
    };
    Experiment::new(scheme)
        .kernel(kernel, size)
        .workload_seed(BENCH_SEED)
        .run()
        .expect("bench cell is a valid experiment")
}

/// One timed benchmark's summary statistics.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/id` label.
    pub name: String,
    /// Timed iterations.
    pub samples: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean over all iterations.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The self-timing bench runner: owns the CLI filter, the default sample
/// count and the collected [`Measurement`]s.
pub struct Harness {
    filter: Option<String>,
    samples: usize,
    results: Vec<Measurement>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            filter: None,
            samples: 20,
            results: Vec::new(),
        }
    }
}

impl Harness {
    /// A harness configured from `std::env::args()`: a positional
    /// substring filter, `--samples N`, and the ignored `--bench` flag
    /// Cargo passes to bench binaries.
    pub fn from_args() -> Self {
        let mut h = Harness::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--quiet" => {}
                "--samples" => {
                    h.samples = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--samples requires a number");
                }
                other if !other.starts_with('-') => {
                    h.filter = Some(other.to_string());
                }
                other => {
                    eprintln!("ignoring unknown bench option {other}");
                }
            }
        }
        h
    }

    /// Opens a named group of related benches.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            samples: None,
        }
    }

    /// Times `f` (after one warm-up call) and records/prints the result.
    fn run_one<R>(&mut self, name: String, samples: usize, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        black_box(f());
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        let m = Measurement {
            name,
            samples,
            min,
            mean: total / samples as u32,
            max,
        };
        println!(
            "{:<44} {:>12} {:>12} {:>12}  ({} samples)",
            m.name,
            human(m.min),
            human(m.mean),
            human(m.max),
            m.samples
        );
        self.results.push(m);
    }

    /// Prints the closing summary; call once at the end of `main`.
    pub fn finish(self) {
        println!("\n{} benchmarks timed.", self.results.len());
    }
}

/// A named group of benches sharing a sample-count override.
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
    samples: Option<usize>,
}

impl Group<'_> {
    /// Overrides the harness' default sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n);
        self
    }

    /// Times one bench, labelled `group/id`.
    pub fn bench<R>(&mut self, id: &str, f: impl FnMut() -> R) {
        let samples = self.samples.unwrap_or(self.harness.samples);
        let name = format!("{}/{}", self.name, id);
        self.harness.run_one(name, samples, f);
    }

    /// Ends the group (for call-site symmetry; dropping works too).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_cell_is_usable() {
        let r = bench_cell(Kernel::Stream, 4, Scheme::Ampom);
        assert!(r.total_time.as_nanos() > 0);
    }

    #[test]
    fn harness_times_and_filters() {
        let mut h = Harness {
            filter: Some("keep".into()),
            samples: 3,
            results: Vec::new(),
        };
        let mut g = h.group("g");
        g.bench("keep-me", || 1 + 1);
        g.bench("skip-me", || 2 + 2);
        g.finish();
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].name, "g/keep-me");
        assert_eq!(h.results[0].samples, 3);
        assert!(h.results[0].min <= h.results[0].mean);
        assert!(h.results[0].mean <= h.results[0].max);
    }
}
