//! Microbenchmarks of the AMPoM analysis path.
//!
//! Figure 11's claim is that the dependent-zone analysis costs well under
//! 0.6% of execution time. Our simulator charges a fixed
//! `AMPOM_ANALYSIS_COST` (2 µs) per fault; these benches measure what the
//! *actual Rust implementation* costs per invocation so the constant can
//! be sanity-checked (it comes out in the hundreds of nanoseconds on a
//! modern core, i.e. the 2 µs P4-era charge is conservative).

use ampom_bench::{black_box, Harness};
use ampom_core::census::census;
use ampom_core::prefetcher::{AmpomConfig, AmpomPrefetcher, NetEstimates};
use ampom_core::score::spatial_score;
use ampom_core::window::LookbackWindow;
use ampom_core::zone::{dependent_zone_size, select_zone, ZoneSizeInputs};
use ampom_mem::page::PageId;
use ampom_sim::time::{SimDuration, SimTime};

fn bench_window_record(h: &mut Harness) {
    let mut g = h.group("window");
    let mut w = LookbackWindow::new(20);
    let mut i = 0u64;
    g.bench("record", || {
        i += 1;
        w.record(PageId(black_box(i)), SimTime::from_nanos(i * 1000), 1.0)
    });
    g.finish();
}

fn bench_census(h: &mut Harness) {
    // Three representative window contents.
    let sequential: Vec<u64> = (100..120).collect();
    let interleaved: Vec<u64> = (0..20)
        .map(|i| {
            if i % 2 == 0 {
                1000 + i / 2
            } else {
                5000 + i / 2
            }
        })
        .collect();
    let random: Vec<u64> = (0..20).map(|i| (i * 104_729 + 13) % 1_000_000).collect();

    let mut g = h.group("census");
    g.bench("sequential", || census(black_box(&sequential), 4));
    g.bench("interleaved", || census(black_box(&interleaved), 4));
    g.bench("random", || census(black_box(&random), 4));
    g.finish();
}

fn bench_score_and_zone(h: &mut Harness) {
    let pages: Vec<u64> = (100..120).collect();
    let cen = census(&pages, 4);
    let mut g = h.group("score");
    g.bench("eq1", || spatial_score(black_box(&cen)));
    g.finish();

    let inputs = ZoneSizeInputs {
        spatial_score: 0.33,
        paging_rate: 40_000.0,
        mean_cpu: 0.8,
        next_cpu: 0.9,
        t0: SimDuration::from_micros(120),
        td: SimDuration::from_micros(392),
    };
    let mut g = h.group("zone");
    g.bench("eq3", || dependent_zone_size(black_box(&inputs)));
    g.bench("select_128", || {
        select_zone(
            black_box(&cen.outstanding),
            128,
            PageId(119),
            PageId(1_000_000),
        )
    });
    g.finish();
}

fn bench_full_analysis(h: &mut Harness) {
    // The complete per-fault path of Algorithm 1's analysis lines — the
    // quantity AMPOM_ANALYSIS_COST models.
    let mut g = h.group("prefetcher");
    let mut pf = AmpomPrefetcher::new(AmpomConfig::default());
    let net = NetEstimates {
        t0: SimDuration::from_micros(120),
        td: SimDuration::from_micros(392),
    };
    let mut i = 0u64;
    g.bench("on_fault", || {
        i += 1;
        pf.on_fault(
            PageId(black_box(i)),
            SimTime::from_nanos(i * 20_000),
            0.9,
            net,
            PageId(10_000_000),
            |_| true,
        )
    });
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_window_record(&mut h);
    bench_census(&mut h);
    bench_score_and_zone(&mut h);
    bench_full_analysis(&mut h);
    h.finish();
}
