//! Microbenchmarks of the AMPoM analysis path.
//!
//! Figure 11's claim is that the dependent-zone analysis costs well under
//! 0.6% of execution time. Our simulator charges a fixed
//! `AMPOM_ANALYSIS_COST` (2 µs) per fault; these benches measure what the
//! *actual Rust implementation* costs per invocation so the constant can
//! be sanity-checked (it comes out in the hundreds of nanoseconds on a
//! modern core, i.e. the 2 µs P4-era charge is conservative).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ampom_core::census::census;
use ampom_core::prefetcher::{AmpomConfig, AmpomPrefetcher, NetEstimates};
use ampom_core::score::spatial_score;
use ampom_core::window::LookbackWindow;
use ampom_core::zone::{dependent_zone_size, select_zone, ZoneSizeInputs};
use ampom_mem::page::PageId;
use ampom_sim::time::{SimDuration, SimTime};

fn bench_window_record(c: &mut Criterion) {
    c.bench_function("window/record", |b| {
        let mut w = LookbackWindow::new(20);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            w.record(
                PageId(black_box(i)),
                SimTime::from_nanos(i * 1000),
                1.0,
            )
        });
    });
}

fn bench_census(c: &mut Criterion) {
    // Three representative window contents.
    let sequential: Vec<u64> = (100..120).collect();
    let interleaved: Vec<u64> = (0..20)
        .map(|i| if i % 2 == 0 { 1000 + i / 2 } else { 5000 + i / 2 })
        .collect();
    let random: Vec<u64> = (0..20).map(|i| (i * 104_729 + 13) % 1_000_000).collect();

    let mut g = c.benchmark_group("census");
    g.bench_function("sequential", |b| {
        b.iter(|| census(black_box(&sequential), 4))
    });
    g.bench_function("interleaved", |b| {
        b.iter(|| census(black_box(&interleaved), 4))
    });
    g.bench_function("random", |b| b.iter(|| census(black_box(&random), 4)));
    g.finish();
}

fn bench_score_and_zone(c: &mut Criterion) {
    let pages: Vec<u64> = (100..120).collect();
    let cen = census(&pages, 4);
    c.bench_function("score/eq1", |b| b.iter(|| spatial_score(black_box(&cen))));

    let inputs = ZoneSizeInputs {
        spatial_score: 0.33,
        paging_rate: 40_000.0,
        mean_cpu: 0.8,
        next_cpu: 0.9,
        t0: SimDuration::from_micros(120),
        td: SimDuration::from_micros(392),
    };
    c.bench_function("zone/eq3", |b| {
        b.iter(|| dependent_zone_size(black_box(&inputs)))
    });
    c.bench_function("zone/select_128", |b| {
        b.iter(|| {
            select_zone(
                black_box(&cen.outstanding),
                128,
                PageId(119),
                PageId(1_000_000),
            )
        })
    });
}

fn bench_full_analysis(c: &mut Criterion) {
    // The complete per-fault path of Algorithm 1's analysis lines — the
    // quantity AMPOM_ANALYSIS_COST models.
    c.bench_function("prefetcher/on_fault", |b| {
        let mut pf = AmpomPrefetcher::new(AmpomConfig::default());
        let net = NetEstimates {
            t0: SimDuration::from_micros(120),
            td: SimDuration::from_micros(392),
        };
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            pf.on_fault(
                PageId(black_box(i)),
                SimTime::from_nanos(i * 20_000),
                0.9,
                net,
                PageId(10_000_000),
                |_| true,
            )
        });
    });
}

criterion_group!(
    benches,
    bench_window_record,
    bench_census,
    bench_score_and_zone,
    bench_full_analysis
);
criterion_main!(benches);
