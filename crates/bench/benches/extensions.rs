//! Benchmarks of the extension subsystems: VM migration, the cluster
//! balancer, round-trip migration and memory pressure.

use ampom_bench::Harness;
use ampom_cluster::{simulate, BalancePolicy, ClusterConfig};
use ampom_core::experiment::Experiment;
use ampom_core::migration::Scheme;
use ampom_core::remigration::run_round_trip;
use ampom_core::vm::{run_vm, VmAnalysis, VmWorkload};
use ampom_sim::time::SimDuration;
use ampom_workloads::synthetic::Sequential;
use ampom_workloads::Workload;

fn vm_bench(h: &mut Harness) {
    let mut g = h.group("ext_vm");
    g.sample_size(10);
    let cfg = Experiment::new(Scheme::Ampom).config().clone();
    for guests in [2usize, 6] {
        for mode in [VmAnalysis::SharedWindow, VmAnalysis::PerProcess] {
            let id = format!("{}guests/{}", guests, mode.name());
            g.bench(&id, || {
                let procs: Vec<Box<dyn Workload>> = (0..guests)
                    .map(|_| {
                        Box::new(Sequential::new(200, SimDuration::from_micros(15)))
                            as Box<dyn Workload>
                    })
                    .collect();
                let vm = VmWorkload::new(procs, 1);
                run_vm(vm, &cfg, mode).report.total_time
            });
        }
    }
    g.finish();
}

fn cluster_bench(h: &mut Harness) {
    let mut g = h.group("ext_cluster");
    g.sample_size(10);
    for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
        g.bench(scheme.name(), || {
            let mut cfg = ClusterConfig::standard(BalancePolicy::Aggressive, scheme);
            cfg.nodes = 8;
            cfg.jobs = 20;
            simulate(&cfg).makespan
        });
    }
    g.finish();
}

fn roundtrip_bench(h: &mut Harness) {
    let mut g = h.group("ext_roundtrip");
    g.sample_size(10);
    for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
        let cfg = Experiment::new(scheme).config().clone();
        g.bench(scheme.name(), || {
            let mut w = Sequential::new(1024, SimDuration::from_micros(15));
            run_round_trip(&mut w, &cfg, 0.5).total_time
        });
    }
    g.finish();
}

fn pressure_bench(h: &mut Harness) {
    let mut g = h.group("ext_pressure");
    g.sample_size(10);
    for limit in [None, Some(1u64)] {
        let id = limit.map_or("unlimited".to_string(), |l| format!("{l}MB"));
        let mut exp = Experiment::new(Scheme::Ampom).sequential(1024, SimDuration::from_micros(15));
        if let Some(l) = limit {
            exp = exp.resident_limit_mb(l);
        }
        g.bench(&id, || {
            exp.run()
                .expect("pressure bench experiment is valid")
                .pages_evicted
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    vm_bench(&mut h);
    cluster_bench(&mut h);
    roundtrip_bench(&mut h);
    pressure_bench(&mut h);
    h.finish();
}
