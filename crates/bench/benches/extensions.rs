//! Benchmarks of the extension subsystems: VM migration, the cluster
//! balancer, round-trip migration and memory pressure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ampom_cluster::{simulate, BalancePolicy, ClusterConfig};
use ampom_core::migration::Scheme;
use ampom_core::remigration::run_round_trip;
use ampom_core::runner::{run_workload, RunConfig};
use ampom_core::vm::{run_vm, VmAnalysis, VmWorkload};
use ampom_sim::time::SimDuration;
use ampom_workloads::synthetic::Sequential;
use ampom_workloads::Workload;

fn vm_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_vm");
    g.sample_size(10);
    for guests in [2usize, 6] {
        for mode in [VmAnalysis::SharedWindow, VmAnalysis::PerProcess] {
            let id = format!("{}guests/{}", guests, mode.name());
            g.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(guests, mode),
                |b, &(guests, mode)| {
                    b.iter(|| {
                        let procs: Vec<Box<dyn Workload>> = (0..guests)
                            .map(|_| {
                                Box::new(Sequential::new(200, SimDuration::from_micros(15)))
                                    as Box<dyn Workload>
                            })
                            .collect();
                        let vm = VmWorkload::new(procs, 1);
                        run_vm(vm, &RunConfig::new(Scheme::Ampom), mode)
                            .report
                            .total_time
                    });
                },
            );
        }
    }
    g.finish();
}

fn cluster_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_cluster");
    g.sample_size(10);
    for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut cfg =
                        ClusterConfig::standard(BalancePolicy::Aggressive, scheme);
                    cfg.nodes = 8;
                    cfg.jobs = 20;
                    simulate(&cfg).makespan
                });
            },
        );
    }
    g.finish();
}

fn roundtrip_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_roundtrip");
    g.sample_size(10);
    for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut w = Sequential::new(1024, SimDuration::from_micros(15));
                    run_round_trip(&mut w, &RunConfig::new(scheme), 0.5).total_time
                });
            },
        );
    }
    g.finish();
}

fn pressure_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_pressure");
    g.sample_size(10);
    for limit in [None, Some(1u64)] {
        let id = limit.map_or("unlimited".to_string(), |l| format!("{l}MB"));
        g.bench_with_input(BenchmarkId::from_parameter(id), &limit, |b, &limit| {
            b.iter(|| {
                let mut w = Sequential::new(1024, SimDuration::from_micros(15));
                let mut cfg = RunConfig::new(Scheme::Ampom);
                cfg.resident_limit_mb = limit;
                run_workload(&mut w, &cfg).pages_evicted
            });
        });
    }
    g.finish();
}

criterion_group!(benches, vm_bench, cluster_bench, roundtrip_bench, pressure_bench);
criterion_main!(benches);
