//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each group varies exactly one AMPoM knob and reports the resulting run
//! (the interesting output is the measured fault/prefetch counts, printed
//! once per configuration before timing). All runs are composed through
//! the [`Experiment`] builder.

use ampom_bench::{Harness, BENCH_SEED};
use ampom_core::experiment::{Experiment, WorkloadSpec};
use ampom_core::migration::Scheme;
use ampom_core::prefetcher::AmpomConfig;
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::Kernel;

const BENCH_MB: u64 = 4;

fn run_with(kernel: Kernel, ampom: AmpomConfig) -> ampom_core::RunReport {
    let size = ProblemSize {
        problem: 0,
        memory_mb: BENCH_MB,
    };
    Experiment::new(Scheme::Ampom)
        .kernel(kernel, size)
        .workload_seed(BENCH_SEED)
        .ampom(ampom)
        .run()
        .expect("ablation experiment is valid")
}

/// Baseline read-ahead on/off: the knob that gives RandomAccess its 85%+
/// fault prevention (paper §5.3's "baseline of prefetching aggressiveness").
fn ablate_baseline_readahead(h: &mut Harness) {
    let mut g = h.group("ablate_baseline_readahead");
    g.sample_size(10);
    for baseline in [0u64, 8, 16, 32] {
        let cfg = AmpomConfig {
            baseline_readahead: baseline,
            ..AmpomConfig::default()
        };
        let r = run_with(Kernel::RandomAccess, cfg.clone());
        eprintln!(
            "RandomAccess baseline={baseline}: {} fault requests, {} prefetched",
            r.fault_requests, r.pages_prefetched
        );
        g.bench(&baseline.to_string(), || {
            run_with(Kernel::RandomAccess, cfg.clone()).fault_requests
        });
    }
    g.finish();
}

/// Lookback window length `l` (paper uses 20 and admits it is arbitrary).
fn ablate_window_length(h: &mut Harness) {
    let mut g = h.group("ablate_window_length");
    g.sample_size(10);
    for l in [8usize, 20, 40, 80] {
        let cfg = AmpomConfig {
            window_len: l,
            ..AmpomConfig::default()
        };
        let r = run_with(Kernel::Stream, cfg.clone());
        eprintln!(
            "STREAM l={l}: {} fault requests, overhead {:.4}%",
            r.fault_requests,
            r.analysis_overhead_fraction() * 100.0
        );
        g.bench(&l.to_string(), || {
            run_with(Kernel::Stream, cfg.clone()).total_time
        });
    }
    g.finish();
}

/// Maximum analysed stride `dmax` (paper argues 4 suffices because
/// programs rarely exceed two-level indirection). Uses three interleaved
/// sequential lanes (positional stride 3): detectable iff dmax ≥ 3, so
/// the knife edge is visible.
fn ablate_dmax(h: &mut Harness) {
    let mut g = h.group("ablate_dmax");
    g.sample_size(10);
    let run_interleaved = |dmax: usize| {
        Experiment::new(Scheme::Ampom)
            .workload(WorkloadSpec::Interleaved {
                streams: 3,
                stream_pages: 340,
                cpu: ampom_sim::time::SimDuration::from_micros(15),
            })
            .ampom(AmpomConfig {
                dmax,
                baseline_readahead: 0,
                ..AmpomConfig::default()
            })
            .run()
            .expect("dmax ablation experiment is valid")
    };
    for dmax in [1usize, 2, 4, 8] {
        let r = run_interleaved(dmax);
        eprintln!(
            "3 interleaved lanes, dmax={dmax}: {} fault requests, mean S {:.3}",
            r.fault_requests,
            r.prefetch_stats.scores.mean()
        );
        g.bench(&dmax.to_string(), || run_interleaved(dmax).fault_requests);
    }
    g.finish();
}

/// Zone cap: how far the congestion feedback may inflate one request.
fn ablate_zone_cap(h: &mut Harness) {
    let mut g = h.group("ablate_zone_cap");
    g.sample_size(10);
    for cap in [32u64, 128, 512, 2048] {
        let cfg = AmpomConfig {
            max_zone: cap,
            ..AmpomConfig::default()
        };
        let r = run_with(Kernel::Stream, cfg.clone());
        eprintln!(
            "STREAM cap={cap}: {} fault requests, total {:.3}s",
            r.fault_requests,
            r.total_time.as_secs_f64()
        );
        g.bench(&cap.to_string(), || {
            run_with(Kernel::Stream, cfg.clone()).total_time
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    ablate_baseline_readahead(&mut h);
    ablate_window_length(&mut h);
    ablate_dmax(&mut h);
    ablate_zone_cap(&mut h);
    h.finish();
}
