//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each group varies exactly one AMPoM knob and reports the resulting run
//! (the interesting output is the measured fault/prefetch counts, printed
//! once per configuration before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ampom_core::migration::Scheme;
use ampom_core::prefetcher::AmpomConfig;
use ampom_core::runner::{run_workload, RunConfig};
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::{build_kernel, Kernel};

const BENCH_MB: u64 = 4;

fn run_with(kernel: Kernel, ampom: AmpomConfig) -> ampom_core::RunReport {
    let size = ProblemSize {
        problem: 0,
        memory_mb: BENCH_MB,
    };
    let mut w = build_kernel(kernel, &size, 42);
    let mut cfg = RunConfig::new(Scheme::Ampom);
    cfg.ampom = ampom;
    run_workload(w.as_mut(), &cfg)
}

/// Baseline read-ahead on/off: the knob that gives RandomAccess its 85%+
/// fault prevention (paper §5.3's "baseline of prefetching aggressiveness").
fn ablate_baseline_readahead(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_baseline_readahead");
    g.sample_size(10);
    for baseline in [0u64, 8, 16, 32] {
        let cfg = AmpomConfig {
            baseline_readahead: baseline,
            ..AmpomConfig::default()
        };
        let r = run_with(Kernel::RandomAccess, cfg.clone());
        eprintln!(
            "RandomAccess baseline={baseline}: {} fault requests, {} prefetched",
            r.fault_requests, r.pages_prefetched
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(baseline),
            &cfg,
            |b, cfg| {
                b.iter(|| run_with(Kernel::RandomAccess, cfg.clone()).fault_requests)
            },
        );
    }
    g.finish();
}

/// Lookback window length `l` (paper uses 20 and admits it is arbitrary).
fn ablate_window_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_window_length");
    g.sample_size(10);
    for l in [8usize, 20, 40, 80] {
        let cfg = AmpomConfig {
            window_len: l,
            ..AmpomConfig::default()
        };
        let r = run_with(Kernel::Stream, cfg.clone());
        eprintln!(
            "STREAM l={l}: {} fault requests, overhead {:.4}%",
            r.fault_requests,
            r.analysis_overhead_fraction() * 100.0
        );
        g.bench_with_input(BenchmarkId::from_parameter(l), &cfg, |b, cfg| {
            b.iter(|| run_with(Kernel::Stream, cfg.clone()).total_time)
        });
    }
    g.finish();
}

/// Maximum analysed stride `dmax` (paper argues 4 suffices because
/// programs rarely exceed two-level indirection). Uses three interleaved
/// sequential lanes (positional stride 3): detectable iff dmax ≥ 3, so
/// the knife edge is visible.
fn ablate_dmax(c: &mut Criterion) {
    use ampom_workloads::synthetic::Interleaved;
    let mut g = c.benchmark_group("ablate_dmax");
    g.sample_size(10);
    let run_interleaved = |dmax: usize| {
        let mut w =
            Interleaved::new(3, 340, ampom_sim::time::SimDuration::from_micros(15));
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.ampom = AmpomConfig {
            dmax,
            baseline_readahead: 0,
            ..AmpomConfig::default()
        };
        run_workload(&mut w, &cfg)
    };
    for dmax in [1usize, 2, 4, 8] {
        let r = run_interleaved(dmax);
        eprintln!(
            "3 interleaved lanes, dmax={dmax}: {} fault requests, mean S {:.3}",
            r.fault_requests,
            r.prefetch_stats.scores.mean()
        );
        g.bench_with_input(BenchmarkId::from_parameter(dmax), &dmax, |b, &dmax| {
            b.iter(|| run_interleaved(dmax).fault_requests)
        });
    }
    g.finish();
}

/// Zone cap: how far the congestion feedback may inflate one request.
fn ablate_zone_cap(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_zone_cap");
    g.sample_size(10);
    for cap in [32u64, 128, 512, 2048] {
        let cfg = AmpomConfig {
            max_zone: cap,
            ..AmpomConfig::default()
        };
        let r = run_with(Kernel::Stream, cfg.clone());
        eprintln!(
            "STREAM cap={cap}: {} fault requests, total {:.3}s",
            r.fault_requests,
            r.total_time.as_secs_f64()
        );
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cfg, |b, cfg| {
            b.iter(|| run_with(Kernel::Stream, cfg.clone()).total_time)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_baseline_readahead,
    ablate_window_length,
    ablate_dmax,
    ablate_zone_cap
);
criterion_main!(benches);
