//! One Criterion group per paper figure.
//!
//! Each group runs the same code path as the `hpcc-repro` harness at a
//! reduced problem size (the full Table 1 sizes take ~40 s per sweep; a
//! benchmark iteration must be milliseconds). Throughput ratios between
//! schemes — who wins and by what factor — match the full-size runs; the
//! absolute simulated times are printed by `hpcc-repro`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ampom_bench::bench_cell;
use ampom_core::migration::{perform_freeze, PreMigrationState, Scheme};
use ampom_core::runner::{run_workload, RunConfig};
use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_net::calibration::{broadband, fast_ethernet};
use ampom_sim::trace::Trace;
use ampom_workloads::dgemm::DgemmSmallWs;
use ampom_workloads::Kernel;

const BENCH_MB: u64 = 4;

/// Figure 5: the freeze phase alone, per scheme.
fn fig5_freeze(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_freeze");
    for scheme in Scheme::EVALUATED {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                let layout = MemoryLayout::with_data_bytes(BENCH_MB * 1024 * 1024);
                let allocated: Vec<PageId> = layout.data_pages().iter().collect();
                b.iter(|| {
                    let pre = PreMigrationState::new(layout.clone(), allocated.clone());
                    let mut path = ampom_core::cluster::NetPath::new(fast_ethernet());
                    let mut trace = Trace::disabled();
                    perform_freeze(scheme, &pre, &mut path, &mut trace).freeze_time
                });
            },
        );
    }
    g.finish();
}

/// Figures 6 and 7: a full run per (kernel, scheme); total time and fault
/// counts come from the same execution.
fn fig6_fig7_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_fig7_execution");
    g.sample_size(10);
    for kernel in Kernel::ALL {
        for scheme in Scheme::EVALUATED {
            let id = format!("{}/{}", kernel.name(), scheme.name());
            g.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(kernel, scheme),
                |b, &(kernel, scheme)| {
                    b.iter(|| bench_cell(kernel, BENCH_MB, scheme).total_time);
                },
            );
        }
    }
    g.finish();
}

/// Figure 8: the AMPoM run per kernel (prefetch statistics).
fn fig8_prefetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_prefetch");
    g.sample_size(10);
    for kernel in Kernel::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    let r = bench_cell(kernel, BENCH_MB, Scheme::Ampom);
                    (r.pages_prefetched, r.fault_requests)
                });
            },
        );
    }
    g.finish();
}

/// Figure 9: AMPoM on the LAN vs the shaped broadband link.
fn fig9_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_network");
    g.sample_size(10);
    for (label, link) in [("100Mbps", fast_ethernet()), ("6Mbps", broadband())] {
        for kernel in [Kernel::Dgemm, Kernel::RandomAccess] {
            let id = format!("{}/{}", kernel.name(), label);
            g.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(kernel, link),
                |b, &(kernel, link)| {
                    b.iter(|| {
                        let size = ampom_workloads::sizes::ProblemSize {
                            problem: 0,
                            memory_mb: BENCH_MB,
                        };
                        let mut w = ampom_workloads::build_kernel(kernel, &size, 42);
                        run_workload(
                            w.as_mut(),
                            &RunConfig::new(Scheme::Ampom).with_link(link),
                        )
                        .total_time
                    });
                },
            );
        }
    }
    g.finish();
}

/// Figure 10: small working sets, openMosix vs AMPoM.
fn fig10_working_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_working_set");
    g.sample_size(10);
    for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
        for ws_mb in [1u64, 2, 4] {
            let id = format!("{}/ws{}MB", scheme.name(), ws_mb);
            g.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(scheme, ws_mb),
                |b, &(scheme, ws_mb)| {
                    b.iter(|| {
                        let mut w =
                            DgemmSmallWs::new(4 * 1024 * 1024, ws_mb * 1024 * 1024);
                        run_workload(&mut w, &RunConfig::new(scheme)).total_time
                    });
                },
            );
        }
    }
    g.finish();
}

/// Figure 11: the AMPoM run's analysis overhead accounting.
fn fig11_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_overhead");
    g.sample_size(10);
    for kernel in Kernel::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    bench_cell(kernel, BENCH_MB, Scheme::Ampom)
                        .analysis_overhead_fraction()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    fig5_freeze,
    fig6_fig7_execution,
    fig8_prefetch,
    fig9_network,
    fig10_working_set,
    fig11_overhead
);
criterion_main!(benches);
