//! One bench group per paper figure.
//!
//! Each group runs the same code path as the `hpcc-repro` harness at a
//! reduced problem size (the full Table 1 sizes take ~40 s per sweep; a
//! benchmark iteration must be milliseconds). Throughput ratios between
//! schemes — who wins and by what factor — match the full-size runs; the
//! absolute simulated times are printed by `hpcc-repro`. Every workload
//! run goes through the [`Experiment`] API, same as the harness.

use ampom_bench::{bench_cell, Harness, BENCH_SEED};
use ampom_core::experiment::{Experiment, WorkloadSpec};
use ampom_core::migration::{perform_freeze, PreMigrationState, Scheme};
use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_net::calibration::{broadband, fast_ethernet};
use ampom_sim::trace::Trace;
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::Kernel;

const BENCH_MB: u64 = 4;

/// Figure 5: the freeze phase alone, per scheme.
fn fig5_freeze(h: &mut Harness) {
    let mut g = h.group("fig5_freeze");
    for scheme in Scheme::EVALUATED {
        let layout = MemoryLayout::with_data_bytes(BENCH_MB * 1024 * 1024);
        let allocated: Vec<PageId> = layout.data_pages().iter().collect();
        g.bench(scheme.name(), || {
            let pre = PreMigrationState::new(layout.clone(), allocated.clone());
            let mut path = ampom_core::cluster::NetPath::new(fast_ethernet());
            let mut trace = Trace::disabled();
            perform_freeze(scheme, &pre, &mut path, &mut trace).freeze_time
        });
    }
    g.finish();
}

/// Figures 6 and 7: a full run per (kernel, scheme); total time and fault
/// counts come from the same execution.
fn fig6_fig7_execution(h: &mut Harness) {
    let mut g = h.group("fig6_fig7_execution");
    g.sample_size(10);
    for kernel in Kernel::ALL {
        for scheme in Scheme::EVALUATED {
            let id = format!("{}/{}", kernel.name(), scheme.name());
            g.bench(&id, || bench_cell(kernel, BENCH_MB, scheme).total_time);
        }
    }
    g.finish();
}

/// Figure 8: the AMPoM run per kernel (prefetch statistics).
fn fig8_prefetch(h: &mut Harness) {
    let mut g = h.group("fig8_prefetch");
    g.sample_size(10);
    for kernel in Kernel::ALL {
        g.bench(kernel.name(), || {
            let r = bench_cell(kernel, BENCH_MB, Scheme::Ampom);
            (r.pages_prefetched, r.fault_requests)
        });
    }
    g.finish();
}

/// Figure 9: AMPoM on the LAN vs the shaped broadband link.
fn fig9_network(h: &mut Harness) {
    let mut g = h.group("fig9_network");
    g.sample_size(10);
    for (label, link) in [("100Mbps", fast_ethernet()), ("6Mbps", broadband())] {
        for kernel in [Kernel::Dgemm, Kernel::RandomAccess] {
            let id = format!("{}/{}", kernel.name(), label);
            let size = ProblemSize {
                problem: 0,
                memory_mb: BENCH_MB,
            };
            let exp = Experiment::new(Scheme::Ampom)
                .kernel(kernel, size)
                .link(link)
                .workload_seed(BENCH_SEED);
            g.bench(&id, || {
                exp.run()
                    .expect("fig9 bench experiment is valid")
                    .total_time
            });
        }
    }
    g.finish();
}

/// Figure 10: small working sets, openMosix vs AMPoM.
fn fig10_working_set(h: &mut Harness) {
    let mut g = h.group("fig10_working_set");
    g.sample_size(10);
    for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
        for ws_mb in [1u64, 2, 4] {
            let id = format!("{}/ws{}MB", scheme.name(), ws_mb);
            let exp = Experiment::new(scheme).workload(WorkloadSpec::DgemmSmallWs {
                alloc_bytes: 4 * 1024 * 1024,
                working_bytes: ws_mb * 1024 * 1024,
            });
            g.bench(&id, || {
                exp.run()
                    .expect("fig10 bench experiment is valid")
                    .total_time
            });
        }
    }
    g.finish();
}

/// Figure 11: the AMPoM run's analysis overhead accounting.
fn fig11_overhead(h: &mut Harness) {
    let mut g = h.group("fig11_overhead");
    g.sample_size(10);
    for kernel in Kernel::ALL {
        g.bench(kernel.name(), || {
            bench_cell(kernel, BENCH_MB, Scheme::Ampom).analysis_overhead_fraction()
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    fig5_freeze(&mut h);
    fig6_fig7_execution(&mut h);
    fig8_prefetch(&mut h);
    fig9_network(&mut h);
    fig10_working_set(&mut h);
    fig11_overhead(&mut h);
    h.finish();
}
