//! Property tests for the network substrate.

use ampom_net::link::{Link, LinkConfig};
use ampom_net::nic::Nic;
use ampom_net::probe::BandwidthEstimator;
use ampom_net::shaper::TrafficShaper;
use ampom_sim::propcheck::{forall, Gen};
use ampom_sim::time::{SimDuration, SimTime};

fn random_link(g: &mut Gen) -> LinkConfig {
    LinkConfig {
        capacity_bytes_per_sec: g.u64(1_000..100_000_000),
        latency: SimDuration::from_micros(g.u64(0..10_000)),
    }
}

#[test]
fn link_is_fifo_and_work_conserving() {
    forall("link-fifo", 256, |g| {
        let cfg = random_link(g);
        let msgs = g.vec(1..100, |g| (g.u64(0..1_000_000), g.u64(1..100_000)));
        let mut link = Link::new(cfg);
        let mut sends: Vec<(SimTime, u64)> = msgs
            .iter()
            .map(|&(t, size)| (SimTime::from_nanos(t), size))
            .collect();
        sends.sort_by_key(|&(t, _)| t);
        let mut last_depart = SimTime::ZERO;
        let mut total_ser = SimDuration::ZERO;
        for &(t, size) in &sends {
            let tx = link.transmit(t, size);
            // FIFO: departures never reorder.
            assert!(tx.departs >= last_depart);
            // Arrival = departure + latency, exactly.
            assert_eq!(tx.arrives, tx.departs + cfg.latency);
            // Work conservation: the message departs no earlier than its
            // own serialization finishing from its send time.
            assert!(tx.departs >= t + cfg.serialization_time(size));
            last_depart = tx.departs;
            total_ser += cfg.serialization_time(size);
        }
        // Busy time is exactly the sum of serializations.
        assert_eq!(link.busy_time(), total_ser);
        assert_eq!(
            link.bytes_carried(),
            sends.iter().map(|&(_, s)| s).sum::<u64>()
        );
    });
}

#[test]
fn serialization_time_is_additive() {
    forall("serialization-additive", 256, |g| {
        let cfg = random_link(g);
        let a = g.u64(0..1_000_000);
        let b = g.u64(0..1_000_000);
        let sa = cfg.serialization_time(a).as_nanos();
        let sb = cfg.serialization_time(b).as_nanos();
        let sab = cfg.serialization_time(a + b).as_nanos();
        // Integer division may lose at most 2 ns across the split.
        assert!(sab >= sa + sb);
        assert!(sab <= sa + sb + 2);
    });
}

#[test]
fn shaper_long_run_rate_never_exceeds_limit() {
    forall("shaper-rate-limit", 256, |g| {
        let rate = g.u64(1_000..10_000_000);
        let burst = g.u64(1..100_000);
        let msgs = g.vec_u64(1..100, 1..50_000);
        let mut shaper = TrafficShaper::new(rate, burst, SimDuration::ZERO);
        // Offer everything at t=0 and measure when the last message
        // conforms: total bytes / elapsed must be ≤ rate once the burst
        // allowance is subtracted.
        let total: u64 = msgs.iter().sum();
        let mut conform_at = SimTime::ZERO;
        for &size in &msgs {
            let d = shaper.delay_for(SimTime::ZERO, size);
            conform_at = conform_at.max(SimTime::ZERO + d);
        }
        let elapsed = conform_at.since(SimTime::ZERO).as_secs_f64();
        if total > burst {
            let expect = (total - burst) as f64 / rate as f64;
            assert!(
                (elapsed - expect).abs() < expect * 0.01 + 1e-6,
                "elapsed {elapsed} vs expected {expect}"
            );
        } else {
            assert_eq!(elapsed, 0.0);
        }
    });
}

#[test]
fn shaped_config_is_idempotent_and_never_faster() {
    forall("shaper-idempotent", 256, |g| {
        let cfg = random_link(g);
        let rate = g.u64(1_000..10_000_000);
        let delay_us = g.u64(0..10_000);
        let s = TrafficShaper::new(rate, 1024, SimDuration::from_micros(delay_us));
        let once = s.shaped_config(&cfg);
        let twice = s.shaped_config(&once);
        assert!(once.capacity_bytes_per_sec <= cfg.capacity_bytes_per_sec);
        assert!(once.latency >= cfg.latency);
        assert_eq!(twice.capacity_bytes_per_sec, once.capacity_bytes_per_sec);
    });
}

#[test]
fn nic_counters_are_monotone() {
    forall("nic-monotone", 256, |g| {
        let ops = g.vec(0..200, |g| (g.bool(0.5), g.u64(0..1_000_000)));
        let mut nic = Nic::new();
        let mut prev = nic.snapshot();
        for &(tx, bytes) in &ops {
            if tx {
                nic.on_transmit(bytes);
            } else {
                nic.on_receive(bytes);
            }
            let cur = nic.snapshot();
            assert!(cur.rx_bytes >= prev.rx_bytes);
            assert!(cur.tx_bytes >= prev.tx_bytes);
            assert_eq!(cur.delta_since(&prev), bytes);
            prev = cur;
        }
    });
}

#[test]
fn bandwidth_estimate_stays_in_physical_range() {
    forall("bandwidth-range", 256, |g| {
        let cap = g.u64(1_000..100_000_000);
        let samples = g.vec(1..50, |g| (g.u64(1..1_000_000), g.u64(0..10_000_000)));
        let mut est = BandwidthEstimator::new(cap);
        let mut now = SimTime::ZERO;
        let mut rx = 0u64;
        for &(dt_us, bytes) in &samples {
            now += SimDuration::from_micros(dt_us);
            rx += bytes;
            let snap = ampom_net::nic::NicSnapshot {
                rx_bytes: rx,
                tx_bytes: 0,
            };
            let avail = est.sample(now, snap, 0);
            assert!(avail <= cap);
            assert!(avail >= cap / 50, "floor is 2% of capacity");
        }
    });
}
