//! The store-and-forward FIFO link.
//!
//! A [`Link`] is a *directed* channel between two nodes with a fixed
//! capacity and propagation latency. Transmissions serialize: a message of
//! `size` bytes occupies the transmitter for `size / capacity`, and messages
//! queue FIFO behind whatever is already in flight. Delivery happens one
//! propagation latency after serialization completes.
//!
//! This is the level of detail the paper's results depend on: the freeze
//! time of an eager migration is the serialization time of every dirty page;
//! a NoPrefetch fault stall is one RTT plus one page serialization; AMPoM's
//! benefit is that prefetched pages serialize back-to-back while the migrant
//! computes (the "pipelining effect" of §5.4).

use ampom_sim::time::{SimDuration, SimTime};

/// A malformed [`LinkConfig`].
///
/// Configs come in from experiment builders and sweep grids; returning a
/// typed error lets those layers reject a bad cell instead of panicking
/// inside a sweep worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// `capacity_bytes_per_sec` was 0 — no byte could ever serialize.
    ZeroCapacity,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::ZeroCapacity => write!(f, "link with zero capacity"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Immutable parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Usable capacity in bytes per second (goodput, not line rate).
    pub capacity_bytes_per_sec: u64,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

impl LinkConfig {
    /// Checks the config for values no simulation could run with.
    pub fn validate(&self) -> Result<(), LinkError> {
        if self.capacity_bytes_per_sec == 0 {
            return Err(LinkError::ZeroCapacity);
        }
        Ok(())
    }

    /// Time to clock `bytes` onto the wire, or an error for a link that
    /// was never valid.
    pub fn try_serialization_time(&self, bytes: u64) -> Result<SimDuration, LinkError> {
        self.validate()?;
        // bytes * 1e9 / capacity, in u128 to avoid overflow for huge bursts.
        let ns = (bytes as u128 * 1_000_000_000u128) / self.capacity_bytes_per_sec as u128;
        Ok(SimDuration::from_nanos(ns as u64))
    }

    /// Time to clock `bytes` onto the wire at this link's capacity.
    ///
    /// # Panics
    /// Panics on a zero-capacity config. Configs are validated at every
    /// construction boundary (`RunConfig::validate`, the sweep builder),
    /// so reaching this is an internal invariant violation; validate
    /// up front with [`LinkConfig::validate`] when handling user input.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        self.try_serialization_time(bytes)
            .expect("link with zero capacity")
    }

    /// Round-trip time of an empty probe (2 × latency); the `2·t0` of Eq. 3.
    pub fn rtt(&self) -> SimDuration {
        self.latency * 2
    }
}

/// The outcome of enqueueing a message on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// When the last byte left the transmitter (the link becomes free).
    pub departs: SimTime,
    /// When the message is delivered at the receiver.
    pub arrives: SimTime,
    /// How long the message waited behind earlier traffic before its first
    /// byte hit the wire.
    pub queued_for: SimDuration,
}

/// A directed FIFO link with serialization and queueing.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    /// Earliest time the transmitter is free.
    free_at: SimTime,
    /// Total bytes ever accepted.
    bytes_carried: u64,
    /// Cumulative time the link spent busy (for utilization reporting).
    busy_time: SimDuration,
}

impl Link {
    /// A new idle link.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            free_at: SimTime::ZERO,
            bytes_carried: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Replaces the link configuration (used by the traffic shaper to model
    /// `tc` being applied to a live interface). In-flight traffic keeps its
    /// old schedule; only subsequent transmissions see the new rate.
    pub fn reconfigure(&mut self, config: LinkConfig) {
        self.config = config;
    }

    /// Enqueues a `size`-byte message at time `now`, returning its
    /// transmission schedule.
    ///
    /// # Panics
    /// Panics if `now` precedes an earlier call's `now` by way of the
    /// FIFO invariant being violated externally (the link itself only
    /// requires `now` monotonicity per sender, which the event loop
    /// guarantees).
    pub fn transmit(&mut self, now: SimTime, size: u64) -> Transmission {
        let start = now.max(self.free_at);
        let ser = self.config.serialization_time(size);
        let departs = start + ser;
        self.free_at = departs;
        self.bytes_carried += size;
        self.busy_time += ser;
        Transmission {
            departs,
            arrives: departs + self.config.latency,
            queued_for: start.since(now),
        }
    }

    /// When the transmitter next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total bytes accepted since creation.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Cumulative serialization (busy) time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Fraction of `[0, now]` the link spent transmitting.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_nanos();
        if span == 0 {
            return 0.0;
        }
        (self.busy_time.as_nanos() as f64 / span as f64).min(1.0)
    }
}

/// A symmetric pair of directed links between two endpoints, as seen from
/// one of them. `forward` carries this endpoint's requests; `reverse`
/// carries the peer's replies.
#[derive(Debug, Clone)]
pub struct DuplexLink {
    /// Local → remote direction.
    pub forward: Link,
    /// Remote → local direction.
    pub reverse: Link,
}

impl DuplexLink {
    /// Builds both directions from one configuration.
    pub fn new(config: LinkConfig) -> Self {
        DuplexLink {
            forward: Link::new(config),
            reverse: Link::new(config),
        }
    }

    /// Applies a new configuration to both directions.
    pub fn reconfigure(&mut self, config: LinkConfig) {
        self.forward.reconfigure(config);
        self.reverse.reconfigure(config);
    }

    /// The round-trip time of an empty probe.
    pub fn rtt(&self) -> SimDuration {
        self.forward.config().latency + self.reverse.config().latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_link() -> Link {
        Link::new(LinkConfig {
            capacity_bytes_per_sec: 1_000_000, // 1 MB/s: 1 byte = 1 µs
            latency: SimDuration::from_micros(100),
        })
    }

    #[test]
    fn serialization_time_scales_with_size() {
        let cfg = *test_link().config();
        assert_eq!(cfg.serialization_time(0), SimDuration::ZERO);
        assert_eq!(cfg.serialization_time(1), SimDuration::from_micros(1));
        assert_eq!(cfg.serialization_time(1000), SimDuration::from_millis(1));
    }

    #[test]
    fn single_message_timing() {
        let mut l = test_link();
        let tx = l.transmit(SimTime::ZERO, 1000);
        assert_eq!(tx.departs, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(
            tx.arrives,
            SimTime::ZERO + SimDuration::from_millis(1) + SimDuration::from_micros(100)
        );
        assert_eq!(tx.queued_for, SimDuration::ZERO);
    }

    #[test]
    fn messages_queue_fifo() {
        let mut l = test_link();
        let a = l.transmit(SimTime::ZERO, 1000);
        let b = l.transmit(SimTime::ZERO, 1000);
        assert_eq!(b.queued_for, SimDuration::from_millis(1));
        assert_eq!(b.departs, a.departs + SimDuration::from_millis(1));
        // Arrivals are back-to-back: pipelining.
        assert_eq!(b.arrives.since(a.arrives), SimDuration::from_millis(1));
    }

    #[test]
    fn idle_gap_resets_queue() {
        let mut l = test_link();
        l.transmit(SimTime::ZERO, 1000);
        let later = SimTime::ZERO + SimDuration::from_secs(1);
        let tx = l.transmit(later, 500);
        assert_eq!(tx.queued_for, SimDuration::ZERO);
        assert_eq!(tx.departs, later + SimDuration::from_micros(500));
    }

    #[test]
    fn counters_accumulate() {
        let mut l = test_link();
        l.transmit(SimTime::ZERO, 300);
        l.transmit(SimTime::ZERO, 700);
        assert_eq!(l.bytes_carried(), 1000);
        assert_eq!(l.busy_time(), SimDuration::from_millis(1));
        let u = l.utilization(SimTime::ZERO + SimDuration::from_millis(2));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reconfigure_affects_only_new_traffic() {
        let mut l = test_link();
        let a = l.transmit(SimTime::ZERO, 1000);
        l.reconfigure(LinkConfig {
            capacity_bytes_per_sec: 2_000_000,
            latency: SimDuration::from_micros(50),
        });
        let b = l.transmit(SimTime::ZERO, 1000);
        assert_eq!(a.departs, SimTime::ZERO + SimDuration::from_millis(1));
        // b queues behind a, then serializes at the new (doubled) rate.
        assert_eq!(b.departs, a.departs + SimDuration::from_micros(500));
        assert_eq!(b.arrives, b.departs + SimDuration::from_micros(50));
    }

    #[test]
    fn duplex_rtt() {
        let d = DuplexLink::new(LinkConfig {
            capacity_bytes_per_sec: 1_000_000,
            latency: SimDuration::from_micros(150),
        });
        assert_eq!(d.rtt(), SimDuration::from_micros(300));
    }

    #[test]
    fn utilization_zero_at_t0() {
        let l = test_link();
        assert_eq!(l.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn zero_capacity_rejected() {
        let cfg = LinkConfig {
            capacity_bytes_per_sec: 0,
            latency: SimDuration::ZERO,
        };
        assert_eq!(cfg.validate(), Err(LinkError::ZeroCapacity));
        assert_eq!(cfg.try_serialization_time(1), Err(LinkError::ZeroCapacity));
        assert_eq!(
            format!("{}", LinkError::ZeroCapacity),
            "link with zero capacity"
        );
    }
}
