//! `tc`/`netem`-style traffic shaping.
//!
//! The paper's §5.5 experiment uses "Linux's iptables and the tc (traffic
//! control) module to simulate a broadband network with available bandwidth
//! of 6 Mb/s and latency of 2 ms". [`TrafficShaper`] reproduces that: it is
//! a token-bucket rate limiter plus an additive delay that can be applied on
//! top of any [`LinkConfig`].
//!
//! Two usage styles are supported:
//!
//! * [`TrafficShaper::shaped_config`] — derive a new [`LinkConfig`] with the
//!   shaped rate and added latency (how the experiment harness emulates the
//!   paper's setup: the shape is in force for the whole run), or
//! * [`TrafficShaper::delay_for`] — compute the token-bucket delay for a
//!   message, for callers that want burst-tolerant shaping on a live link.

use ampom_sim::time::{SimDuration, SimTime};

use crate::link::LinkConfig;

/// A token-bucket traffic shaper with an additive delay stage.
#[derive(Debug, Clone)]
pub struct TrafficShaper {
    /// Sustained rate limit, bytes/s.
    rate_bytes_per_sec: u64,
    /// Bucket depth: how many bytes may burst at line rate.
    burst_bytes: u64,
    /// Extra one-way delay added to every message (netem `delay`).
    added_delay: SimDuration,
    /// Current token level.
    tokens: f64,
    /// Last refill instant.
    last_refill: SimTime,
}

impl TrafficShaper {
    /// Creates a shaper with the given sustained rate, burst allowance and
    /// added delay.
    ///
    /// # Panics
    /// Panics if `rate_bytes_per_sec` is zero.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64, added_delay: SimDuration) -> Self {
        assert!(rate_bytes_per_sec > 0, "shaper rate must be positive");
        TrafficShaper {
            rate_bytes_per_sec,
            burst_bytes,
            added_delay,
            tokens: burst_bytes as f64,
            last_refill: SimTime::ZERO,
        }
    }

    /// The paper's broadband emulation: 6 Mb/s with 2 ms one-way delay and a
    /// 16 KB burst bucket.
    pub fn broadband_6mbps() -> Self {
        TrafficShaper::new(6_000_000 / 8, 16 * 1024, SimDuration::from_millis(2))
    }

    /// The sustained rate in bytes/s.
    pub fn rate_bytes_per_sec(&self) -> u64 {
        self.rate_bytes_per_sec
    }

    /// The additive delay stage.
    pub fn added_delay(&self) -> SimDuration {
        self.added_delay
    }

    /// Derives the [`LinkConfig`] a link shaped by this policy behaves as:
    /// capacity clamped to the shaper rate, latency increased by the added
    /// delay. This matches applying `tc tbf` + `netem delay` to an
    /// interface for the duration of a run.
    pub fn shaped_config(&self, base: &LinkConfig) -> LinkConfig {
        LinkConfig {
            capacity_bytes_per_sec: base.capacity_bytes_per_sec.min(self.rate_bytes_per_sec),
            latency: base.latency + self.added_delay,
        }
    }

    /// Token-bucket admission: returns how long a `size`-byte message must
    /// be delayed at time `now` before it conforms, then charges the bucket.
    /// Includes the additive delay stage.
    pub fn delay_for(&mut self, now: SimTime, size: u64) -> SimDuration {
        // Refill.
        let elapsed = now.saturating_since(self.last_refill).as_secs_f64();
        self.last_refill = self.last_refill.max(now);
        self.tokens =
            (self.tokens + elapsed * self.rate_bytes_per_sec as f64).min(self.burst_bytes as f64);
        let need = size as f64;
        let shortfall = need - self.tokens;
        self.tokens -= need; // may go negative: debt delays later traffic
        let bucket_delay = if shortfall > 0.0 {
            SimDuration::from_secs_f64(shortfall / self.rate_bytes_per_sec as f64)
        } else {
            SimDuration::ZERO
        };
        bucket_delay + self.added_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaped_config_clamps_rate_and_adds_delay() {
        let base = LinkConfig {
            capacity_bytes_per_sec: 11_200_000,
            latency: SimDuration::from_micros(150),
        };
        let s = TrafficShaper::broadband_6mbps();
        let shaped = s.shaped_config(&base);
        assert_eq!(shaped.capacity_bytes_per_sec, 750_000);
        assert_eq!(
            shaped.latency,
            SimDuration::from_micros(150) + SimDuration::from_millis(2)
        );
    }

    #[test]
    fn shaping_never_raises_capacity() {
        let slow = LinkConfig {
            capacity_bytes_per_sec: 1000,
            latency: SimDuration::ZERO,
        };
        let s = TrafficShaper::new(1_000_000, 0, SimDuration::ZERO);
        assert_eq!(s.shaped_config(&slow).capacity_bytes_per_sec, 1000);
    }

    #[test]
    fn bucket_admits_bursts_then_throttles() {
        let mut s = TrafficShaper::new(1000, 500, SimDuration::ZERO);
        // First 500 bytes ride the burst allowance.
        assert_eq!(s.delay_for(SimTime::ZERO, 500), SimDuration::ZERO);
        // The next 500 must wait for tokens: 500 bytes at 1000 B/s = 0.5 s.
        let d = s.delay_for(SimTime::ZERO, 500);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut s = TrafficShaper::new(1000, 500, SimDuration::ZERO);
        assert_eq!(s.delay_for(SimTime::ZERO, 500), SimDuration::ZERO);
        // After one second the bucket is full again (capped at burst).
        let later = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(s.delay_for(later, 500), SimDuration::ZERO);
    }

    #[test]
    fn added_delay_applies_to_conforming_traffic() {
        let mut s = TrafficShaper::new(1_000_000, 1_000_000, SimDuration::from_millis(2));
        assert_eq!(s.delay_for(SimTime::ZERO, 100), SimDuration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = TrafficShaper::new(0, 0, SimDuration::ZERO);
    }
}
