//! Background (cross) traffic generation.
//!
//! AMPoM's Eq. 3 grows the dependent zone "when the network is busy" — the
//! busier the link, the longer `2·t0 + td` and the more pages must be in
//! flight to hide it. To exercise that adaptivity beyond the paper's static
//! `tc` experiment, [`CrossTraffic`] injects Poisson-arriving bursts of
//! foreign bytes onto a link, which both consumes capacity (delaying paging
//! traffic) and shows up in the NIC counters the bandwidth estimator reads.

use ampom_sim::rng::SimRng;
use ampom_sim::time::{SimDuration, SimTime};

/// One injected foreign message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossMessage {
    /// When the message is offered to the link.
    pub at: SimTime,
    /// Its size in bytes.
    pub bytes: u64,
}

/// A Poisson cross-traffic source targeting a mean offered load.
#[derive(Debug)]
pub struct CrossTraffic {
    rng: SimRng,
    mean_interarrival: SimDuration,
    burst_bytes: u64,
    next_at: SimTime,
}

impl CrossTraffic {
    /// Creates a source offering approximately `offered_bytes_per_sec` in
    /// bursts of `burst_bytes`, with exponential inter-arrival times.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(offered_bytes_per_sec: u64, burst_bytes: u64, rng: SimRng) -> Self {
        assert!(offered_bytes_per_sec > 0 && burst_bytes > 0);
        let mean_s = burst_bytes as f64 / offered_bytes_per_sec as f64;
        CrossTraffic {
            rng,
            mean_interarrival: SimDuration::from_secs_f64(mean_s),
            burst_bytes,
            next_at: SimTime::ZERO,
        }
    }

    /// A silent source (never emits). Useful as the default in experiment
    /// configs.
    pub fn silent() -> Self {
        CrossTraffic {
            rng: SimRng::seed_from_u64(0),
            mean_interarrival: SimDuration::ZERO,
            burst_bytes: 0,
            next_at: SimTime::ZERO,
        }
    }

    /// True if this source never emits traffic.
    pub fn is_silent(&self) -> bool {
        self.burst_bytes == 0
    }

    /// Returns every injection scheduled up to and including `until`,
    /// advancing the source's internal clock.
    pub fn drain_until(&mut self, until: SimTime) -> Vec<CrossMessage> {
        let mut out = Vec::new();
        if self.is_silent() {
            return out;
        }
        while self.next_at <= until {
            out.push(CrossMessage {
                at: self.next_at,
                bytes: self.burst_bytes,
            });
            let gap = self
                .rng
                .exponential(self.mean_interarrival.as_secs_f64())
                .max(1e-9);
            self.next_at += SimDuration::from_secs_f64(gap);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_source_emits_nothing() {
        let mut c = CrossTraffic::silent();
        assert!(c.is_silent());
        assert!(c
            .drain_until(SimTime::ZERO + SimDuration::from_secs(100))
            .is_empty());
    }

    #[test]
    fn offered_load_is_approximately_right() {
        let rng = SimRng::seed_from_u64(77);
        let mut c = CrossTraffic::new(1_000_000, 10_000, rng);
        let horizon = SimTime::ZERO + SimDuration::from_secs(50);
        let msgs = c.drain_until(horizon);
        let total: u64 = msgs.iter().map(|m| m.bytes).sum();
        let rate = total as f64 / 50.0;
        assert!(
            (rate - 1_000_000.0).abs() < 150_000.0,
            "offered rate {rate} B/s"
        );
    }

    #[test]
    fn injections_are_time_ordered_and_monotone() {
        let rng = SimRng::seed_from_u64(5);
        let mut c = CrossTraffic::new(500_000, 4096, rng);
        let a = c.drain_until(SimTime::ZERO + SimDuration::from_secs(1));
        let b = c.drain_until(SimTime::ZERO + SimDuration::from_secs(2));
        let all: Vec<_> = a.iter().chain(b.iter()).collect();
        assert!(all.windows(2).all(|w| w[0].at <= w[1].at));
        // Second drain only returns messages after the first horizon.
        assert!(
            b.iter()
                .all(|m| m.at
                    > SimTime::ZERO + SimDuration::from_secs(1) - SimDuration::from_nanos(1))
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || CrossTraffic::new(1_000_000, 8192, SimRng::seed_from_u64(9));
        let h = SimTime::ZERO + SimDuration::from_secs(3);
        let a = mk().drain_until(h);
        let b = mk().drain_until(h);
        assert_eq!(a, b);
    }
}
