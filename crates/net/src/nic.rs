//! Per-node network-interface byte counters.
//!
//! The original oM_infoD estimates available bandwidth "by a comparison of
//! the current and past values of the 'RX/TX bytes' fields outputted by the
//! `/sbin/ifconfig` command" (paper §4). [`Nic`] is the simulated interface
//! those samples come from: every message transmitted or delivered by the
//! cluster model bumps these counters, including cross traffic, so the
//! estimator sees the same aggregate the real daemon would.

/// A snapshot of the RX/TX byte counters at some instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NicSnapshot {
    /// Total bytes ever received.
    pub rx_bytes: u64,
    /// Total bytes ever transmitted.
    pub tx_bytes: u64,
}

impl NicSnapshot {
    /// Bytes moved in either direction since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` has larger counters (counters are monotonic).
    pub fn delta_since(&self, earlier: &NicSnapshot) -> u64 {
        let rx = self
            .rx_bytes
            .checked_sub(earlier.rx_bytes)
            .expect("rx counter went backwards");
        let tx = self
            .tx_bytes
            .checked_sub(earlier.tx_bytes)
            .expect("tx counter went backwards");
        rx + tx
    }
}

/// A simulated network interface with ifconfig-style byte counters and
/// packet counts.
#[derive(Debug, Clone, Default)]
pub struct Nic {
    rx_bytes: u64,
    tx_bytes: u64,
    rx_packets: u64,
    tx_packets: u64,
}

impl Nic {
    /// A fresh interface with zeroed counters.
    pub fn new() -> Self {
        Nic::default()
    }

    /// Accounts one transmitted message.
    pub fn on_transmit(&mut self, bytes: u64) {
        self.tx_bytes += bytes;
        self.tx_packets += 1;
    }

    /// Accounts one received message.
    pub fn on_receive(&mut self, bytes: u64) {
        self.rx_bytes += bytes;
        self.rx_packets += 1;
    }

    /// Current counter values (what `ifconfig` would print).
    pub fn snapshot(&self) -> NicSnapshot {
        NicSnapshot {
            rx_bytes: self.rx_bytes,
            tx_bytes: self.tx_bytes,
        }
    }

    /// Total messages received.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets
    }

    /// Total messages transmitted.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut n = Nic::new();
        n.on_transmit(100);
        n.on_transmit(50);
        n.on_receive(4096);
        let s = n.snapshot();
        assert_eq!(s.tx_bytes, 150);
        assert_eq!(s.rx_bytes, 4096);
        assert_eq!(n.tx_packets(), 2);
        assert_eq!(n.rx_packets(), 1);
    }

    #[test]
    fn delta_sums_both_directions() {
        let mut n = Nic::new();
        let before = n.snapshot();
        n.on_transmit(10);
        n.on_receive(20);
        assert_eq!(n.snapshot().delta_since(&before), 30);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn delta_rejects_reversed_snapshots() {
        let mut n = Nic::new();
        n.on_transmit(10);
        let later = n.snapshot();
        let earlier = NicSnapshot::default();
        let _ = earlier.delta_since(&later);
    }
}
