//! oM_infoD measurement algorithms.
//!
//! The modified information daemon of §4 feeds two network quantities into
//! Eq. 3:
//!
//! * **round-trip time** (`2·t0`) — "found by measuring how long it would
//!   take to receive an acknowledgement from a remote node after a load
//!   update is sent out from the oM_infoD" → [`RttProber`];
//! * **available bandwidth** (behind `td`) — "determined by a comparison of
//!   the current and past values of the 'RX/TX bytes' fields outputted by
//!   the /sbin/ifconfig command … every time when the lookback window is
//!   'looped' once" → [`BandwidthEstimator`].

use ampom_sim::stats::OnlineStats;
use ampom_sim::time::{SimDuration, SimTime};

use crate::nic::NicSnapshot;

/// Measures round-trip time from load-update/acknowledgement pairs,
/// smoothing over recent probes with an exponentially weighted moving
/// average (factor 1/8, as TCP's SRTT does — the daemon needs a stable
/// value, not the last raw sample).
#[derive(Debug, Clone)]
pub struct RttProber {
    srtt: Option<SimDuration>,
    outstanding: Option<(u64, SimTime)>,
    next_probe_id: u64,
    history: OnlineStats,
}

impl Default for RttProber {
    fn default() -> Self {
        Self::new()
    }
}

impl RttProber {
    /// A prober with no measurements yet.
    pub fn new() -> Self {
        RttProber {
            srtt: None,
            outstanding: None,
            next_probe_id: 0,
            history: OnlineStats::new(),
        }
    }

    /// Records that a load-update probe was sent at `now`. Returns the probe
    /// id to correlate with the acknowledgement. Only one probe is tracked
    /// at a time (matching the daemon's periodic load updates); issuing a
    /// new probe abandons an unacknowledged one.
    pub fn probe_sent(&mut self, now: SimTime) -> u64 {
        let id = self.next_probe_id;
        self.next_probe_id += 1;
        self.outstanding = Some((id, now));
        id
    }

    /// Records the acknowledgement for `probe_id` arriving at `now`.
    /// Returns the raw sample if the id matched the outstanding probe.
    pub fn ack_received(&mut self, probe_id: u64, now: SimTime) -> Option<SimDuration> {
        let (id, sent) = self.outstanding?;
        if id != probe_id {
            return None;
        }
        self.outstanding = None;
        let sample = now.since(sent);
        self.history.record(sample.as_secs_f64());
        self.srtt = Some(match self.srtt {
            None => sample,
            Some(prev) => {
                // srtt = 7/8 prev + 1/8 sample, in nanoseconds.
                SimDuration::from_nanos(
                    (prev.as_nanos() / 8).saturating_mul(7) + sample.as_nanos() / 8,
                )
            }
        });
        Some(sample)
    }

    /// The smoothed round-trip estimate, if any probe has completed.
    pub fn rtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The one-way latency estimate `t0` (half the smoothed RTT).
    pub fn t0(&self) -> Option<SimDuration> {
        self.srtt.map(|r| r / 2)
    }

    /// Statistics over all raw samples (seconds).
    pub fn sample_stats(&self) -> &OnlineStats {
        &self.history
    }
}

/// Estimates the bandwidth *available to the migrant* on its NIC.
///
/// Sampled like the original daemon: diff the interface byte counters over
/// the elapsed interval to get the observed traffic rate, subtract the
/// portion that is foreign (not remote-paging traffic), and report what is
/// left of the link capacity. A floor of 2% of capacity keeps `td` finite
/// when the link is saturated (the protocol always gets some share of a
/// congested Ethernet).
#[derive(Debug, Clone)]
pub struct BandwidthEstimator {
    capacity_bytes_per_sec: u64,
    last: Option<(SimTime, NicSnapshot, u64)>,
    estimate: u64,
}

impl BandwidthEstimator {
    /// Creates an estimator for a NIC attached to a link of the given
    /// capacity. Until the first sample the estimate is the full capacity.
    pub fn new(capacity_bytes_per_sec: u64) -> Self {
        assert!(capacity_bytes_per_sec > 0);
        BandwidthEstimator {
            capacity_bytes_per_sec,
            last: None,
            estimate: capacity_bytes_per_sec,
        }
    }

    /// Feeds one sample: the counter snapshot at `now` plus how many of
    /// those bytes were the migrant's own remote-paging traffic
    /// (`own_bytes`, cumulative like the snapshot). Returns the updated
    /// available-bandwidth estimate in bytes/s.
    pub fn sample(&mut self, now: SimTime, snapshot: NicSnapshot, own_bytes: u64) -> u64 {
        if let Some((prev_t, prev_snap, prev_own)) = self.last {
            let dt = now.saturating_since(prev_t).as_secs_f64();
            if dt > 0.0 {
                let total = snapshot.delta_since(&prev_snap) as f64;
                let own = own_bytes.saturating_sub(prev_own) as f64;
                let foreign_rate = ((total - own).max(0.0)) / dt;
                let avail = self.capacity_bytes_per_sec as f64 - foreign_rate;
                let floor = self.capacity_bytes_per_sec as f64 * 0.02;
                self.estimate = avail.max(floor) as u64;
            }
        }
        self.last = Some((now, snapshot, own_bytes));
        self.estimate
    }

    /// The current available-bandwidth estimate, bytes/s.
    pub fn available(&self) -> u64 {
        self.estimate
    }

    /// Estimated time to transfer `bytes` at the available bandwidth — this
    /// is how the daemon derives `td` for Eq. 3.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let secs = bytes as f64 / self.estimate.max(1) as f64;
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_prober_measures_round_trip() {
        let mut p = RttProber::new();
        assert_eq!(p.rtt(), None);
        let id = p.probe_sent(SimTime::ZERO);
        let sample = p
            .ack_received(id, SimTime::ZERO + SimDuration::from_micros(300))
            .unwrap();
        assert_eq!(sample, SimDuration::from_micros(300));
        assert_eq!(p.rtt(), Some(SimDuration::from_micros(300)));
        assert_eq!(p.t0(), Some(SimDuration::from_micros(150)));
    }

    #[test]
    fn rtt_smoothing_converges() {
        let mut p = RttProber::new();
        let mut now = SimTime::ZERO;
        // First sample 1000 µs, then a long run at 200 µs.
        let id = p.probe_sent(now);
        now += SimDuration::from_micros(1000);
        p.ack_received(id, now);
        for _ in 0..60 {
            let id = p.probe_sent(now);
            now += SimDuration::from_micros(200);
            p.ack_received(id, now);
            now += SimDuration::from_millis(10);
        }
        let rtt = p.rtt().unwrap();
        assert!(rtt < SimDuration::from_micros(230), "srtt {rtt} too high");
        assert!(rtt >= SimDuration::from_micros(190));
    }

    #[test]
    fn mismatched_ack_ignored() {
        let mut p = RttProber::new();
        let _ = p.probe_sent(SimTime::ZERO);
        assert!(p
            .ack_received(999, SimTime::ZERO + SimDuration::from_micros(1))
            .is_none());
    }

    #[test]
    fn bandwidth_estimator_subtracts_foreign_traffic() {
        let cap = 10_000_000;
        let mut e = BandwidthEstimator::new(cap);
        assert_eq!(e.available(), cap);
        let t0 = SimTime::ZERO;
        e.sample(t0, NicSnapshot::default(), 0);
        // One second later: 4 MB foreign + 2 MB own moved.
        let snap = NicSnapshot {
            rx_bytes: 5_000_000,
            tx_bytes: 1_000_000,
        };
        let avail = e.sample(t0 + SimDuration::from_secs(1), snap, 2_000_000);
        assert_eq!(avail, cap - 4_000_000);
    }

    #[test]
    fn bandwidth_estimator_floors_at_one_percent() {
        let cap = 1_000_000;
        let mut e = BandwidthEstimator::new(cap);
        e.sample(SimTime::ZERO, NicSnapshot::default(), 0);
        let snap = NicSnapshot {
            rx_bytes: 50_000_000,
            tx_bytes: 0,
        };
        let avail = e.sample(SimTime::ZERO + SimDuration::from_secs(1), snap, 0);
        assert_eq!(avail, cap / 50);
        assert!(e.transfer_time(4096) > SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_uses_estimate() {
        let e = BandwidthEstimator::new(1_000_000);
        assert_eq!(e.transfer_time(1_000_000), SimDuration::from_secs(1));
    }
}
