//! Deterministic fault injection for links.
//!
//! Real openMosix clusters lose frames and suffer queueing jitter; the
//! paper's protocol (§2.2, Algorithm 1) assumes neither. [`FaultPlan`]
//! supplies the missing failure semantics as a *deterministic* stream of
//! per-message fates — drop or deliver-with-extra-delay — drawn from a
//! seeded [`SimRng`]. Seeding the plan from the sweep-cell RNG keeps a
//! parallel sweep bit-identical to a serial one: the fate of the n-th
//! message depends only on `(seed, n)`, never on scheduling order.
//!
//! A zero-fault plan (no loss, no jitter) short-circuits without touching
//! the RNG at all, so wiring a null plan into a run reproduces the
//! fault-free results *exactly* — byte-for-byte, fingerprint-for-
//! fingerprint. The property tests in `ampom-core` rely on this.
//!
//! [`FaultyLink`] wraps a [`Link`] so the link consults the plan on every
//! transmission: dropped messages still occupy the transmitter (the bytes
//! are clocked onto the wire and lost in flight, as on a real segment)
//! but are never delivered.

use ampom_sim::rng::SimRng;
use ampom_sim::time::{SimDuration, SimTime};

use crate::link::{Link, Transmission};

/// A fault-configuration knob out of its documented domain.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// `loss_rate` must lie in `[0, 1)`; a rate of 1 would drop every
    /// message and no retry protocol could terminate.
    LossRateOutOfRange(f64),
    /// `burst_len` must be at least 1 (each loss event drops at least the
    /// message that triggered it).
    ZeroBurst,
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::LossRateOutOfRange(r) => {
                write!(f, "loss_rate {r} outside [0, 1)")
            }
            FaultConfigError::ZeroBurst => write!(f, "burst_len must be at least 1"),
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// Message-level fault knobs of one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability that a message starts a loss event, in `[0, 1)`.
    pub loss_rate: f64,
    /// Messages dropped per loss event (1 = independent losses; larger
    /// values model the bursty losses of a congested or fading segment).
    pub burst_len: u32,
    /// Maximum extra delivery delay; each delivered message is delayed by
    /// a uniform draw from `[0, jitter]`.
    pub jitter: SimDuration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            loss_rate: 0.0,
            burst_len: 1,
            jitter: SimDuration::ZERO,
        }
    }
}

impl FaultSpec {
    /// A spec that drops each message independently with probability
    /// `loss_rate` and adds no jitter.
    pub fn lossy(loss_rate: f64) -> Self {
        FaultSpec {
            loss_rate,
            ..FaultSpec::default()
        }
    }

    /// True if this spec can never perturb a message — the plan then
    /// short-circuits with zero RNG draws.
    pub fn is_null(&self) -> bool {
        self.loss_rate == 0.0 && self.jitter == SimDuration::ZERO
    }

    /// Checks every knob against its documented domain.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if !(0.0..1.0).contains(&self.loss_rate) {
            return Err(FaultConfigError::LossRateOutOfRange(self.loss_rate));
        }
        if self.burst_len == 0 {
            return Err(FaultConfigError::ZeroBurst);
        }
        Ok(())
    }
}

/// The fate of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// The message arrives, `extra_delay` after its nominal arrival time.
    Delivered {
        /// Jitter added on top of serialization + propagation.
        extra_delay: SimDuration,
    },
    /// The message is lost in flight.
    Dropped,
}

/// A deterministic per-message fate stream for one link direction.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: SimRng,
    /// Remaining messages of the current loss burst.
    burst_left: u32,
    decided: u64,
    dropped: u64,
}

impl FaultPlan {
    /// A plan drawing fates from `rng` under `spec`.
    ///
    /// # Panics
    /// Panics on an invalid spec; validate first when the spec comes from
    /// user input.
    pub fn new(spec: FaultSpec, rng: SimRng) -> Self {
        spec.validate().expect("invalid fault spec");
        FaultPlan {
            spec,
            rng,
            burst_left: 0,
            decided: 0,
            dropped: 0,
        }
    }

    /// A plan that never perturbs anything (and never draws).
    pub fn null() -> Self {
        FaultPlan::new(FaultSpec::default(), SimRng::seed_from_u64(0))
    }

    /// The spec this plan draws under.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Decides the fate of the next message.
    pub fn fate(&mut self) -> Fate {
        if self.spec.is_null() {
            return Fate::Delivered {
                extra_delay: SimDuration::ZERO,
            };
        }
        self.decided += 1;
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.dropped += 1;
            return Fate::Dropped;
        }
        if self.spec.loss_rate > 0.0 && self.rng.chance(self.spec.loss_rate) {
            self.burst_left = self.spec.burst_len - 1;
            self.dropped += 1;
            return Fate::Dropped;
        }
        let extra_delay = if self.spec.jitter > SimDuration::ZERO {
            SimDuration::from_nanos(self.rng.below(self.spec.jitter.as_nanos() + 1))
        } else {
            SimDuration::ZERO
        };
        Fate::Delivered { extra_delay }
    }

    /// Messages whose fate has been decided (0 for a null spec).
    pub fn decided(&self) -> u64 {
        self.decided
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A [`Link`] that consults a [`FaultPlan`] on every transmission.
///
/// Dropped messages occupy the transmitter exactly like delivered ones
/// (the frame is clocked out and lost downstream), so loss does not free
/// up bandwidth; jittered messages are delivered late without delaying
/// the FIFO behind them (reordering is possible, as with real switches).
#[derive(Debug, Clone)]
pub struct FaultyLink {
    link: Link,
    plan: FaultPlan,
}

impl FaultyLink {
    /// Wraps `link` with the fates of `plan`.
    pub fn new(link: Link, plan: FaultPlan) -> Self {
        FaultyLink { link, plan }
    }

    /// The wrapped link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// The plan's knobs.
    pub fn spec(&self) -> &FaultSpec {
        &self.plan.spec
    }

    /// Replaces the loss-rate knob for subsequent messages.
    ///
    /// # Panics
    /// Panics if the new rate is outside `[0, 1)`.
    pub fn set_loss_rate(&mut self, loss_rate: f64) {
        self.plan.spec.loss_rate = loss_rate;
        self.plan.spec.validate().expect("invalid loss rate");
    }

    /// Replaces the burst-length knob for subsequent loss events.
    ///
    /// # Panics
    /// Panics if `burst_len` is 0.
    pub fn set_burst_len(&mut self, burst_len: u32) {
        self.plan.spec.burst_len = burst_len;
        self.plan.spec.validate().expect("invalid burst length");
    }

    /// Replaces the jitter knob for subsequent messages.
    pub fn set_jitter(&mut self, jitter: SimDuration) {
        self.plan.spec.jitter = jitter;
    }

    /// Transmits a `size`-byte message at `now`; `None` means the message
    /// was dropped in flight (the transmitter was still occupied for it).
    pub fn transmit(&mut self, now: SimTime, size: u64) -> Option<Transmission> {
        let fate = self.plan.fate();
        let tx = self.link.transmit(now, size);
        match fate {
            Fate::Dropped => None,
            Fate::Delivered { extra_delay } => Some(Transmission {
                arrives: tx.arrives + extra_delay,
                ..tx
            }),
        }
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.plan.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;

    fn spec(loss: f64) -> FaultSpec {
        FaultSpec::lossy(loss)
    }

    #[test]
    fn null_plan_never_draws_and_never_drops() {
        let mut plan = FaultPlan::null();
        for _ in 0..1000 {
            assert_eq!(
                plan.fate(),
                Fate::Delivered {
                    extra_delay: SimDuration::ZERO
                }
            );
        }
        assert_eq!(plan.decided(), 0, "null plan must not consume the RNG");
        assert_eq!(plan.dropped(), 0);
    }

    #[test]
    fn fates_are_reproducible_for_a_seed() {
        let draw = |seed| {
            let mut plan = FaultPlan::new(spec(0.3), SimRng::seed_from_u64(seed));
            (0..100).map(|_| plan.fate()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn loss_rate_controls_drop_frequency() {
        let mut plan = FaultPlan::new(spec(0.2), SimRng::seed_from_u64(1));
        for _ in 0..10_000 {
            plan.fate();
        }
        let rate = plan.dropped() as f64 / plan.decided() as f64;
        assert!((0.15..0.25).contains(&rate), "observed loss {rate}");
    }

    #[test]
    fn bursts_drop_consecutive_messages() {
        let mut plan = FaultPlan::new(
            FaultSpec {
                loss_rate: 0.05,
                burst_len: 4,
                jitter: SimDuration::ZERO,
            },
            SimRng::seed_from_u64(3),
        );
        let fates: Vec<Fate> = (0..5_000).map(|_| plan.fate()).collect();
        // Every loss event spans exactly 4 messages: count maximal runs.
        let mut runs = Vec::new();
        let mut run = 0u32;
        for f in &fates {
            if *f == Fate::Dropped {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        assert!(!runs.is_empty());
        // Runs are multiples of the burst length (adjacent events merge).
        assert!(runs.iter().all(|r| r % 4 == 0), "runs {runs:?}");
    }

    #[test]
    fn jitter_delays_but_never_reorders_the_transmitter() {
        let link = Link::new(LinkConfig {
            capacity_bytes_per_sec: 1_000_000,
            latency: SimDuration::from_micros(100),
        });
        let plan = FaultPlan::new(
            FaultSpec {
                loss_rate: 0.0,
                burst_len: 1,
                jitter: SimDuration::from_micros(500),
            },
            SimRng::seed_from_u64(9),
        );
        let mut fl = FaultyLink::new(link, plan);
        let a = fl.transmit(SimTime::ZERO, 1000).expect("no loss");
        let b = fl.transmit(SimTime::ZERO, 1000).expect("no loss");
        // Departures stay FIFO even if arrivals reorder under jitter.
        assert!(b.departs > a.departs);
        assert!(a.arrives >= a.departs + SimDuration::from_micros(100));
        assert!(a.arrives <= a.departs + SimDuration::from_micros(600));
    }

    #[test]
    fn dropped_messages_still_occupy_the_link() {
        let link = Link::new(LinkConfig {
            capacity_bytes_per_sec: 1_000_000,
            latency: SimDuration::from_micros(100),
        });
        // Certain first-draw loss via a burst of 2 after a forced event.
        let plan = FaultPlan::new(
            FaultSpec {
                loss_rate: 0.999_999,
                burst_len: 1,
                jitter: SimDuration::ZERO,
            },
            SimRng::seed_from_u64(0),
        );
        let mut fl = FaultyLink::new(link, plan);
        let before = fl.link().free_at();
        assert_eq!(fl.transmit(SimTime::ZERO, 1000), None);
        assert!(fl.link().free_at() > before, "drop still serializes");
        assert_eq!(fl.dropped(), 1);
    }

    #[test]
    fn knob_setters_apply_to_subsequent_messages() {
        let link = Link::new(LinkConfig {
            capacity_bytes_per_sec: 1_000_000,
            latency: SimDuration::ZERO,
        });
        let mut fl = FaultyLink::new(link, FaultPlan::null());
        assert!(fl.transmit(SimTime::ZERO, 10).is_some());
        fl.set_loss_rate(0.999_999);
        fl.set_burst_len(2);
        assert!(fl.transmit(SimTime::ZERO, 10).is_none());
        fl.set_jitter(SimDuration::from_micros(50));
        assert_eq!(fl.spec().jitter, SimDuration::from_micros(50));
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert_eq!(
            FaultSpec::lossy(1.0).validate(),
            Err(FaultConfigError::LossRateOutOfRange(1.0))
        );
        assert_eq!(
            FaultSpec::lossy(-0.1).validate(),
            Err(FaultConfigError::LossRateOutOfRange(-0.1))
        );
        assert_eq!(
            FaultSpec {
                burst_len: 0,
                ..FaultSpec::default()
            }
            .validate(),
            Err(FaultConfigError::ZeroBurst)
        );
        assert!(FaultSpec::lossy(0.05).validate().is_ok());
    }
}
