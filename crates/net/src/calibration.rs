//! Physical constants of the simulated testbed.
//!
//! These reproduce the paper's environment (§5.1): the HKU Gideon 300
//! cluster — Intel P4 2 GHz nodes, 512 MB RAM, Fast Ethernet — and the
//! broadband emulation of §5.5. The handful of software-overhead constants
//! were calibrated **once** so that the three schemes' freeze times at the
//! largest DGEMM size land near the paper's reported 53.9 s / 0.6 s / 0.07 s
//! (openMosix / AMPoM / NoPrefetch), then held fixed for every experiment.
//! See DESIGN.md §7 for the calibration rationale.

use ampom_sim::time::SimDuration;

use crate::link::LinkConfig;

/// Page size of the Linux 2.4 x86 kernels openMosix patches (bytes).
pub const PAGE_SIZE: u64 = 4096;

/// Master-page-table entry size: "the size of an MPT is 6 bytes per page"
/// (paper §5.2).
pub const MPT_ENTRY_BYTES: u64 = 6;

/// Fast Ethernet nominal rate: 100 Mb/s.
pub const FAST_ETHERNET_BPS: u64 = 100_000_000;

/// Effective user-data capacity of Fast Ethernet after Ethernet/IP/TCP
/// framing and the openMosix migration protocol's own headers, in bytes/s.
/// 53.9 s for 575 MB of dirty pages (paper §5.2) implies ≈ 11.2 MB/s.
pub const FAST_ETHERNET_GOODPUT: u64 = 11_200_000;

/// One-way propagation + kernel network-stack latency on the cluster LAN
/// (`t0` in Eq. 3). Fast Ethernet RTTs on 2.4-era kernels were ~250 µs.
pub const LAN_LATENCY: SimDuration = SimDuration::from_micros(120);

/// The paper's §5.5 broadband emulation: `tc` shaped to 6 Mb/s.
pub const BROADBAND_BPS: u64 = 6_000_000;

/// Effective goodput of the shaped 6 Mb/s link, bytes/s.
pub const BROADBAND_GOODPUT: u64 = 672_000;

/// One-way latency of the emulated broadband path (2 ms in the paper).
pub const BROADBAND_LATENCY: SimDuration = SimDuration::from_millis(2);

/// Per-message fixed software cost (syscall + protocol processing) added on
/// top of wire time for every request/reply, per direction.
pub const PER_MESSAGE_OVERHEAD: SimDuration = SimDuration::from_micros(20);

/// Size of a remote-paging *request* message on the wire (header + page
/// list). Each requested page id adds [`REQUEST_PER_PAGE_BYTES`].
pub const REQUEST_HEADER_BYTES: u64 = 64;

/// Wire bytes per page id carried in a paging request.
pub const REQUEST_PER_PAGE_BYTES: u64 = 8;

/// Per-page reply overhead on the wire: Ethernet/IP/TCP framing for the
/// ~3 MTU-sized packets a 4 KB page spans (≈ 200 B) plus the remote-paging
/// protocol header. Bulk (eager) transfers amortise framing over large
/// segments and do not pay this.
pub const REPLY_HEADER_BYTES: u64 = 300;

/// Fixed freeze-time cost every migration pays: capturing registers and the
/// process control block, connection setup, and resuming the remote
/// instance. Calibrated to NoPrefetch's flat ≈ 0.07 s freeze time (§5.2).
pub const MIGRATION_BASE_COST: SimDuration = SimDuration::from_millis(68);

/// Per-MPT-entry freeze cost for AMPoM: walking the page table, packing the
/// entry, and rebuilding the mapping on the destination. Calibrated so the
/// 575 MB DGEMM MPT (≈147 k entries) freezes in ≈ 0.6 s (§5.2).
pub const MPT_ENTRY_COST: SimDuration = SimDuration::from_nanos(3_300);

/// Per-page kernel-side cost in the eager (openMosix) full copy, *excluding*
/// wire time: page-table walk, copy into the socket buffer, remap.
pub const EAGER_PAGE_COST: SimDuration = SimDuration::from_micros(6);

/// Simulated cost of one execution of AMPoM's dependent-zone analysis
/// (record fault, stride census over l=20, Eq. 1, Eq. 3, pivot selection).
/// Microbenchmarks of this crate's implementation measure ~0.2–0.6 µs; a
/// 2 GHz P4 running the in-kernel C version is modelled at 2 µs, keeping the
/// Figure 11 overhead fraction comfortably under the paper's 0.6 % ceiling.
pub const AMPOM_ANALYSIS_COST: SimDuration = SimDuration::from_micros(2);

/// The cluster LAN link configuration used by every experiment except the
/// broadband one.
pub fn fast_ethernet() -> LinkConfig {
    LinkConfig {
        capacity_bytes_per_sec: FAST_ETHERNET_GOODPUT,
        latency: LAN_LATENCY,
    }
}

/// The §5.5 emulated broadband link configuration.
pub fn broadband() -> LinkConfig {
    LinkConfig {
        capacity_bytes_per_sec: BROADBAND_GOODPUT,
        latency: BROADBAND_LATENCY,
    }
}

/// Wire time of one page (data + reply header) on a link — the `td` of
/// Eq. 3.
pub fn page_transfer_time(link: &LinkConfig) -> SimDuration {
    link.serialization_time(PAGE_SIZE + REPLY_HEADER_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_reproduces_eager_575mb_freeze() {
        // 575 MB of dirty pages over the calibrated goodput must land near
        // the paper's 53.9 s.
        let bytes = 575u64 * 1024 * 1024;
        let secs = bytes as f64 / FAST_ETHERNET_GOODPUT as f64;
        assert!((50.0..60.0).contains(&secs), "eager copy time {secs}");
    }

    #[test]
    fn mpt_cost_reproduces_ampom_575mb_freeze() {
        let pages = 575u64 * 1024 * 1024 / PAGE_SIZE;
        let mpt_wire = (pages * MPT_ENTRY_BYTES) as f64 / FAST_ETHERNET_GOODPUT as f64;
        let mpt_cpu = MPT_ENTRY_COST.as_secs_f64() * pages as f64;
        let total = MIGRATION_BASE_COST.as_secs_f64() + mpt_wire + mpt_cpu;
        assert!((0.4..0.9).contains(&total), "AMPoM freeze {total}");
    }

    #[test]
    fn base_cost_matches_noprefetch_freeze() {
        let s = MIGRATION_BASE_COST.as_secs_f64();
        assert!((0.05..0.1).contains(&s));
    }

    #[test]
    fn page_transfer_time_is_sub_millisecond_on_lan() {
        let td = page_transfer_time(&fast_ethernet());
        assert!(td > SimDuration::from_micros(300));
        assert!(td < SimDuration::from_micros(500));
    }

    #[test]
    fn broadband_is_much_slower() {
        let lan = page_transfer_time(&fast_ethernet());
        let wan = page_transfer_time(&broadband());
        assert!(wan.as_nanos() > 10 * lan.as_nanos());
    }
}
