//! Physical constants of the simulated testbed.
//!
//! These reproduce the paper's environment (§5.1): the HKU Gideon 300
//! cluster — Intel P4 2 GHz nodes, 512 MB RAM, Fast Ethernet — and the
//! broadband emulation of §5.5. The handful of software-overhead constants
//! were calibrated **once** so that the three schemes' freeze times at the
//! largest DGEMM size land near the paper's reported 53.9 s / 0.6 s / 0.07 s
//! (openMosix / AMPoM / NoPrefetch), then held fixed for every experiment.
//! See DESIGN.md §7 for the calibration rationale.

use ampom_sim::time::SimDuration;

use crate::link::LinkConfig;

/// Page size of the Linux 2.4 x86 kernels openMosix patches (bytes).
pub const PAGE_SIZE: u64 = 4096;

/// Master-page-table entry size: "the size of an MPT is 6 bytes per page"
/// (paper §5.2).
pub const MPT_ENTRY_BYTES: u64 = 6;

/// Fast Ethernet nominal rate: 100 Mb/s.
pub const FAST_ETHERNET_BPS: u64 = 100_000_000;

/// Effective user-data capacity of Fast Ethernet after Ethernet/IP/TCP
/// framing and the openMosix migration protocol's own headers, in bytes/s.
/// 53.9 s for 575 MB of dirty pages (paper §5.2) implies ≈ 11.2 MB/s.
pub const FAST_ETHERNET_GOODPUT: u64 = 11_200_000;

/// One-way propagation + kernel network-stack latency on the cluster LAN
/// (`t0` in Eq. 3). Fast Ethernet RTTs on 2.4-era kernels were ~250 µs.
pub const LAN_LATENCY: SimDuration = SimDuration::from_micros(120);

/// The paper's §5.5 broadband emulation: `tc` shaped to 6 Mb/s.
pub const BROADBAND_BPS: u64 = 6_000_000;

/// Effective goodput of the shaped 6 Mb/s link, bytes/s.
pub const BROADBAND_GOODPUT: u64 = 672_000;

/// One-way latency of the emulated broadband path (2 ms in the paper).
pub const BROADBAND_LATENCY: SimDuration = SimDuration::from_millis(2);

/// Per-message fixed software cost (syscall + protocol processing) added on
/// top of wire time for every request/reply, per direction.
pub const PER_MESSAGE_OVERHEAD: SimDuration = SimDuration::from_micros(20);

/// Size of a remote-paging *request* message on the wire (header + page
/// list). Each requested page id adds [`REQUEST_PER_PAGE_BYTES`].
pub const REQUEST_HEADER_BYTES: u64 = 64;

/// Wire bytes per page id carried in a paging request.
pub const REQUEST_PER_PAGE_BYTES: u64 = 8;

/// Per-page reply overhead on the wire: Ethernet/IP/TCP framing for the
/// ~3 MTU-sized packets a 4 KB page spans (≈ 200 B) plus the remote-paging
/// protocol header. Bulk (eager) transfers amortise framing over large
/// segments and do not pay this.
pub const REPLY_HEADER_BYTES: u64 = 300;

/// Fixed freeze-time cost every migration pays: capturing registers and the
/// process control block, connection setup, and resuming the remote
/// instance. Calibrated to NoPrefetch's flat ≈ 0.07 s freeze time (§5.2).
pub const MIGRATION_BASE_COST: SimDuration = SimDuration::from_millis(68);

/// Per-MPT-entry freeze cost for AMPoM: walking the page table, packing the
/// entry, and rebuilding the mapping on the destination. Calibrated so the
/// 575 MB DGEMM MPT (≈147 k entries) freezes in ≈ 0.6 s (§5.2).
pub const MPT_ENTRY_COST: SimDuration = SimDuration::from_nanos(3_300);

/// Per-page kernel-side cost in the eager (openMosix) full copy, *excluding*
/// wire time: page-table walk, copy into the socket buffer, remap.
pub const EAGER_PAGE_COST: SimDuration = SimDuration::from_micros(6);

/// Simulated cost of one execution of AMPoM's dependent-zone analysis
/// (record fault, stride census over l=20, Eq. 1, Eq. 3, pivot selection).
/// Microbenchmarks of this crate's implementation measure ~0.2–0.6 µs; a
/// 2 GHz P4 running the in-kernel C version is modelled at 2 µs, keeping the
/// Figure 11 overhead fraction comfortably under the paper's 0.6 % ceiling.
pub const AMPOM_ANALYSIS_COST: SimDuration = SimDuration::from_micros(2);

/// The cluster LAN link configuration used by every experiment except the
/// broadband one.
pub fn fast_ethernet() -> LinkConfig {
    LinkConfig {
        capacity_bytes_per_sec: FAST_ETHERNET_GOODPUT,
        latency: LAN_LATENCY,
    }
}

/// The §5.5 emulated broadband link configuration.
pub fn broadband() -> LinkConfig {
    LinkConfig {
        capacity_bytes_per_sec: BROADBAND_GOODPUT,
        latency: BROADBAND_LATENCY,
    }
}

/// Wire time of one page (data + reply header) on a link — the `td` of
/// Eq. 3.
pub fn page_transfer_time(link: &LinkConfig) -> SimDuration {
    link.serialization_time(PAGE_SIZE + REPLY_HEADER_BYTES)
}

/// A malformed serialized [`MeasuredLink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationParseError {
    /// A required key is absent. The payload names it.
    MissingKey(&'static str),
    /// A value failed to parse as an integer. The payload names the key.
    BadValue(&'static str),
    /// A line is not a `key = value` pair.
    BadLine(String),
}

impl std::fmt::Display for CalibrationParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationParseError::MissingKey(k) => write!(f, "missing calibration key: {k}"),
            CalibrationParseError::BadValue(k) => {
                write!(f, "calibration value for {k} is not an integer")
            }
            CalibrationParseError::BadLine(l) => {
                write!(f, "calibration line is not `key = value`: {l:?}")
            }
        }
    }
}

impl std::error::Error for CalibrationParseError {}

/// Link parameters measured on real hardware by the `ampom-rpc`
/// calibration handshake: RTT probes give `t0`, a timed bulk page fetch
/// gives the effective capacity, and `td` follows from Eq. 3's page
/// transfer time at that capacity.
///
/// The struct round-trips through a `key = value` text form
/// ([`MeasuredLink::to_kv`] / [`MeasuredLink::from_kv`]) so a measurement
/// taken on one machine can parameterise simulations on another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredLink {
    /// Measured one-way latency (half the smoothed probe RTT).
    pub t0: SimDuration,
    /// Measured transfer time of one page (data + reply header).
    pub td: SimDuration,
    /// Effective goodput observed during the bulk fetch, bytes/s.
    pub capacity_bytes_per_sec: u64,
}

impl ampom_obs::MetricSource for MeasuredLink {
    fn export_metrics(&self, reg: &mut ampom_obs::MetricsRegistry) {
        reg.export_gauge(
            "ampom_link_t0_seconds",
            "Measured one-way latency (half the smoothed probe RTT)",
            self.t0.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_link_td_seconds",
            "Measured transfer time of one page",
            self.td.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_link_capacity_bytes_per_sec",
            "Effective goodput observed during the bulk calibration fetch",
            self.capacity_bytes_per_sec as f64,
        );
    }
}

impl MeasuredLink {
    /// The [`LinkConfig`] that makes the simulator reproduce this
    /// measured link: capacity as observed, latency = measured `t0`.
    pub fn link_config(&self) -> LinkConfig {
        LinkConfig {
            capacity_bytes_per_sec: self.capacity_bytes_per_sec,
            latency: self.t0,
        }
    }

    /// Serializes as `key = value` lines (nanoseconds / bytes-per-second).
    pub fn to_kv(&self) -> String {
        format!(
            "t0_ns = {}\ntd_ns = {}\ncapacity_bytes_per_sec = {}\n",
            self.t0.as_nanos(),
            self.td.as_nanos(),
            self.capacity_bytes_per_sec
        )
    }

    /// Parses the [`MeasuredLink::to_kv`] form. Unknown keys are ignored
    /// (forward compatibility); missing or non-integer values are typed
    /// errors.
    pub fn from_kv(text: &str) -> Result<Self, CalibrationParseError> {
        let mut t0 = None;
        let mut td = None;
        let mut capacity = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| CalibrationParseError::BadLine(line.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "t0_ns" => {
                    t0 = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| CalibrationParseError::BadValue("t0_ns"))?,
                    )
                }
                "td_ns" => {
                    td = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| CalibrationParseError::BadValue("td_ns"))?,
                    )
                }
                "capacity_bytes_per_sec" => {
                    capacity =
                        Some(value.parse::<u64>().map_err(|_| {
                            CalibrationParseError::BadValue("capacity_bytes_per_sec")
                        })?)
                }
                _ => {}
            }
        }
        Ok(MeasuredLink {
            t0: SimDuration::from_nanos(t0.ok_or(CalibrationParseError::MissingKey("t0_ns"))?),
            td: SimDuration::from_nanos(td.ok_or(CalibrationParseError::MissingKey("td_ns"))?),
            capacity_bytes_per_sec: capacity
                .ok_or(CalibrationParseError::MissingKey("capacity_bytes_per_sec"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_reproduces_eager_575mb_freeze() {
        // 575 MB of dirty pages over the calibrated goodput must land near
        // the paper's 53.9 s.
        let bytes = 575u64 * 1024 * 1024;
        let secs = bytes as f64 / FAST_ETHERNET_GOODPUT as f64;
        assert!((50.0..60.0).contains(&secs), "eager copy time {secs}");
    }

    #[test]
    fn mpt_cost_reproduces_ampom_575mb_freeze() {
        let pages = 575u64 * 1024 * 1024 / PAGE_SIZE;
        let mpt_wire = (pages * MPT_ENTRY_BYTES) as f64 / FAST_ETHERNET_GOODPUT as f64;
        let mpt_cpu = MPT_ENTRY_COST.as_secs_f64() * pages as f64;
        let total = MIGRATION_BASE_COST.as_secs_f64() + mpt_wire + mpt_cpu;
        assert!((0.4..0.9).contains(&total), "AMPoM freeze {total}");
    }

    #[test]
    fn base_cost_matches_noprefetch_freeze() {
        let s = MIGRATION_BASE_COST.as_secs_f64();
        assert!((0.05..0.1).contains(&s));
    }

    #[test]
    fn page_transfer_time_is_sub_millisecond_on_lan() {
        let td = page_transfer_time(&fast_ethernet());
        assert!(td > SimDuration::from_micros(300));
        assert!(td < SimDuration::from_micros(500));
    }

    #[test]
    fn broadband_is_much_slower() {
        let lan = page_transfer_time(&fast_ethernet());
        let wan = page_transfer_time(&broadband());
        assert!(wan.as_nanos() > 10 * lan.as_nanos());
    }

    #[test]
    fn measured_link_round_trips_through_kv() {
        let m = MeasuredLink {
            t0: SimDuration::from_micros(85),
            td: SimDuration::from_micros(410),
            capacity_bytes_per_sec: 10_500_000,
        };
        let parsed = MeasuredLink::from_kv(&m.to_kv()).unwrap();
        assert_eq!(parsed, m);
        let cfg = m.link_config();
        assert_eq!(cfg.capacity_bytes_per_sec, 10_500_000);
        assert_eq!(cfg.latency, SimDuration::from_micros(85));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn measured_link_parse_ignores_comments_and_unknown_keys() {
        let text = "# calibration taken on loopback\nt0_ns = 1000\n\
                    future_field = 9\ntd_ns = 2000\ncapacity_bytes_per_sec = 3000\n";
        let m = MeasuredLink::from_kv(text).unwrap();
        assert_eq!(m.t0, SimDuration::from_nanos(1000));
        assert_eq!(m.td, SimDuration::from_nanos(2000));
        assert_eq!(m.capacity_bytes_per_sec, 3000);
    }

    #[test]
    fn measured_link_parse_errors_are_typed() {
        assert_eq!(
            MeasuredLink::from_kv("t0_ns = 1\ntd_ns = 2\n"),
            Err(CalibrationParseError::MissingKey("capacity_bytes_per_sec"))
        );
        assert_eq!(
            MeasuredLink::from_kv("t0_ns = xyz\ntd_ns = 2\ncapacity_bytes_per_sec = 3\n"),
            Err(CalibrationParseError::BadValue("t0_ns"))
        );
        assert!(matches!(
            MeasuredLink::from_kv("not a pair"),
            Err(CalibrationParseError::BadLine(_))
        ));
    }
}
