//! # ampom-net — the simulated cluster network
//!
//! Models the interconnect of the HKU Gideon 300 cluster (Fast Ethernet,
//! star topology) that the AMPoM paper ran on, plus the `tc`-based broadband
//! emulation used in its Figure 9 experiment.
//!
//! The model is a *store-and-forward FIFO link*: each directed node pair has
//! a [`link::Link`] with a capacity (bytes/s) and a propagation latency.
//! A message occupies the link for `size / capacity` (serialization) and is
//! delivered `latency` later. Back-to-back messages queue behind each other,
//! which is exactly the pipelining effect the paper credits for AMPoM's
//! fault-latency hiding (§5.4: "AMPoM's prefetching scheme saves the round
//! trip latency of inter-node page faults by pipelining effect").
//!
//! Components:
//!
//! * [`link::Link`] / [`link::LinkConfig`] — capacity + latency + FIFO queue,
//! * [`nic::Nic`] — per-node RX/TX byte counters (the `/sbin/ifconfig`
//!   fields the original oM_infoD samples),
//! * [`shaper::TrafficShaper`] — `tc`/`netem`-style rate limit + added
//!   delay, used to emulate the paper's 6 Mb/s / 2 ms broadband link,
//! * [`probe::RttProber`] and [`probe::BandwidthEstimator`] — the
//!   measurement algorithms of the modified oM_infoD (§4),
//! * [`cross::CrossTraffic`] — Poisson background traffic for the
//!   network-adaptivity experiments,
//! * [`fault::FaultPlan`] / [`fault::FaultyLink`] — deterministic message
//!   loss, burst loss and jitter for the robustness experiments,
//! * [`calibration`] — the physical constants (documented in DESIGN.md §7).

pub mod calibration;
pub mod cross;
pub mod fault;
pub mod link;
pub mod nic;
pub mod probe;
pub mod shaper;

pub use calibration::{CalibrationParseError, MeasuredLink};
pub use fault::{Fate, FaultConfigError, FaultPlan, FaultSpec, FaultyLink};
pub use link::{Link, LinkConfig, LinkError, Transmission};
pub use nic::Nic;
pub use shaper::TrafficShaper;
