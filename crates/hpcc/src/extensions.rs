//! Extension experiments beyond the paper's evaluation.
//!
//! These quantify the paper's §7 future-work directions and the documented
//! limits of the algorithm:
//!
//! * [`ext_vm`] — VM migration: shared-window vs per-process analysis,
//! * [`ext_cluster`] — cluster-wide load balancing: policy × mechanism,
//! * [`ext_ptrans`] — the transpose pattern that defeats `dmax = 4`,
//! * [`ext_interactive`] — the §5.6 interactive application made concrete,
//! * [`ext_accuracy`] — prefetch accuracy (wasted-prefetch check),
//! * [`sweep`] — sensitivity of AMPoM's knobs on STREAM and RandomAccess.

use ampom_cluster::{simulate, BalancePolicy, ClusterConfig};
use ampom_core::experiment::Experiment;
use ampom_core::migration::Scheme;
use ampom_core::prefetcher::AmpomConfig;
use ampom_core::remigration::run_round_trip;
use ampom_core::runner::SyscallProfile;
use ampom_core::vm::{run_vm, VmAnalysis, VmWorkload};
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;
use ampom_workloads::hpl::Hpl;
use ampom_workloads::interactive::Interactive;
use ampom_workloads::ptrans::Ptrans;
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::stream_kernel::StreamKernel;
use ampom_workloads::synthetic::Sequential;
use ampom_workloads::{build_kernel, Kernel, Workload};

use crate::matrix::{par_map, MATRIX_SEED};
use crate::report::{pct, secs, AsciiTable};

/// Extension 1: VM migration with multi-process access streams (§7).
pub fn ext_vm(quick: bool) -> AsciiTable {
    let (pages_each, guest_counts): (u64, Vec<usize>) = if quick {
        (200, vec![2, 6])
    } else {
        (1500, vec![2, 4, 6, 8])
    };
    let mut specs = Vec::new();
    for &guests in &guest_counts {
        for mode in [
            VmAnalysis::SharedWindow,
            VmAnalysis::PerProcess,
            VmAnalysis::NoPrefetch,
        ] {
            specs.push((guests, mode));
        }
    }
    let results = par_map(specs, move |(guests, mode)| {
        let procs: Vec<Box<dyn Workload>> = (0..guests)
            .map(|_| {
                Box::new(Sequential::new(pages_each, SimDuration::from_micros(15)))
                    as Box<dyn Workload>
            })
            .collect();
        let vm = VmWorkload::new(procs, 1);
        // Pure Eq. 3 (no read-ahead floor) isolates the windowing effect.
        let cfg = Experiment::new(Scheme::Ampom)
            .ampom(AmpomConfig {
                baseline_readahead: 0,
                ..AmpomConfig::default()
            })
            .config()
            .clone();
        let out = run_vm(vm, &cfg, mode);
        (guests, mode, out)
    });
    let mut t = AsciiTable::new(
        "Extension: VM migration — shared vs per-process windows (pure Eq. 3)",
        &[
            "guests",
            "analysis",
            "fault requests",
            "prefetched",
            "mean S",
            "total (s)",
        ],
    );
    for (guests, mode, out) in &results {
        t.row(vec![
            guests.to_string(),
            mode.name().into(),
            out.report.fault_requests.to_string(),
            out.report.pages_prefetched.to_string(),
            format!("{:.3}", out.mean_score),
            secs(out.report.total_time.as_secs_f64()),
        ]);
    }
    t
}

/// Extension 2: cluster-wide load balancing (§1 motivation + §7 claim).
pub fn ext_cluster(quick: bool) -> AsciiTable {
    let threshold = BalancePolicy::LifetimeThreshold(SimDuration::from_secs(30));
    let mut specs = Vec::new();
    for policy in [threshold, BalancePolicy::Aggressive] {
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            specs.push((policy, scheme));
        }
    }
    let results = par_map(specs, move |(policy, scheme)| {
        let mut cfg = ClusterConfig::standard(policy, scheme);
        if quick {
            cfg.jobs = 30;
            cfg.nodes = 8;
        }
        (policy, scheme, simulate(&cfg))
    });
    let mut t = AsciiTable::new(
        "Extension: gossip-based cluster load balancing",
        &[
            "policy",
            "migration",
            "makespan (s)",
            "mean slowdown",
            "max slowdown",
            "migrations",
            "freeze paid (s)",
        ],
    );
    for (policy, scheme, out) in &results {
        t.row(vec![
            policy.name().into(),
            scheme.name().into(),
            secs(out.makespan.as_secs_f64()),
            format!("{:.2}", out.slowdown.mean()),
            format!("{:.1}", out.slowdown.max().unwrap_or(0.0)),
            out.migrations.to_string(),
            secs(out.freeze_paid.as_secs_f64()),
        ]);
    }
    t
}

/// Extension 3: PTRANS — the stride pattern beyond `dmax`.
pub fn ext_ptrans(quick: bool) -> AsciiTable {
    let mb = if quick { 4 } else { 64 };
    let results = par_map(
        vec![Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom],
        move |scheme| {
            let mut w = Ptrans::new(mb * 1024 * 1024);
            let r = Experiment::new(scheme)
                .run_on(&mut w)
                .expect("ptrans experiment is valid");
            (scheme, r)
        },
    );
    // Reference: STREAM at the same size (fully detectable pattern).
    let stream_ref = {
        let mut w = StreamKernel::new(mb * 1024 * 1024);
        let ampom = Experiment::new(Scheme::Ampom)
            .run_on(&mut w)
            .expect("stream reference is valid");
        let mut w = StreamKernel::new(mb * 1024 * 1024);
        let nopf = Experiment::new(Scheme::NoPrefetch)
            .run_on(&mut w)
            .expect("stream reference is valid");
        ampom.fault_prevention_vs(&nopf)
    };
    let mut t = AsciiTable::new(
        format!("Extension: PTRANS {mb} MB — a write lane with stride > dmax"),
        &[
            "scheme",
            "total (s)",
            "fault requests",
            "prevented",
            "mean S",
        ],
    );
    let nopf_requests = results
        .iter()
        .find(|(s, _)| *s == Scheme::NoPrefetch)
        .map(|(_, r)| r.fault_requests)
        .unwrap_or(0);
    for (scheme, r) in &results {
        let prevented = if *scheme == Scheme::Ampom && nopf_requests > 0 {
            pct((1.0 - r.fault_requests as f64 / nopf_requests as f64) * 100.0)
        } else {
            "-".into()
        };
        t.row(vec![
            scheme.name().into(),
            secs(r.total_time.as_secs_f64()),
            r.fault_requests.to_string(),
            prevented,
            format!("{:.3}", r.prefetch_stats.scores.mean()),
        ]);
    }
    t.row(vec![
        "(STREAM ref)".into(),
        "-".into(),
        "-".into(),
        pct(stream_ref * 100.0),
        "-".into(),
    ]);
    t
}

/// Extension 4: the §5.6 interactive application.
pub fn ext_interactive(quick: bool) -> AsciiTable {
    let (mb, bursts) = if quick { (16, 4) } else { (256, 12) };
    let results = par_map(vec![Scheme::OpenMosix, Scheme::Ampom], move |scheme| {
        let mut w = Interactive::new(
            mb * 1024 * 1024,
            bursts,
            64,
            SimDuration::from_millis(300),
            SimRng::seed_from_u64(MATRIX_SEED),
        );
        let r = Experiment::new(scheme)
            .run_on(&mut w)
            .expect("interactive experiment is valid");
        (scheme, r)
    });
    let mut t = AsciiTable::new(
        format!("Extension: interactive app ({mb} MB allocated, {bursts} bursts of 64 pages)"),
        &["scheme", "freeze (s)", "total (s)", "bytes moved (MB)"],
    );
    for (scheme, r) in &results {
        t.row(vec![
            scheme.name().into(),
            secs(r.freeze_time.as_secs_f64()),
            secs(r.total_time.as_secs_f64()),
            format!("{:.1}", r.bytes_to_dest as f64 / (1024.0 * 1024.0)),
        ]);
    }
    t
}

/// Extension 5: prefetch accuracy (the "no excessive prefetching" claim).
pub fn ext_accuracy(quick: bool) -> AsciiTable {
    let mb = if quick { 4 } else { 32 };
    let results = par_map(Kernel::ALL.to_vec(), move |kernel| {
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        let r = Experiment::new(Scheme::Ampom)
            .kernel(kernel, size)
            .workload_seed(MATRIX_SEED)
            .run()
            .expect("accuracy experiment is valid");
        (kernel, r)
    });
    let mut t = AsciiTable::new(
        format!("Extension: prefetch accuracy at {mb} MB (used / prefetched)"),
        &["kernel", "prefetched", "used", "accuracy"],
    );
    for (kernel, r) in &results {
        t.row(vec![
            kernel.name().into(),
            r.pages_prefetched.to_string(),
            r.prefetched_pages_used.to_string(),
            pct(r.prefetch_accuracy() * 100.0),
        ]);
    }
    t
}

/// Extension 6: round-trip migration — out under load, back when the
/// remote node is reclaimed (§1's "migrated again" scenario).
pub fn ext_roundtrip(quick: bool) -> AsciiTable {
    let pages = if quick { 512 } else { 8192 };
    let mut specs = Vec::new();
    for frac in [0.2f64, 0.5, 0.8] {
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            specs.push((frac, scheme));
        }
    }
    let results = par_map(specs, move |(frac, scheme)| {
        let mut w = Sequential::new(pages, SimDuration::from_micros(15));
        let cfg = Experiment::new(scheme).config().clone();
        (frac, scheme, run_round_trip(&mut w, &cfg, frac))
    });
    let mut t = AsciiTable::new(
        format!("Extension: round-trip migration ({pages}-page sequential migrant)"),
        &[
            "time away",
            "scheme",
            "outbound freeze",
            "return freeze",
            "pages returned",
            "total (s)",
        ],
    );
    for (frac, scheme, r) in &results {
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            scheme.name().into(),
            secs(r.outbound_freeze.as_secs_f64()),
            secs(r.return_freeze.as_secs_f64()),
            r.pages_returned.to_string(),
            secs(r.total_time.as_secs_f64()),
        ]);
    }
    t
}

/// Extension 7: the home dependency — forwarded system calls (§7).
pub fn ext_syscall(quick: bool) -> AsciiTable {
    let mb = if quick { 4 } else { 32 };
    let mut specs = Vec::new();
    for every in [0u64, 256, 64, 16] {
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            specs.push((every, scheme));
        }
    }
    let results = par_map(specs, move |(every, scheme)| {
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        let mut exp = Experiment::new(scheme)
            .kernel(Kernel::Stream, size)
            .workload_seed(MATRIX_SEED);
        if every > 0 {
            exp = exp.syscalls(SyscallProfile {
                every_refs: every,
                work: SimDuration::from_micros(50),
            });
        }
        (
            every,
            scheme,
            exp.run().expect("syscall experiment is valid"),
        )
    });
    let mut t = AsciiTable::new(
        format!("Extension: home dependency — forwarded syscalls (STREAM {mb} MB)"),
        &[
            "syscall every",
            "scheme",
            "syscalls",
            "syscall time (s)",
            "total (s)",
        ],
    );
    for (every, scheme, r) in &results {
        t.row(vec![
            if *every == 0 {
                "never".into()
            } else {
                format!("{every} refs")
            },
            scheme.name().into(),
            r.syscalls_forwarded.to_string(),
            secs(r.syscall_time.as_secs_f64()),
            secs(r.total_time.as_secs_f64()),
        ]);
    }
    t
}

/// Extension 8: memory pressure — migrating into a node whose RAM cannot
/// hold the migrant (the testbed's 512 MB nodes vs 575 MB processes).
pub fn ext_pressure(quick: bool) -> AsciiTable {
    let (mb, limits): (u64, Vec<Option<u64>>) = if quick {
        (8, vec![None, Some(4)])
    } else {
        (64, vec![None, Some(48), Some(32), Some(16)])
    };
    let mut specs = Vec::new();
    for &limit in &limits {
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            specs.push((limit, scheme));
        }
    }
    let results = par_map(specs, move |(limit, scheme)| {
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        let mut exp = Experiment::new(scheme)
            .kernel(Kernel::Dgemm, size)
            .workload_seed(MATRIX_SEED);
        if let Some(l) = limit {
            exp = exp.resident_limit_mb(l);
        }
        (
            limit,
            scheme,
            exp.run().expect("pressure experiment is valid"),
        )
    });
    let mut t = AsciiTable::new(
        format!("Extension: memory pressure (DGEMM {mb} MB migrant)"),
        &[
            "node RAM",
            "scheme",
            "total (s)",
            "evictions",
            "pages re-fetched",
        ],
    );
    for (limit, scheme, r) in &results {
        let refetch =
            (r.pages_demand_fetched + r.pages_prefetched).saturating_sub(mb * 1024 * 1024 / 4096);
        t.row(vec![
            limit.map_or("unlimited".into(), |l| format!("{l} MB")),
            scheme.name().into(),
            secs(r.total_time.as_secs_f64()),
            r.pages_evicted.to_string(),
            refetch.to_string(),
        ]);
    }
    t
}

/// Extension: gossip-staleness ablation — how stale load views degrade
/// balancing quality. openMosix nodes decide from gossiped, aging load
/// vectors; distrusting entries too young starves the balancer of
/// options, trusting them too long causes migrations toward nodes that
/// are no longer idle.
pub fn ext_gossip(quick: bool) -> AsciiTable {
    use ampom_cluster::gossip::GossipConfig;
    let ages: Vec<u64> = vec![1, 4, 8, 32, 3600];
    let results = par_map(ages, move |age| {
        let mut cfg = ClusterConfig::standard(BalancePolicy::Aggressive, Scheme::Ampom);
        if quick {
            cfg.nodes = 8;
            cfg.jobs = 30;
        }
        cfg.gossip = GossipConfig {
            max_age: SimDuration::from_secs(age),
        };
        (age, simulate(&cfg))
    });
    let mut t = AsciiTable::new(
        "Extension: gossip staleness (AMPoM migration, aggressive policy)",
        &[
            "max entry age (s)",
            "mean slowdown",
            "migrations",
            "load stddev",
        ],
    );
    for (age, out) in &results {
        t.row(vec![
            age.to_string(),
            format!("{:.2}", out.slowdown.mean()),
            out.migrations.to_string(),
            format!("{:.2}", out.mean_load_stddev),
        ]);
    }
    t
}

/// Extension: migration-timing sensitivity — migrate the process at
/// different points of its execution instead of right after allocation
/// (the paper's §5.1 protocol). Late migrations leave less remaining work
/// to amortise an expensive freeze, which is the amortisation argument
/// behind lifetime-threshold policies; AMPoM's constant tiny freeze makes
/// the timing nearly irrelevant.
pub fn ext_timing(quick: bool) -> AsciiTable {
    use ampom_workloads::compose::Skip;
    use ampom_workloads::stream_kernel::StreamKernel;
    let mb = if quick { 4 } else { 64 };
    let mut specs = Vec::new();
    for frac in [0.0f64, 0.25, 0.5, 0.75] {
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            specs.push((frac, scheme));
        }
    }
    let results = par_map(specs, move |(frac, scheme)| {
        let inner = Box::new(StreamKernel::new(mb * 1024 * 1024));
        let skip = (inner.total_refs_hint() as f64 * frac) as u64;
        let mut w = Skip::new(inner, skip);
        let home_time = w.skipped_cpu();
        let r = Experiment::new(scheme)
            .run_on(&mut w)
            .expect("timing experiment is valid");
        (frac, scheme, home_time + r.total_time, r.freeze_time)
    });
    let mut t = AsciiTable::new(
        format!("Extension: migration timing (STREAM {mb} MB, migrate mid-run)"),
        &[
            "migrate at",
            "scheme",
            "freeze (s)",
            "job total (s)",
            "freeze/remaining",
        ],
    );
    for (frac, scheme, total, freeze) in &results {
        // How much of the job's post-migration wall time the freeze eats —
        // the amortisation ratio behind lifetime-threshold policies: a
        // late eager migration pays its full freeze for little remaining
        // work, while AMPoM's is negligible at any point.
        let remaining = total.as_secs_f64() * (1.0 - frac);
        let ratio = if remaining > 0.0 {
            freeze.as_secs_f64() / remaining * 100.0
        } else {
            0.0
        };
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            scheme.name().into(),
            secs(freeze.as_secs_f64()),
            secs(total.as_secs_f64()),
            pct(ratio),
        ]);
    }
    t
}

/// Extension: measured locality of every workload in the suite — the
/// Figure 4 axes extended to the non-paper workloads.
pub fn ext_locality(quick: bool) -> AsciiTable {
    use ampom_workloads::locality::analyze;
    let mb = if quick { 2 } else { 16 };
    let bytes = mb * 1024 * 1024;
    type Named = (&'static str, Box<dyn Workload>);
    let mut workloads: Vec<Named> = Vec::new();
    for kernel in Kernel::ALL {
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        workloads.push((kernel.name(), build_kernel(kernel, &size, MATRIX_SEED)));
    }
    workloads.push(("PTRANS", Box::new(Ptrans::new(bytes))));
    workloads.push(("HPL", Box::new(Hpl::new(bytes))));
    workloads.push((
        "Interactive",
        Box::new(Interactive::new(
            bytes,
            6,
            32,
            SimDuration::from_millis(100),
            SimRng::seed_from_u64(MATRIX_SEED),
        )),
    ));
    // Trait objects are not Send; the analysis is cheap, so run serially.
    let rows: Vec<_> = workloads
        .into_iter()
        .map(|(name, w)| (name, analyze(w)))
        .collect();
    let mut t = AsciiTable::new(
        format!("Extension: measured locality of all workloads ({mb} MB)"),
        &[
            "workload",
            "spatial (successor)",
            "temporal (reuse)",
            "mean seq run",
        ],
    );
    for (name, a) in rows {
        t.row(vec![
            name.into(),
            format!("{:.3}", a.successor_fraction),
            format!("{:.3}", a.reuse_fraction),
            format!("{:.1}", a.mean_sequential_run),
        ]);
    }
    t
}

/// Extension 9: HPL (LU factorisation) — a drifting working set the
/// paper's evaluation never exercises.
pub fn ext_hpl(quick: bool) -> AsciiTable {
    let mb = if quick { 4 } else { 64 };
    let results = par_map(
        vec![Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom],
        move |scheme| {
            let mut w = Hpl::new(mb * 1024 * 1024);
            let r = Experiment::new(scheme)
                .run_on(&mut w)
                .expect("hpl experiment is valid");
            (scheme, r)
        },
    );
    let nopf_requests = results
        .iter()
        .find(|(s, _)| *s == Scheme::NoPrefetch)
        .map(|(_, r)| r.fault_requests)
        .unwrap_or(0);
    let mut t = AsciiTable::new(
        format!("Extension: HPL {mb} MB — LU factorisation, shrinking working set"),
        &[
            "scheme",
            "freeze (s)",
            "total (s)",
            "fault requests",
            "prevented",
        ],
    );
    for (scheme, r) in &results {
        let prevented = if *scheme == Scheme::Ampom && nopf_requests > 0 {
            pct((1.0 - r.fault_requests as f64 / nopf_requests as f64) * 100.0)
        } else {
            "-".into()
        };
        t.row(vec![
            scheme.name().into(),
            secs(r.freeze_time.as_secs_f64()),
            secs(r.total_time.as_secs_f64()),
            r.fault_requests.to_string(),
            prevented,
        ]);
    }
    t
}

/// Timeline: sampled run dynamics for one kernel under AMPoM — how the
/// in-flight pipeline, resident set, mean zone budget and link
/// utilisation evolve over the run. Useful for plotting the transfer
/// phase vs the compute phase.
pub fn timeline(quick: bool) -> AsciiTable {
    let mb = if quick { 4 } else { 64 };
    let size = ProblemSize {
        problem: 0,
        memory_mb: mb,
    };
    let r = Experiment::new(Scheme::Ampom)
        .kernel(Kernel::Stream, size)
        .workload_seed(MATRIX_SEED)
        .sample_series(if quick { 20 } else { 500 })
        .run()
        .expect("timeline experiment is valid");
    let series = r.series.expect("sampling enabled");
    let mut t = AsciiTable::new(
        format!("Timeline: STREAM {mb} MB under AMPoM (sampled at faults)"),
        &["t (s)", "in flight", "resident", "mean budget", "link util"],
    );
    let n = series.in_flight.len();
    for i in 0..n {
        let (ts, infl) = series.in_flight.samples()[i];
        let resident = series.resident.samples().get(i).map_or(0.0, |&(_, v)| v);
        let budget = series.zone_budget.samples().get(i).map_or(0.0, |&(_, v)| v);
        let util = series
            .link_utilization
            .samples()
            .get(i)
            .map_or(0.0, |&(_, v)| v);
        t.row(vec![
            format!("{:.3}", ts.as_secs_f64()),
            format!("{infl:.0}"),
            format!("{resident:.0}"),
            format!("{budget:.1}"),
            format!("{util:.2}"),
        ]);
    }
    t
}

/// Sensitivity sweep of AMPoM's tunables on STREAM and RandomAccess.
pub fn sweep(quick: bool) -> Vec<AsciiTable> {
    let mb = if quick { 4 } else { 16 };
    let run = move |kernel: Kernel, ampom: AmpomConfig| {
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        Experiment::new(Scheme::Ampom)
            .kernel(kernel, size)
            .workload_seed(MATRIX_SEED)
            .ampom(ampom)
            .run()
            .expect("sweep experiment is valid")
    };

    let mut out = Vec::new();

    let mut t = AsciiTable::new(
        format!("Sweep: lookback window length l (STREAM {mb} MB)"),
        &["l", "fault requests", "total (s)", "overhead"],
    );
    for l in [8usize, 12, 20, 40, 80] {
        let r = run(
            Kernel::Stream,
            AmpomConfig {
                window_len: l,
                ..AmpomConfig::default()
            },
        );
        t.row(vec![
            l.to_string(),
            r.fault_requests.to_string(),
            secs(r.total_time.as_secs_f64()),
            pct(r.analysis_overhead_fraction() * 100.0),
        ]);
    }
    out.push(t);

    // The dmax knife edge needs a workload whose *fault* stream keeps the
    // positional interleave (three lanes, pure Eq. 3): STREAM's fault
    // stream linearises once batching kicks in, hiding the effect.
    let mut t = AsciiTable::new(
        "Sweep: max stride dmax (3 interleaved lanes, no read-ahead floor)",
        &["dmax", "fault requests", "prefetched", "mean S"],
    );
    for dmax in [1usize, 2, 3, 4, 6] {
        use ampom_core::experiment::WorkloadSpec;
        let r = Experiment::new(Scheme::Ampom)
            .workload(WorkloadSpec::Interleaved {
                streams: 3,
                stream_pages: if quick { 100 } else { 1000 },
                cpu: SimDuration::from_micros(15),
            })
            .ampom(AmpomConfig {
                dmax,
                baseline_readahead: 0,
                ..AmpomConfig::default()
            })
            .run()
            .expect("dmax sweep experiment is valid");
        t.row(vec![
            dmax.to_string(),
            r.fault_requests.to_string(),
            r.pages_prefetched.to_string(),
            format!("{:.3}", r.prefetch_stats.scores.mean()),
        ]);
    }
    out.push(t);

    let mut t = AsciiTable::new(
        format!("Sweep: baseline read-ahead (RandomAccess {mb} MB)"),
        &[
            "baseline",
            "fault requests",
            "prefetched",
            "accuracy",
            "total (s)",
        ],
    );
    for baseline in [0u64, 4, 8, 16, 32, 64] {
        let r = run(
            Kernel::RandomAccess,
            AmpomConfig {
                baseline_readahead: baseline,
                ..AmpomConfig::default()
            },
        );
        t.row(vec![
            baseline.to_string(),
            r.fault_requests.to_string(),
            r.pages_prefetched.to_string(),
            pct(r.prefetch_accuracy() * 100.0),
            secs(r.total_time.as_secs_f64()),
        ]);
    }
    out.push(t);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_vm_quick_renders() {
        let t = ext_vm(true);
        assert_eq!(t.len(), 6);
        let s = t.render();
        assert!(s.contains("per-process"));
    }

    #[test]
    fn ext_cluster_quick_renders() {
        let t = ext_cluster(true);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn ext_ptrans_shows_partial_prevention() {
        let t = ext_ptrans(true);
        assert_eq!(t.len(), 4);
        assert!(t.render().contains("STREAM ref"));
    }

    #[test]
    fn ext_interactive_quick_renders() {
        let t = ext_interactive(true);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ext_accuracy_quick_renders() {
        let t = ext_accuracy(true);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn ext_roundtrip_quick_renders() {
        let t = ext_roundtrip(true);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn ext_syscall_quick_renders() {
        let t = ext_syscall(true);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn ext_gossip_quick_renders() {
        let t = ext_gossip(true);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn ext_timing_quick_renders() {
        let t = ext_timing(true);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn ext_locality_quick_renders() {
        let t = ext_locality(true);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn ext_hpl_quick_renders() {
        let t = ext_hpl(true);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn timeline_quick_renders() {
        let t = timeline(true);
        assert!(t.len() > 3);
    }

    #[test]
    fn ext_pressure_quick_renders() {
        let t = ext_pressure(true);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn sweep_quick_renders() {
        let tables = sweep(true);
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| !t.is_empty()));
    }
}
