//! `hpcc-repro profile` — one kernel/scheme pair under full
//! observability.
//!
//! Runs the pair with tracing enabled, prints a phase-attribution table
//! (where did the run's time go: freeze, compute, fault stalls,
//! recovery, …) and the top-k hottest pages, and emits two
//! machine-readable artifacts:
//!
//! * **JSONL** (`--json PATH`): one `run` header line, one `phase` line
//!   per phase, one `overlap` diagnostic line, then one `event` line per
//!   trace event — the schema of DESIGN.md §11.
//! * **Prometheus text** (`--prom PATH`): every [`MetricSource`] the run
//!   touched, rendered by [`MetricsRegistry::render_prometheus`].
//!
//! The command *self-verifies* before exiting: the JSONL it just emitted
//! must parse line-by-line with [`ampom_obs::parse`], and the phase times
//! must sum to the reported total within 1%. CI runs this on a small
//! kernel, so a regression in either the writer or the phase accounting
//! fails the build.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

use ampom_core::experiment::Experiment;
use ampom_core::migration::Scheme;
use ampom_core::RunReport;
use ampom_obs::{parse, trace_event_json, JsonWriter, MetricSource, MetricsRegistry};
use ampom_sim::trace::TraceKind;
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::Kernel;

use crate::matrix::MATRIX_SEED;
use crate::report::{pct, secs, AsciiTable};

/// Phase times must sum to the run total within this fraction (the CI
/// acceptance bound; simulated runs are in fact exact).
pub const PHASE_SUM_TOLERANCE: f64 = 0.01;

/// What `hpcc-repro profile` should run and emit.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// The kernel to run.
    pub kernel: Kernel,
    /// The migration scheme.
    pub scheme: Scheme,
    /// Small problem size (4 MB instead of 32 MB).
    pub quick: bool,
    /// Number of hottest pages to print.
    pub top: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            kernel: Kernel::Stream,
            scheme: Scheme::Ampom,
            quick: false,
            top: 10,
        }
    }
}

/// Everything one profiled run produced.
#[derive(Debug)]
pub struct Profile {
    /// The run's measurements (trace included).
    pub report: RunReport,
    /// The JSONL artifact (header + phases + events).
    pub jsonl: String,
    /// The Prometheus-style text dump.
    pub prometheus: String,
}

/// Runs the pair and builds both artifacts.
pub fn run_profile(opts: &ProfileOptions) -> Result<Profile, String> {
    let size = ProblemSize {
        problem: 0,
        memory_mb: if opts.quick { 4 } else { 32 },
    };
    let report = Experiment::new(opts.scheme)
        .kernel(opts.kernel, size)
        .workload_seed(MATRIX_SEED)
        .trace()
        .run()
        .map_err(|e| format!("profile run failed: {e}"))?;

    let mut jsonl = String::new();
    let mut w = JsonWriter::object();
    w.field_str("type", "run");
    w.field_str("kernel", opts.kernel.name());
    w.field_str("scheme", opts.scheme.name());
    w.field_str("workload", &report.workload);
    w.field_u64("memory_mb", report.program_mb);
    w.field_u64("total_ns", report.total_time.as_nanos());
    w.field_f64("total_seconds", report.total_time.as_secs_f64());
    w.field_u64("faults", report.faults_total);
    w.field_u64("pages_prefetched", report.pages_prefetched);
    let _ = writeln!(jsonl, "{}", w.close());
    jsonl.push_str(&report.phases.jsonl());
    for e in report.trace.events() {
        let _ = writeln!(jsonl, "{}", trace_event_json(e));
    }

    let mut reg = MetricsRegistry::new();
    report.export_metrics(&mut reg);
    let prometheus = reg.render_prometheus();

    Ok(Profile {
        report,
        jsonl,
        prometheus,
    })
}

/// Verifies the emitted JSONL: every line parses, the `run` header is
/// present, and the phase lines sum to the header's total within
/// [`PHASE_SUM_TOLERANCE`].
pub fn verify_jsonl(jsonl: &str) -> Result<(), String> {
    let mut total_ns: Option<u64> = None;
    let mut phase_sum_ns: u64 = 0;
    let mut phase_lines = 0u64;
    for (i, line) in jsonl.lines().enumerate() {
        let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = v
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("line {}: missing \"type\"", i + 1))?;
        match kind {
            "run" => {
                total_ns = Some(
                    v.get("total_ns")
                        .and_then(|t| t.as_u64())
                        .ok_or_else(|| format!("line {}: run header lacks total_ns", i + 1))?,
                );
            }
            "phase" => {
                phase_sum_ns += v
                    .get("ns")
                    .and_then(|t| t.as_u64())
                    .ok_or_else(|| format!("line {}: phase lacks ns", i + 1))?;
                phase_lines += 1;
            }
            "overlap" | "event" => {}
            other => return Err(format!("line {}: unknown type {other:?}", i + 1)),
        }
    }
    let total = total_ns.ok_or("no run header line")?;
    if phase_lines == 0 {
        return Err("no phase lines".into());
    }
    let drift = phase_sum_ns.abs_diff(total) as f64;
    let bound = total as f64 * PHASE_SUM_TOLERANCE;
    if drift > bound {
        return Err(format!(
            "phase times sum to {phase_sum_ns} ns but the run took {total} ns \
             (drift {drift} ns exceeds the {:.0}% bound)",
            PHASE_SUM_TOLERANCE * 100.0
        ));
    }
    Ok(())
}

/// The phase-attribution table the command prints.
pub fn phase_table(opts: &ProfileOptions, report: &RunReport) -> AsciiTable {
    let mut t = AsciiTable::new(
        format!(
            "profile: {} under {} ({} MB)",
            opts.kernel,
            opts.scheme.name(),
            report.program_mb
        ),
        &["phase", "time (s)", "share"],
    );
    let total = report.total_time.as_secs_f64();
    for (name, d) in report.phases.rows() {
        let s = d.as_secs_f64();
        t.row(vec![
            name.to_string(),
            secs(s),
            if total > 0.0 {
                pct(100.0 * s / total)
            } else {
                pct(0.0)
            },
        ]);
    }
    t.row(vec![
        "total".into(),
        secs(total),
        pct(if total > 0.0 { 100.0 } else { 0.0 }),
    ]);
    t.row(vec![
        "prefetch-overlap*".into(),
        secs(report.phases.prefetch_overlap.as_secs_f64()),
        "(diagnostic)".into(),
    ]);
    t
}

/// The top-k hottest pages by fault count, from the run's trace.
pub fn hottest_pages(report: &RunReport, k: usize) -> AsciiTable {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for e in report.trace.events() {
        if e.kind == TraceKind::PageFault {
            if let Some(page) = e.data.page {
                *counts.entry(page).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(u64, u64)> = counts.into_iter().collect();
    // Highest count first; page number breaks ties deterministically.
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut t = AsciiTable::new(
        format!("top {k} hottest pages (by remote faults)"),
        &["page", "faults"],
    );
    for (page, n) in ranked.into_iter().take(k) {
        t.row(vec![page.to_string(), n.to_string()]);
    }
    t
}

/// Writes `contents` to `path`, mapping errors to a message.
pub fn write_artifact(path: &Path, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("could not write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ProfileOptions {
        ProfileOptions {
            quick: true,
            ..ProfileOptions::default()
        }
    }

    #[test]
    fn profile_emits_verifiable_jsonl() {
        let p = run_profile(&quick_opts()).expect("profile");
        verify_jsonl(&p.jsonl).expect("self-verification");
        // The trace actually made it into the artifact.
        assert!(p.jsonl.lines().any(|l| l.contains("\"type\":\"event\"")));
        // The Prometheus dump follows the naming convention.
        assert!(p.prometheus.contains("ampom_run_total_seconds"));
        assert!(p.prometheus.contains("ampom_phase_compute_seconds"));
    }

    #[test]
    fn phase_sums_are_exact_for_simulated_runs() {
        let p = run_profile(&quick_opts()).expect("profile");
        assert_eq!(
            p.report.phases.total(),
            p.report.total_time,
            "the simulated phase partition is exact, not merely within tolerance"
        );
    }

    #[test]
    fn verification_rejects_drifting_phases() {
        let good = "{\"type\":\"run\",\"total_ns\":1000}\n\
                    {\"type\":\"phase\",\"phase\":\"compute\",\"ns\":995}\n";
        verify_jsonl(good).expect("0.5% drift is within the 1% bound");
        let bad = "{\"type\":\"run\",\"total_ns\":1000}\n\
                   {\"type\":\"phase\",\"phase\":\"compute\",\"ns\":900}\n";
        assert!(verify_jsonl(bad).is_err(), "10% drift must fail");
        assert!(verify_jsonl("not json\n").is_err());
        assert!(verify_jsonl("{\"type\":\"phase\",\"ns\":1}\n").is_err());
    }

    #[test]
    fn hottest_pages_ranks_by_fault_count() {
        let p = run_profile(&quick_opts()).expect("profile");
        let t = hottest_pages(&p.report, 5);
        assert!(!t.is_empty(), "a migrant run always faults at least once");
    }
}
