//! # ampom-hpcc — the experiment harness
//!
//! Regenerates every table and figure of the AMPoM paper's evaluation
//! (§5) from the simulated system:
//!
//! | id | content | function |
//! |----|---------|----------|
//! | Table 1 | HPCC problem/memory sizes | [`experiments::table1`] |
//! | Fig. 2 | migration timelines | [`experiments::fig2`] |
//! | Fig. 4 | kernel locality quadrant | [`experiments::fig4`] |
//! | Fig. 5 | migration freeze times | [`experiments::fig5`] |
//! | Fig. 6 | total execution times | [`experiments::fig6`] |
//! | Fig. 7 | page-fault requests | [`experiments::fig7`] |
//! | Fig. 8 | prefetch aggressiveness | [`experiments::fig8`] |
//! | Fig. 9 | network adaptation | [`experiments::fig9`] |
//! | Fig. 10 | small working sets | [`experiments::fig10`] |
//! | Fig. 11 | analysis overhead | [`experiments::fig11`] |
//!
//! The [`live`] module drives the same experiments over real sockets
//! (`hpcc-repro live --loopback` / `hpcc-repro calibrate`), reporting
//! simulated-vs-live divergence on the measured link.
//!
//! Beyond the paper, [`extensions`] quantifies the §7 future-work items
//! (VM migration, cluster-scale balancing), the algorithm's stride-window
//! limits (PTRANS), the §5.6 interactive scenario, prefetch accuracy, and
//! parameter-sensitivity sweeps.
//!
//! The [`profile`] module backs `hpcc-repro profile`: one kernel/scheme
//! pair under full observability — phase attribution, hottest pages,
//! self-verified JSONL and a Prometheus-style metrics dump.
//!
//! The [`multisweep`] module backs `hpcc-repro multisweep`: N
//! concurrent migrants sharing one deputy — per-migrant slowdown,
//! service-share fairness and deputy saturation, in simulation and over
//! live loopback sockets.
//!
//! The [`chaos_cmd`] module backs `hpcc-repro chaos`: the named chaos
//! scenarios of `ampom_core::chaos` over a migrant panel — per-migrant
//! SLO verdicts, admission-control shed counters, schema-versioned JSONL
//! run facts and a `BENCH_chaos.json` perf fact.
//!
//! The [`lifecycle_cmd`] module backs `hpcc-repro lifecycle`: the full
//! bidirectional page lifecycle (out → dirty → writeback → return) over
//! a size × link-condition panel plus a live loopback leg — per-phase
//! breakdowns, conservation verdicts, JSONL facts and a
//! `BENCH_lifecycle.json` perf fact.
//!
//! The [`deputybench`] module backs `hpcc-repro deputybench`: a C10K
//! session sweep against one loopback deputy in both wait modes
//! (readiness-driven reactor vs the sleep-poll scan it replaced) —
//! pages/s, completion-latency tails, idle-CPU cost, an exactly-once
//! page audit, JSONL facts and the committed `BENCH_deputy.json` fact
//! with a `--baseline` regression gate.
//!
//! The [`clusterlife`] module backs `hpcc-repro clusterlife`: the
//! cluster-life engine (Poisson arrivals over the Table 1 kernel mix,
//! windowed gossip at 300–1000 nodes, remigration and home-return
//! chains) run at several thread counts per cell with a fingerprint
//! determinism gate — JSONL facts and the committed `BENCH_cluster.json`
//! fact with a `--baseline` regression gate.
//!
//! The `hpcc-repro` binary drives these; see `hpcc-repro --help`.

pub mod bakeoff;
pub mod chaos_cmd;
pub mod checks;
pub mod clusterlife;
pub mod deputybench;
pub mod experiments;
pub mod extensions;
pub mod lifecycle_cmd;
pub mod live;
pub mod matrix;
pub mod multisweep;
pub mod profile;
pub mod report;
