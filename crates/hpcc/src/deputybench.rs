//! `hpcc-repro deputybench` — saturate one deputy with a C10K-shaped
//! session sweep and report the serving path's throughput and tail.
//!
//! Each cell binds a fresh loopback [`DeputyServer`] in one wait mode
//! (`reactor` — readiness-driven `poll(2)` shards — or `sleep-poll`, the
//! portable 1 ms scan loop the reactor replaced), measures the process's
//! *idle* CPU before any migrant connects, then drives N concurrent
//! sessions from one multiplexed non-blocking client loop.
//!
//! The load is C10K-shaped, not embarrassingly saturated: all N sessions
//! stay connected for the whole cell, but only a bounded window
//! (`ACTIVE_WINDOW`) is faulting at any instant — a deputy's real
//! regime, where most migrants compute and a few page-fault. This is
//! exactly the shape that separates the wait disciplines: a
//! readiness-driven shard pays one `poll(2)` per pass regardless of how
//! many sockets are quiet, while the scan loop pays one wasted `read(2)`
//! per *connected* session per pass (measured ~13x more expensive per
//! pass at 1k idle sockets), so its throughput decays as sessions are
//! added even though the active work is constant.
//!
//! An active session keeps exactly one 16-page request outstanding and
//! the driver accounts each page against the request that named it, so
//! the sweep doubles as an exactly-once audit: a duplicate, lost or
//! corrupt page fails the run's self-verification.
//!
//! A cell produces a table row, a schema-stamped `deputy-cell` JSONL fact
//! (append-friendly, parsed back by [`verify_facts`] before the command
//! exits), and an entry in `BENCH_deputy.json` — the repo's committed
//! perf-trajectory fact for the deputy serving path. `--baseline PATH`
//! compares the fresh run against a committed fact and fails the command
//! on a >20 % pages/s regression in any matching (mode, sessions) cell.
//!
//! Session counts past the file-descriptor limit are truncated loudly
//! (each session costs two descriptors on loopback), never silently.

use std::time::{Duration, Instant};

use ampom_core::slo::QuantileSketch;
use ampom_core::AmpomError;
use ampom_mem::page::PageId;
use ampom_obs::{parse, JsonValue, JsonWriter, MetricsRegistry};
use ampom_rpc::{DeputyServer, Endpoint, Frame, MigrantClient, ServerConfig};
use ampom_sim::time::SimDuration;

use crate::chaos_cmd::env_seed;
use crate::report::AsciiTable;

/// Version stamped on every JSONL fact line; bump on breaking changes.
pub const FACTS_SCHEMA: u64 = 1;

/// Pages per in-flight request: one demand page plus a 15-page prefetch
/// zone, the shape the AMPoM window analysis emits on a striding kernel.
const REQ_PAGES: u64 = 16;

/// Sessions faulting concurrently. The rest stay connected but quiet —
/// the population whose mere existence the scan loop pays for and the
/// reactor does not. One, because that is the openMosix fault model: a
/// migrant's demand faults are serialized by the faulting process
/// itself (fault → request → reply → resume), so a mostly-quiet deputy
/// sees one fault at a time against N held-open sessions. It is also
/// the regime that exposes the old loop: each fault eats the 1 ms idle
/// nap plus a read()-scan of every connected socket.
const ACTIVE_WINDOW: usize = 1;

/// The sleep-poll fallback is measured only up to this many sessions —
/// past it the 1 ms scan loop is the known-bad configuration the reactor
/// exists to replace, and the cells just burn CI minutes.
const SLEEP_POLL_MAX: usize = 1000;

/// Address-space span every session handshakes with; request windows are
/// placed inside it.
const IMAGE_PAGES: u64 = 1 << 20;

/// What to run.
#[derive(Debug, Clone)]
pub struct DeputyBenchOptions {
    /// Session-count panel; `None` picks the quick/full default.
    pub sessions: Option<Vec<usize>>,
    /// Pages each session fetches; `None` picks the quick/full default.
    pub pages_per_session: Option<u64>,
    /// Quick mode: the smaller panel and per-session volume.
    pub quick: bool,
    /// Seed placing each session's request window (`AMPOM_FAULT_SEED`).
    pub seed: u64,
}

impl Default for DeputyBenchOptions {
    fn default() -> Self {
        DeputyBenchOptions {
            sessions: None,
            pages_per_session: None,
            quick: false,
            seed: env_seed(),
        }
    }
}

impl DeputyBenchOptions {
    fn panel(&self) -> Vec<usize> {
        match &self.sessions {
            Some(s) => s.clone(),
            None if self.quick => vec![64, 256, 1000],
            None => vec![64, 256, 1000, 4000, 10000],
        }
    }

    fn pages(&self) -> u64 {
        self.pages_per_session
            .unwrap_or(if self.quick { 128 } else { 512 })
    }
}

/// One (mode, sessions) measurement.
#[derive(Debug, Clone)]
pub struct DeputyCell {
    /// `"reactor"` or `"sleep-poll"`.
    pub mode: &'static str,
    /// Sessions requested for the cell.
    pub sessions_requested: usize,
    /// Sessions that actually connected (fd-limit truncation shrinks it).
    pub sessions: usize,
    /// Pages each session fetched.
    pub pages_per_session: u64,
    /// Total pages delivered across the cell.
    pub pages_total: u64,
    /// Serving-phase wall time (connect phase excluded).
    pub elapsed: Duration,
    /// Pages delivered per second of serving phase.
    pub pages_per_sec: f64,
    /// Request-completion latency quantiles.
    pub p50: Duration,
    pub p99: Duration,
    pub max: Duration,
    /// Pages delivered that no outstanding request named.
    pub duplicate_pages: u64,
    /// Pages whose payload failed integrity verification.
    pub corrupt_pages: u64,
    /// Frames that were neither page replies nor expected.
    pub stray_frames: u64,
    /// Process CPU fraction over the pre-connect idle window
    /// (`/proc/self/stat`; `None` off Linux).
    pub idle_cpu_frac: Option<f64>,
    /// Deputy-side counters after the cell drained.
    pub write_stalls: u64,
    pub vectored_writes: u64,
    pub peak_write_backlog_bytes: u64,
}

/// Everything the `deputybench` command produced.
#[derive(Debug)]
pub struct DeputyBenchRun {
    pub cells: Vec<DeputyCell>,
    /// Schema-versioned JSONL run facts.
    pub jsonl: String,
    /// `ampom_deputybench_*` Prometheus-style dump.
    pub prometheus: String,
    /// `BENCH_deputy.json` contents.
    pub bench_json: String,
}

/// Cumulative process CPU in clock ticks (utime + stime), Linux only.
#[cfg(target_os = "linux")]
fn process_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields after the parenthesised comm: state is field 3, utime 14,
    // stime 15 — indices 11 and 12 of the post-comm split.
    let rest = stat.rsplit(')').next()?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

#[cfg(not(target_os = "linux"))]
fn process_cpu_ticks() -> Option<u64> {
    None
}

/// CPU fraction this process burns over an idle window of `dur` — the
/// deputy is bound but serving nobody, so this is the cost of its wait
/// discipline (near zero for the reactor, the scan tax for sleep-poll).
fn idle_cpu_fraction(dur: Duration) -> Option<f64> {
    let before = process_cpu_ticks()?;
    let started = Instant::now();
    std::thread::sleep(dur);
    let after = process_cpu_ticks()?;
    let elapsed = started.elapsed().as_secs_f64();
    if elapsed <= 0.0 {
        return None;
    }
    // USER_HZ is 100 on every Linux configuration Rust targets.
    Some((after.saturating_sub(before)) as f64 / 100.0 / elapsed)
}

/// Driver-side state for one migrant session.
struct BenchSession {
    client: MigrantClient,
    /// First page id of this session's request window.
    base: u64,
    /// Pages requested so far (== window offset of the next request).
    requested: u64,
    /// Pages of the current request not yet delivered.
    outstanding: Vec<PageId>,
    sent_at: Instant,
    done: bool,
}

impl BenchSession {
    /// Sends the next 16-page (or remainder) request.
    fn send_next(&mut self, target: u64) -> Result<(), AmpomError> {
        let n = REQ_PAGES.min(target - self.requested);
        let ids: Vec<PageId> = (0..n)
            .map(|i| PageId(self.base + self.requested + i))
            .collect();
        self.client
            .send_request(Some(ids[0]), &ids[1..])
            .map_err(|e| AmpomError::Transport(e.to_string()))?;
        self.outstanding = ids;
        self.requested += n;
        self.sent_at = Instant::now();
        Ok(())
    }
}

/// Books one delivered page against the session's outstanding request.
fn book_page(
    s: &mut BenchSession,
    page: PageId,
    data: &[u8],
    cell: &mut DeputyCell,
    sketch: &mut QuantileSketch,
    target: u64,
) -> Result<(), AmpomError> {
    if !ampom_rpc::frame::payload_matches(page, data) {
        cell.corrupt_pages += 1;
    }
    match s.outstanding.iter().position(|p| *p == page) {
        Some(at) => {
            s.outstanding.swap_remove(at);
            cell.pages_total += 1;
        }
        None => {
            cell.duplicate_pages += 1;
            return Ok(());
        }
    }
    if s.outstanding.is_empty() {
        let ns = u64::try_from(s.sent_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
        sketch.record(SimDuration::from_nanos(ns));
        if s.requested < target {
            s.send_next(target)?;
        } else {
            s.done = true;
        }
    }
    Ok(())
}

/// Drains every frame a session's socket has buffered right now.
fn drain_session(
    s: &mut BenchSession,
    cell: &mut DeputyCell,
    sketch: &mut QuantileSketch,
    target: u64,
) -> Result<bool, AmpomError> {
    let mut progressed = false;
    loop {
        match s.client.try_recv() {
            Ok(Some(Frame::PageReply { page, data, .. })) => {
                progressed = true;
                book_page(s, page, &data, cell, sketch, target)?;
            }
            Ok(Some(Frame::PageBatchReply { pages, .. })) => {
                progressed = true;
                for (page, data) in pages {
                    book_page(s, page, &data, cell, sketch, target)?;
                }
            }
            Ok(Some(_)) => cell.stray_frames += 1,
            Ok(None) => return Ok(progressed),
            Err(e) => return Err(AmpomError::Transport(e.to_string())),
        }
    }
}

/// Runs one (mode, sessions) cell against a fresh loopback deputy.
fn run_cell(
    mode: &'static str,
    reactor: bool,
    sessions: usize,
    pages_per_session: u64,
    seed: u64,
) -> Result<DeputyCell, AmpomError> {
    let server = DeputyServer::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            reactor,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr().to_string();

    let mut cell = DeputyCell {
        mode,
        sessions_requested: sessions,
        sessions: 0,
        pages_per_session,
        pages_total: 0,
        elapsed: Duration::ZERO,
        pages_per_sec: 0.0,
        p50: Duration::ZERO,
        p99: Duration::ZERO,
        max: Duration::ZERO,
        duplicate_pages: 0,
        corrupt_pages: 0,
        stray_frames: 0,
        idle_cpu_frac: None,
        write_stalls: 0,
        vectored_writes: 0,
        peak_write_backlog_bytes: 0,
    };

    // Connect phase: blocking handshakes, then flip non-blocking for the
    // multiplexed serving phase. A failed dial past the first session is
    // the descriptor limit — truncate loudly and measure what connected.
    let mut pool: Vec<BenchSession> = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let endpoint = Endpoint::tcp(addr.clone());
        let mut client = match MigrantClient::connect(endpoint, IMAGE_PAGES, 2) {
            Ok(c) => c,
            Err(e) if i > 0 => {
                eprintln!(
                    "deputybench: {mode}/{sessions}: session {i} failed to \
                     connect ({e}); truncating the cell to {i} sessions \
                     (descriptor limit?)"
                );
                break;
            }
            Err(e) => return Err(AmpomError::Transport(e.to_string())),
        };
        client
            .set_nonblocking(true)
            .map_err(|e| AmpomError::Transport(e.to_string()))?;
        // Windows wrap inside the image; consecutive ids keep every
        // request's pages distinct, so coalescing never hides a page.
        let base = (seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i as u64 * 8191))
            % (IMAGE_PAGES - pages_per_session);
        pool.push(BenchSession {
            client,
            base,
            requested: 0,
            outstanding: Vec::new(),
            sent_at: Instant::now(),
            done: false,
        });
    }
    cell.sessions = pool.len();

    // Idle probe: every session is connected but nobody faults, which
    // is the steady state of a mostly-quiet deputy. Whatever CPU the
    // process burns now is pure wait-discipline cost — near zero for
    // the parked reactor, nap-plus-scan for the legacy loop.
    // One full second: utime+stime tick at USER_HZ (10 ms), so a short
    // probe cannot resolve single-digit percentages.
    cell.idle_cpu_frac = idle_cpu_fraction(Duration::from_millis(1000));

    // Serving phase: every session stays connected, but only
    // ACTIVE_WINDOW fault concurrently; a session that finishes its
    // whole window hands its slot to the next quiet one. The driver
    // parks in poll(2) where available — registering only the active
    // sessions — and scans otherwise. An active session's tiny request
    // frame is only sent when its pipe is fully drained, so the
    // non-blocking send cannot hit a full buffer.
    let target = pages_per_session;
    let mut sketch = QuantileSketch::new();
    let started = Instant::now();
    let mut next_to_start = 0usize;
    while next_to_start < pool.len().min(ACTIVE_WINDOW) {
        pool[next_to_start].send_next(target)?;
        next_to_start += 1;
    }
    let mut remaining = pool.len();
    let deadline = started + Duration::from_secs(600);
    let mut finished: Vec<usize> = Vec::new();
    #[cfg(unix)]
    let mut poller = ampom_rpc::Poller::new();
    while remaining > 0 {
        if Instant::now() > deadline {
            return Err(AmpomError::Transport(format!(
                "deputybench {mode}/{sessions}: stalled with {remaining} \
                 sessions unfinished"
            )));
        }
        finished.clear();
        #[cfg(unix)]
        {
            poller.clear();
            let mut slots: Vec<usize> = Vec::with_capacity(ACTIVE_WINDOW);
            for (i, s) in pool.iter().enumerate() {
                if s.requested > 0 && !s.done {
                    poller.push(s.client.as_raw_fd(), true, false);
                    slots.push(i);
                }
            }
            poller
                .wait(Duration::from_millis(50))
                .map_err(|e| AmpomError::Transport(e.to_string()))?;
            for (slot, &i) in slots.iter().enumerate() {
                if poller.readable(slot) {
                    let s = &mut pool[i];
                    drain_session(s, &mut cell, &mut sketch, target)?;
                    if s.done {
                        finished.push(i);
                    }
                }
            }
        }
        #[cfg(not(unix))]
        {
            let mut progressed = false;
            for i in 0..pool.len() {
                let s = &mut pool[i];
                if s.requested == 0 || s.done {
                    continue;
                }
                progressed |= drain_session(s, &mut cell, &mut sketch, target)?;
                if s.done {
                    finished.push(i);
                }
            }
            if !progressed {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Retired sessions hand their active slot to the next quiet one.
        for _ in &finished {
            remaining -= 1;
            if next_to_start < pool.len() {
                pool[next_to_start].send_next(target)?;
                next_to_start += 1;
            }
        }
    }
    cell.elapsed = started.elapsed();
    let secs = cell.elapsed.as_secs_f64();
    cell.pages_per_sec = if secs > 0.0 {
        cell.pages_total as f64 / secs
    } else {
        0.0
    };
    cell.p50 = Duration::from_nanos(sketch.quantile(0.50).as_nanos());
    cell.p99 = Duration::from_nanos(sketch.quantile(0.99).as_nanos());
    cell.max = Duration::from_nanos(sketch.max().as_nanos());

    drop(pool);
    let stats = server.stats();
    cell.write_stalls = stats.write_stalls;
    cell.vectored_writes = stats.vectored_writes;
    cell.peak_write_backlog_bytes = stats.peak_write_backlog_bytes;
    server.shutdown();
    Ok(cell)
}

/// Runs the full sweep: the reactor at every panel entry, the sleep-poll
/// fallback up to `SLEEP_POLL_MAX` sessions for the before/after
/// comparison.
pub fn run_deputybench(opts: &DeputyBenchOptions) -> Result<DeputyBenchRun, AmpomError> {
    let panel = opts.panel();
    let pages = opts.pages();
    let mut cells = Vec::new();
    for &n in &panel {
        eprintln!("deputybench: reactor, {n} sessions x {pages} pages...");
        cells.push(run_cell("reactor", true, n, pages, opts.seed)?);
    }
    for &n in panel.iter().filter(|&&n| n <= SLEEP_POLL_MAX) {
        eprintln!("deputybench: sleep-poll, {n} sessions x {pages} pages...");
        cells.push(run_cell("sleep-poll", false, n, pages, opts.seed)?);
    }
    let dropped: Vec<usize> = panel
        .iter()
        .copied()
        .filter(|&n| n > SLEEP_POLL_MAX)
        .collect();
    if !dropped.is_empty() {
        eprintln!(
            "deputybench: sleep-poll skipped at {dropped:?} sessions \
             (bounded to {SLEEP_POLL_MAX}; the scan loop is the known-bad \
             configuration under measurement)"
        );
    }

    let jsonl = render_facts(&cells, opts.seed);
    let prometheus = render_metrics(&cells);
    let bench_json = render_bench(&cells, opts.seed, pages);
    Ok(DeputyBenchRun {
        cells,
        jsonl,
        prometheus,
        bench_json,
    })
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One `deputy-cell` JSONL line per cell under a `deputybench-run`
/// header, every line schema-stamped.
fn render_facts(cells: &[DeputyCell], seed: u64) -> String {
    let mut lines = Vec::new();
    let mut header = JsonWriter::object();
    header.field_str("type", "deputybench-run");
    header.field_u64("schema", FACTS_SCHEMA);
    header.field_u64("seed", seed);
    header.field_u64("cells", cells.len() as u64);
    lines.push(header.close());
    for c in cells {
        let mut w = JsonWriter::object();
        w.field_str("type", "deputy-cell");
        w.field_u64("schema", FACTS_SCHEMA);
        w.field_str("mode", c.mode);
        w.field_u64("sessions", c.sessions as u64);
        w.field_u64("sessions_requested", c.sessions_requested as u64);
        w.field_u64("pages_per_session", c.pages_per_session);
        w.field_u64("pages_total", c.pages_total);
        w.field_f64("elapsed_s", c.elapsed.as_secs_f64());
        w.field_f64("pages_per_sec", c.pages_per_sec);
        w.field_f64("p50_ms", ms(c.p50));
        w.field_f64("p99_ms", ms(c.p99));
        w.field_f64("max_ms", ms(c.max));
        w.field_u64("duplicate_pages", c.duplicate_pages);
        w.field_u64("corrupt_pages", c.corrupt_pages);
        w.field_u64("stray_frames", c.stray_frames);
        if let Some(f) = c.idle_cpu_frac {
            w.field_f64("idle_cpu_frac", f);
        }
        w.field_u64("write_stalls", c.write_stalls);
        w.field_u64("vectored_writes", c.vectored_writes);
        w.field_u64("peak_write_backlog_bytes", c.peak_write_backlog_bytes);
        lines.push(w.close());
    }
    lines.join("\n") + "\n"
}

/// `ampom_deputybench_<mode>_s<sessions>_*` gauges.
fn render_metrics(cells: &[DeputyCell]) -> String {
    let mut reg = MetricsRegistry::new();
    for c in cells {
        let key = format!("{}_s{}", c.mode.replace('-', "_"), c.sessions_requested);
        reg.export_gauge(
            &format!("ampom_deputybench_{key}_pages_per_sec"),
            "deputy serving throughput at this session count",
            c.pages_per_sec,
        );
        reg.export_gauge(
            &format!("ampom_deputybench_{key}_p99_ms"),
            "p99 request-completion latency, milliseconds",
            ms(c.p99),
        );
        reg.export_counter(
            &format!("ampom_deputybench_{key}_duplicate_pages_total"),
            "pages delivered that no outstanding request named",
            c.duplicate_pages,
        );
    }
    reg.render_prometheus()
}

/// The `BENCH_deputy.json` fact: one compact cell entry per measurement.
fn render_bench(cells: &[DeputyCell], seed: u64, pages: u64) -> String {
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            let mut w = JsonWriter::object();
            w.field_str("mode", c.mode);
            w.field_u64("sessions", c.sessions as u64);
            w.field_f64("pages_per_sec", c.pages_per_sec);
            w.field_f64("p99_ms", ms(c.p99));
            w.close()
        })
        .collect();
    let mut w = JsonWriter::object();
    w.field_str("bench", "deputy");
    w.field_u64("schema", FACTS_SCHEMA);
    w.field_u64("seed", seed);
    w.field_u64("pages_per_session", pages);
    w.field_raw("cells", &format!("[{}]", entries.join(",")));
    w.close() + "\n"
}

/// Self-verification: every fact line parses, carries the schema stamp,
/// the header accounts for every cell, and — the exactly-once audit —
/// no cell saw a duplicate or corrupt page or finished empty.
pub fn verify_facts(jsonl: &str) -> Result<(), String> {
    let mut declared: Option<u64> = None;
    let mut cell_lines = 0u64;
    for (i, line) in jsonl.lines().enumerate() {
        let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_u64())
            .ok_or_else(|| format!("line {}: missing \"schema\"", i + 1))?;
        if schema != FACTS_SCHEMA {
            return Err(format!("line {}: schema {schema} != {FACTS_SCHEMA}", i + 1));
        }
        match v.get("type").and_then(|t| t.as_str()) {
            Some("deputybench-run") => {
                declared = Some(
                    v.get("cells")
                        .and_then(|c| c.as_u64())
                        .ok_or_else(|| format!("line {}: header lacks cells", i + 1))?,
                );
            }
            Some("deputy-cell") => {
                cell_lines += 1;
                let u64_field = |key: &str| {
                    v.get(key)
                        .and_then(|x| x.as_u64())
                        .ok_or_else(|| format!("line {}: cell lacks {key}", i + 1))
                };
                if u64_field("duplicate_pages")? != 0 {
                    return Err(format!("line {}: duplicate pages delivered", i + 1));
                }
                if u64_field("corrupt_pages")? != 0 {
                    return Err(format!("line {}: corrupt pages delivered", i + 1));
                }
                let sessions = u64_field("sessions")?;
                let expected = sessions * u64_field("pages_per_session")?;
                if u64_field("pages_total")? != expected {
                    return Err(format!(
                        "line {}: pages_total != sessions x pages_per_session",
                        i + 1
                    ));
                }
                if v.get("pages_per_sec")
                    .and_then(|p| p.as_f64())
                    .unwrap_or(0.0)
                    <= 0.0
                {
                    return Err(format!("line {}: non-positive pages_per_sec", i + 1));
                }
            }
            other => return Err(format!("line {}: unknown fact type {other:?}", i + 1)),
        }
    }
    match declared {
        None => Err("no deputybench-run header line".into()),
        Some(c) if c != cell_lines => Err(format!(
            "header declares {c} cells but the stream has {cell_lines}"
        )),
        Some(_) => Ok(()),
    }
}

/// Pulls `(mode, sessions) -> pages_per_sec` out of a `BENCH_deputy.json`
/// document.
fn bench_cells(doc: &JsonValue) -> Result<Vec<(String, u64, f64)>, String> {
    let cells = match doc.get("cells") {
        Some(JsonValue::Arr(items)) => items,
        _ => return Err("bench fact lacks a cells array".into()),
    };
    cells
        .iter()
        .map(|c| {
            let mode = c
                .get("mode")
                .and_then(|m| m.as_str())
                .ok_or("cell lacks mode")?
                .to_string();
            let sessions = c
                .get("sessions")
                .and_then(|s| s.as_u64())
                .ok_or("cell lacks sessions")?;
            let pps = c
                .get("pages_per_sec")
                .and_then(|p| p.as_f64())
                .ok_or("cell lacks pages_per_sec")?;
            Ok((mode, sessions, pps))
        })
        .collect()
}

/// Regression gate: every baseline (mode, sessions) cell present in the
/// fresh run must hold at least 80 % of its committed pages/s. Returns a
/// human summary on success.
pub fn check_baseline(current_json: &str, baseline_json: &str) -> Result<String, String> {
    let current = parse(current_json.trim()).map_err(|e| format!("current fact: {e}"))?;
    let baseline = parse(baseline_json.trim()).map_err(|e| format!("baseline fact: {e}"))?;
    let cur = bench_cells(&current)?;
    let base = bench_cells(&baseline)?;
    let mut compared = 0usize;
    for (mode, sessions, was) in &base {
        let Some((_, _, now)) = cur.iter().find(|(m, s, _)| m == mode && s == sessions) else {
            continue;
        };
        compared += 1;
        if *now < was * 0.8 {
            return Err(format!(
                "{mode}/{sessions} sessions regressed: {now:.0} pages/s vs \
                 baseline {was:.0} (floor {:.0})",
                was * 0.8
            ));
        }
    }
    if compared == 0 {
        return Err("no (mode, sessions) cell overlaps the baseline".into());
    }
    Ok(format!("{compared} cell(s) within 20 % of baseline"))
}

/// The deputybench table: one row per cell.
pub fn deputybench_table(run: &DeputyBenchRun) -> AsciiTable {
    let mut t = AsciiTable::new(
        "deputybench: deputy serving path vs concurrent sessions",
        &[
            "mode", "sessions", "pages/s", "p50 (ms)", "p99 (ms)", "max (ms)", "idle cpu",
            "stalls", "vectored", "dup",
        ],
    );
    for c in &run.cells {
        t.row(vec![
            c.mode.to_string(),
            if c.sessions == c.sessions_requested {
                c.sessions.to_string()
            } else {
                format!("{} (of {})", c.sessions, c.sessions_requested)
            },
            format!("{:.0}", c.pages_per_sec),
            format!("{:.2}", ms(c.p50)),
            format!("{:.2}", ms(c.p99)),
            format!("{:.2}", ms(c.max)),
            match c.idle_cpu_frac {
                Some(f) => format!("{:.2}%", f * 100.0),
                None => "n/a".into(),
            },
            c.write_stalls.to_string(),
            c.vectored_writes.to_string(),
            c.duplicate_pages.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DeputyBenchRun {
        run_deputybench(&DeputyBenchOptions {
            sessions: Some(vec![8]),
            pages_per_session: Some(64),
            quick: true,
            seed: 42,
        })
        .expect("deputybench run")
    }

    #[test]
    fn tiny_sweep_is_exactly_once_and_self_verifies() {
        let run = tiny();
        assert_eq!(run.cells.len(), 2, "reactor + sleep-poll at one count");
        for c in &run.cells {
            assert_eq!(c.sessions, 8);
            assert_eq!(c.pages_total, 8 * 64, "{}: dup or loss", c.mode);
            assert_eq!(c.duplicate_pages, 0);
            assert_eq!(c.corrupt_pages, 0);
            assert!(c.pages_per_sec > 0.0);
            assert!(c.p99 >= c.p50);
        }
        verify_facts(&run.jsonl).expect("facts self-verify");
        assert_eq!(run.jsonl.lines().count(), 3, "header + two cells");
        assert!(run
            .prometheus
            .contains("ampom_deputybench_reactor_s8_pages_per_sec"));
    }

    #[test]
    fn bench_fact_parses_and_baselines_against_itself() {
        let run = tiny();
        let doc = parse(run.bench_json.trim()).expect("bench json parses");
        assert_eq!(doc.get("bench").and_then(|b| b.as_str()), Some("deputy"));
        let cells = bench_cells(&doc).expect("cells extract");
        assert_eq!(cells.len(), 2);
        // A run is never a regression against itself...
        check_baseline(&run.bench_json, &run.bench_json).expect("self-baseline");
        // ...but a 10x-inflated baseline trips the 20 % gate.
        let inflated = run
            .bench_json
            .replace("\"pages_per_sec\":", "\"pages_per_sec\":1e10,\"was\":");
        let err = check_baseline(&run.bench_json, &inflated).unwrap_err();
        assert!(err.contains("regressed"), "unexpected error: {err}");
    }

    #[test]
    fn verify_facts_rejects_duplicates_and_miscounts() {
        let run = tiny();
        let doctored = run
            .jsonl
            .replace("\"duplicate_pages\":0", "\"duplicate_pages\":3");
        assert!(verify_facts(&doctored).unwrap_err().contains("duplicate"));
        let doctored = run
            .jsonl
            .replace("\"pages_total\":512", "\"pages_total\":511");
        assert!(verify_facts(&doctored).unwrap_err().contains("pages_total"));
    }
}
