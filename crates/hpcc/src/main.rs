//! `hpcc-repro` — regenerate the AMPoM paper's tables and figures.
//!
//! ```text
//! hpcc-repro [COMMAND] [--quick] [--csv DIR]
//!
//! Commands:
//!   all       every table and figure (default)
//!   table1    HPCC problem/memory sizes
//!   fig2      migration timelines (openMosix / FFA / AMPoM)
//!   fig4      kernel locality quadrant
//!   fig5      migration freeze times
//!   fig6      total execution times
//!   fig7      page-fault requests
//!   fig8      prefetch aggressiveness
//!   fig9      adaptation to network performance
//!   fig10     small working sets
//!   fig11     AMPoM analysis overhead
//!   ext-vm    extension: VM migration (shared vs per-process windows)
//!   ext-cluster   extension: gossip-based cluster load balancing
//!   ext-ptrans    extension: the transpose pattern beyond dmax
//!   ext-interactive extension: the §5.6 interactive application
//!   ext-roundtrip extension: migrate out and back (suboptimal decisions)
//!   ext-syscall   extension: forwarded-syscall home dependency
//!   ext-pressure  extension: destination memory pressure (eviction)
//!   ext-hpl       extension: HPL / LU factorisation pattern
//!   ext-locality  extension: measured locality of all workloads
//!   ext-timing    extension: migrate mid-run instead of post-allocation
//!   ext-gossip    extension: gossip staleness vs balancing quality
//!   ext-accuracy  extension: prefetch accuracy per kernel
//!   parsweep  parallel sweep engine demo (grid, speedup, determinism)
//!   faultsweep remote paging under message loss + deputy failure policies
//!   timeline  sampled run dynamics (in-flight, resident, budget, link)
//!   check     reproduction certificate: paper claims, PASS/FAIL
//!   sweep     sensitivity of l, dmax and the baseline read-ahead
//!   live      migrate the kernels over real sockets, report vs simulation
//!   calibrate measure a real link, emit its LinkConfig
//!   profile   one kernel/scheme pair under full observability
//!   multisweep concurrent migrants sharing one deputy: slowdown,
//!             fairness, saturation (simulated grid + 8 live migrants)
//!   bakeoff   prefetch-policy bake-off: AMPoM vs Leap vs INDIGO over
//!             kernels + locality-breaking workloads, vs NoPrefetch
//!   chaos     named chaos scenarios at 1/4/8 migrants: per-migrant SLO
//!             verdicts, load shedding, JSONL facts, BENCH_chaos.json
//!   lifecycle bidirectional page lifecycle (out -> dirty -> writeback ->
//!             return): size x link-condition panel, live loopback leg,
//!             JSONL facts, BENCH_lifecycle.json
//!   deputybench C10K session sweep against one loopback deputy, reactor
//!             vs sleep-poll wait modes: pages/s, p99 completion latency,
//!             idle CPU, exactly-once audit, BENCH_deputy.json
//!   clusterlife cluster-life engine at 300/1000 nodes (64 quick):
//!             Poisson arrivals, windowed gossip, remigration and
//!             home-return chains, per-cell thread-count determinism
//!             gate, JSONL facts, BENCH_cluster.json
//!
//! Options:
//!   --quick   tiny problem sizes (seconds instead of minutes)
//!   --csv DIR also write each series as CSV under DIR
//!   --loopback       live/calibrate: in-process deputy on 127.0.0.1 (default)
//!   --endpoint ADDR  live/calibrate: connect to a deputy at ADDR instead
//!   --kernel NAME    profile: dgemm|stream|randomaccess|fft (default stream)
//!   --scheme NAME    profile: ampom|noprefetch|openmosix (default ampom)
//!   --json PATH      profile: write the JSONL event/phase stream to PATH
//!                    chaos: append the JSONL run facts to PATH
//!   --prom PATH      profile/chaos: write the Prometheus-style dump to PATH
//!   --top K          profile: hottest pages to list (default 10)
//!   --scenario NAME  chaos: run only NAME (repeatable; default all)
//!   --bench PATH     chaos: write BENCH_chaos.json to PATH
//!                    (default ./BENCH_chaos.json)
//!                    lifecycle: write BENCH_lifecycle.json to PATH
//!                    (default ./BENCH_lifecycle.json)
//!                    deputybench: write BENCH_deputy.json to PATH
//!                    (default ./BENCH_deputy.json)
//!                    clusterlife: write BENCH_cluster.json to PATH
//!                    (default ./BENCH_cluster.json)
//!   --sessions LIST  deputybench: comma-separated session panel
//!                    (default 64,256,1000 quick; +4000,10000 full)
//!   --baseline PATH  deputybench: compare against a committed
//!                    BENCH_deputy.json; >20% pages/s regression fails
//!                    clusterlife: compare against a committed
//!                    BENCH_cluster.json; >20% throughput regression fails
//!
//! `chaos`, `lifecycle` and `clusterlife` seed their runs from the
//! `AMPOM_FAULT_SEED` environment variable (default 42), matching the CI
//! fault matrix.
//! ```

use std::path::PathBuf;
use std::time::Instant;

use ampom_core::migration::Scheme;
use ampom_hpcc::matrix::{full_matrix, Cell};
use ampom_hpcc::profile::{self, ProfileOptions};
use ampom_hpcc::report::AsciiTable;
use ampom_hpcc::{
    chaos_cmd, checks, clusterlife, deputybench, experiments, extensions, lifecycle_cmd, live,
};
use ampom_workloads::Kernel;

struct Options {
    command: String,
    quick: bool,
    csv_dir: Option<PathBuf>,
    endpoint: Option<String>,
    profile: ProfileOptions,
    json_path: Option<PathBuf>,
    prom_path: Option<PathBuf>,
    scenarios: Vec<String>,
    bench_path: Option<PathBuf>,
    sessions: Option<Vec<usize>>,
    baseline_path: Option<PathBuf>,
}

fn parse_kernel(name: &str) -> Kernel {
    match name.to_ascii_lowercase().as_str() {
        "dgemm" => Kernel::Dgemm,
        "stream" => Kernel::Stream,
        "randomaccess" | "gups" => Kernel::RandomAccess,
        "fft" => Kernel::Fft,
        other => {
            eprintln!("unknown kernel {other:?}; use dgemm|stream|randomaccess|fft");
            std::process::exit(2);
        }
    }
}

fn parse_scheme(name: &str) -> Scheme {
    match name.to_ascii_lowercase().as_str() {
        "ampom" => Scheme::Ampom,
        "noprefetch" => Scheme::NoPrefetch,
        "openmosix" => Scheme::OpenMosix,
        "ffa" => Scheme::Ffa,
        other => {
            eprintln!("unknown scheme {other:?}; use ampom|noprefetch|openmosix|ffa");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Options {
    let mut command = "all".to_string();
    let mut quick = false;
    let mut csv_dir = None;
    let mut endpoint = None;
    let mut prof = ProfileOptions::default();
    let mut json_path = None;
    let mut prom_path = None;
    let mut scenarios = Vec::new();
    let mut bench_path = None;
    let mut sessions = None;
    let mut baseline_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    args.next().expect("--csv requires a directory"),
                ));
            }
            // The in-process deputy is already the default; the flag
            // exists so scripts can say what they mean.
            "--loopback" => endpoint = None,
            "--endpoint" => {
                endpoint = Some(args.next().expect("--endpoint requires HOST:PORT"));
            }
            "--kernel" => {
                prof.kernel = parse_kernel(&args.next().expect("--kernel requires a name"));
            }
            "--scheme" => {
                prof.scheme = parse_scheme(&args.next().expect("--scheme requires a name"));
            }
            "--json" => {
                json_path = Some(PathBuf::from(args.next().expect("--json requires a path")));
            }
            "--prom" => {
                prom_path = Some(PathBuf::from(args.next().expect("--prom requires a path")));
            }
            "--scenario" => {
                scenarios.push(args.next().expect("--scenario requires a name"));
            }
            "--bench" => {
                bench_path = Some(PathBuf::from(args.next().expect("--bench requires a path")));
            }
            "--sessions" => {
                let list = args.next().expect("--sessions requires a comma list");
                sessions = Some(
                    list.split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .expect("--sessions requires integers, e.g. 64,256,1000")
                        })
                        .collect(),
                );
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    args.next().expect("--baseline requires a path"),
                ));
            }
            "--top" => {
                prof.top = args
                    .next()
                    .expect("--top requires a count")
                    .parse()
                    .expect("--top requires an integer");
            }
            "--help" | "-h" => {
                println!(
                    "hpcc-repro [all|table1|fig2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|\
                     ext-vm|ext-cluster|ext-ptrans|ext-interactive|ext-roundtrip|ext-syscall|ext-pressure|ext-hpl|ext-locality|ext-timing|ext-gossip|ext-accuracy|parsweep|faultsweep|timeline|check|sweep|live|calibrate|profile|multisweep|bakeoff|chaos|lifecycle|deputybench|clusterlife] \
                     [--quick] [--csv DIR] [--loopback|--endpoint ADDR] \
                     [--kernel K] [--scheme S] [--json PATH] [--prom PATH] [--top K] \
                     [--scenario NAME] [--bench PATH] [--sessions LIST] [--baseline PATH]"
                );
                std::process::exit(0);
            }
            cmd if !cmd.starts_with('-') => command = cmd.to_string(),
            other => {
                eprintln!("unknown option {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    prof.quick = quick;
    Options {
        command,
        quick,
        csv_dir,
        endpoint,
        profile: prof,
        json_path,
        prom_path,
        scenarios,
        bench_path,
        sessions,
        baseline_path,
    }
}

fn emit(table: &AsciiTable, opts: &Options, name: &str) {
    println!("{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        if let Err(e) = table.write_csv(dir, name) {
            eprintln!("warning: could not write {name}.csv: {e}");
        }
        // Figures with a size-like x axis also get a gnuplot script, with
        // the paper's log-scale presentation for freeze times and fault
        // counts.
        let plot = match name.split('_').next().unwrap_or("") {
            "fig5" => Some(("freeze time (s)", true)),
            "fig6" => Some(("total execution time (s)", false)),
            "fig7" => Some(("page fault requests", true)),
            "fig10" => Some(("total execution time (s)", false)),
            "fig11" => Some(("overhead (%)", false)),
            _ => None,
        };
        if let Some((ylabel, log_y)) = plot {
            if let Err(e) = table.write_gnuplot(dir, name, ylabel, log_y) {
                eprintln!("warning: could not write {name}.gp: {e}");
            }
        }
    }
}

fn emit_all(tables: &[AsciiTable], opts: &Options, prefix: &str) {
    for (i, t) in tables.iter().enumerate() {
        emit(t, opts, &format!("{prefix}_{i}"));
    }
}

fn run_profile_command(opts: &Options) {
    let p = match profile::run_profile(&opts.profile) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    emit(
        &profile::phase_table(&opts.profile, &p.report),
        opts,
        "profile",
    );
    emit(
        &profile::hottest_pages(&p.report, opts.profile.top),
        opts,
        "profile_pages",
    );
    if let Some(path) = &opts.json_path {
        if let Err(e) = profile::write_artifact(path, &p.jsonl) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!(
            "wrote {} JSONL lines to {}",
            p.jsonl.lines().count(),
            path.display()
        );
    }
    if let Some(path) = &opts.prom_path {
        if let Err(e) = profile::write_artifact(path, &p.prometheus) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!("wrote metrics dump to {}", path.display());
    } else {
        println!("{}", p.prometheus);
    }
    // Self-verification: the artifact this command just produced must
    // parse, and the phase partition must account for the whole run.
    if let Err(e) = profile::verify_jsonl(&p.jsonl) {
        eprintln!("profile self-verification FAILED: {e}");
        std::process::exit(1);
    }
    println!(
        "self-verification OK: {} phases sum to the {} total within {:.0}%",
        ampom_obs::PhaseBreakdown::PHASES.len(),
        p.report.total_time,
        profile::PHASE_SUM_TOLERANCE * 100.0
    );
}

fn run_chaos_command(opts: &Options) {
    let chaos_opts = chaos_cmd::ChaosOptions {
        scenarios: opts.scenarios.clone(),
        ..chaos_cmd::ChaosOptions::default()
    };
    eprintln!(
        "running {} chaos scenario(s) at {:?} migrants, seed {}...",
        if chaos_opts.scenarios.is_empty() {
            "all".to_string()
        } else {
            chaos_opts.scenarios.len().to_string()
        },
        chaos_opts.migrants,
        chaos_opts.seed
    );
    let run = match chaos_cmd::run_chaos(&chaos_opts) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("chaos failed: {e}");
            std::process::exit(1);
        }
    };
    emit(&chaos_cmd::chaos_table(&run), opts, "chaos");

    // Self-verification before anything is persisted: the facts this run
    // produced must parse back and account for every cell and migrant.
    if let Err(e) = chaos_cmd::verify_facts(&run.jsonl) {
        eprintln!("chaos facts self-verification FAILED: {e}");
        std::process::exit(1);
    }
    println!(
        "facts self-verification OK: {} JSONL lines, schema v{}",
        run.jsonl.lines().count(),
        chaos_cmd::FACTS_SCHEMA
    );

    if let Some(path) = &opts.json_path {
        if let Err(e) = chaos_cmd::append_artifact(path, &run.jsonl) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!(
            "appended {} JSONL fact lines to {}",
            run.jsonl.lines().count(),
            path.display()
        );
    }
    if let Some(path) = &opts.prom_path {
        if let Err(e) = profile::write_artifact(path, &run.prometheus) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!("wrote metrics dump to {}", path.display());
    } else {
        println!("{}", run.prometheus);
    }
    if let Some(bench) = &run.bench_json {
        let path = opts
            .bench_path
            .clone()
            .unwrap_or_else(|| PathBuf::from("BENCH_chaos.json"));
        if let Err(e) = profile::write_artifact(&path, bench) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!("wrote chaos bench fact to {}", path.display());
    }
}

fn run_lifecycle_command(opts: &Options) {
    let lc_opts = lifecycle_cmd::LifecycleOptions::default();
    eprintln!(
        "running the page-lifecycle panel ({:?} MB x {} link conditions) \
         plus the live loopback leg, seed {}...",
        lc_opts.sizes_mb,
        lifecycle_cmd::STORM_PANEL.len(),
        lc_opts.seed
    );
    let run = match lifecycle_cmd::run_lifecycle_cmd(&lc_opts) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("lifecycle failed: {e}");
            std::process::exit(1);
        }
    };
    emit(&lifecycle_cmd::lifecycle_table(&run), opts, "lifecycle");

    if let Err(e) = lifecycle_cmd::verify_facts(&run.jsonl) {
        eprintln!("lifecycle facts self-verification FAILED: {e}");
        std::process::exit(1);
    }
    println!(
        "facts self-verification OK: {} JSONL lines, schema v{}",
        run.jsonl.lines().count(),
        lifecycle_cmd::FACTS_SCHEMA
    );

    if let Some(path) = &opts.json_path {
        if let Err(e) = chaos_cmd::append_artifact(path, &run.jsonl) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!(
            "appended {} JSONL fact lines to {}",
            run.jsonl.lines().count(),
            path.display()
        );
    }
    if let Some(path) = &opts.prom_path {
        if let Err(e) = profile::write_artifact(path, &run.prometheus) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!("wrote metrics dump to {}", path.display());
    } else {
        println!("{}", run.prometheus);
    }
    if let Some(bench) = &run.bench_json {
        let path = opts
            .bench_path
            .clone()
            .unwrap_or_else(|| PathBuf::from("BENCH_lifecycle.json"));
        if let Err(e) = profile::write_artifact(&path, bench) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!("wrote lifecycle bench fact to {}", path.display());
    }
}

fn run_deputybench_command(opts: &Options) {
    let bench_opts = deputybench::DeputyBenchOptions {
        sessions: opts.sessions.clone(),
        quick: opts.quick,
        ..deputybench::DeputyBenchOptions::default()
    };
    eprintln!(
        "running the deputy saturation sweep ({} mode), seed {}...",
        if opts.quick { "quick" } else { "full" },
        bench_opts.seed
    );
    let run = match deputybench::run_deputybench(&bench_opts) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("deputybench failed: {e}");
            std::process::exit(1);
        }
    };
    emit(&deputybench::deputybench_table(&run), opts, "deputybench");

    // Self-verification before anything is persisted: the facts must
    // parse back and the exactly-once audit must hold for every cell.
    if let Err(e) = deputybench::verify_facts(&run.jsonl) {
        eprintln!("deputybench facts self-verification FAILED: {e}");
        std::process::exit(1);
    }
    println!(
        "facts self-verification OK: {} JSONL lines, schema v{}",
        run.jsonl.lines().count(),
        deputybench::FACTS_SCHEMA
    );

    if let Some(path) = &opts.json_path {
        if let Err(e) = chaos_cmd::append_artifact(path, &run.jsonl) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!(
            "appended {} JSONL fact lines to {}",
            run.jsonl.lines().count(),
            path.display()
        );
    }
    if let Some(path) = &opts.prom_path {
        if let Err(e) = profile::write_artifact(path, &run.prometheus) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!("wrote metrics dump to {}", path.display());
    } else {
        println!("{}", run.prometheus);
    }
    if let Some(path) = &opts.baseline_path {
        let committed = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("could not read baseline {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        match deputybench::check_baseline(&run.bench_json, &committed) {
            Ok(summary) => println!("baseline check OK: {summary}"),
            Err(e) => {
                eprintln!("baseline check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    let path = opts
        .bench_path
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_deputy.json"));
    if let Err(e) = profile::write_artifact(&path, &run.bench_json) {
        eprintln!("{e}");
        std::process::exit(1);
    }
    println!("wrote deputy bench fact to {}", path.display());
}

fn run_clusterlife_command(opts: &Options) {
    let cl_opts = clusterlife::ClusterLifeOptions {
        quick: opts.quick,
        ..clusterlife::ClusterLifeOptions::default()
    };
    eprintln!(
        "running the cluster-life panel ({} mode), seed {}...",
        if opts.quick { "quick" } else { "full" },
        cl_opts.seed
    );
    let run = match clusterlife::run_clusterlife(&cl_opts) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("clusterlife failed: {e}");
            std::process::exit(1);
        }
    };
    emit(&clusterlife::clusterlife_table(&run), opts, "clusterlife");

    // Self-verification before anything is persisted: the facts must
    // parse back, conserve jobs, and respect deputy-chain avoidance.
    if let Err(e) = clusterlife::verify_facts(&run.jsonl) {
        eprintln!("clusterlife facts self-verification FAILED: {e}");
        std::process::exit(1);
    }
    println!(
        "facts self-verification OK: {} JSONL lines, schema v{}",
        run.jsonl.lines().count(),
        clusterlife::FACTS_SCHEMA
    );

    if let Some(path) = &opts.json_path {
        if let Err(e) = chaos_cmd::append_artifact(path, &run.jsonl) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!(
            "appended {} JSONL fact lines to {}",
            run.jsonl.lines().count(),
            path.display()
        );
    }
    if let Some(path) = &opts.prom_path {
        if let Err(e) = profile::write_artifact(path, &run.prometheus) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!("wrote metrics dump to {}", path.display());
    } else {
        println!("{}", run.prometheus);
    }
    if let Some(path) = &opts.baseline_path {
        let committed = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("could not read baseline {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        match clusterlife::check_baseline(&run.bench_json, &committed) {
            Ok(summary) => println!("baseline check OK: {summary}"),
            Err(e) => {
                eprintln!("baseline check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    let path = opts
        .bench_path
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_cluster.json"));
    if let Err(e) = profile::write_artifact(&path, &run.bench_json) {
        eprintln!("{e}");
        std::process::exit(1);
    }
    println!("wrote cluster bench fact to {}", path.display());
}

fn main() {
    let opts = parse_args();
    let wants = |name: &str| opts.command == "all" || opts.command == name;
    let needs_matrix = ["fig5", "fig6", "fig7", "fig8", "fig11"]
        .iter()
        .any(|f| wants(f));
    let cells: Option<Vec<Cell>> = if needs_matrix {
        let started = Instant::now();
        eprintln!(
            "running the {} experiment matrix (4 kernels x sizes x 3 schemes)...",
            if opts.quick { "quick" } else { "full" }
        );
        let m = full_matrix(opts.quick);
        eprintln!("matrix done in {:.1}s", started.elapsed().as_secs_f64());
        Some(m)
    } else {
        None
    };

    let mut ran = false;
    if wants("table1") {
        emit(&experiments::table1(), &opts, "table1");
        ran = true;
    }
    if wants("fig2") {
        let (summary, timelines) = experiments::fig2();
        emit(&summary, &opts, "fig2");
        for (scheme, timeline) in timelines {
            println!("--- {scheme} timeline (first events) ---");
            println!("{timeline}");
        }
        ran = true;
    }
    if wants("fig4") {
        emit(&experiments::fig4(opts.quick), &opts, "fig4");
        ran = true;
    }
    if let Some(cells) = &cells {
        if wants("fig5") {
            emit_all(&experiments::fig5(cells), &opts, "fig5");
            ran = true;
        }
        if wants("fig6") {
            emit_all(&experiments::fig6(cells), &opts, "fig6");
            ran = true;
        }
        if wants("fig7") {
            emit_all(&experiments::fig7(cells), &opts, "fig7");
            ran = true;
        }
        if wants("fig8") {
            emit(&experiments::fig8(cells), &opts, "fig8");
            ran = true;
        }
        if wants("fig11") {
            emit(&experiments::fig11(cells), &opts, "fig11");
            ran = true;
        }
    }
    if wants("fig9") {
        emit(&experiments::fig9(opts.quick), &opts, "fig9");
        ran = true;
    }
    if wants("fig10") {
        emit(&experiments::fig10(opts.quick), &opts, "fig10");
        ran = true;
    }
    if wants("ext-vm") {
        emit(&extensions::ext_vm(opts.quick), &opts, "ext_vm");
        ran = true;
    }
    if wants("ext-cluster") {
        emit(&extensions::ext_cluster(opts.quick), &opts, "ext_cluster");
        ran = true;
    }
    if wants("ext-ptrans") {
        emit(&extensions::ext_ptrans(opts.quick), &opts, "ext_ptrans");
        ran = true;
    }
    if wants("ext-interactive") {
        emit(
            &extensions::ext_interactive(opts.quick),
            &opts,
            "ext_interactive",
        );
        ran = true;
    }
    if wants("ext-roundtrip") {
        emit(
            &extensions::ext_roundtrip(opts.quick),
            &opts,
            "ext_roundtrip",
        );
        ran = true;
    }
    if wants("ext-syscall") {
        emit(&extensions::ext_syscall(opts.quick), &opts, "ext_syscall");
        ran = true;
    }
    if wants("ext-pressure") {
        emit(&extensions::ext_pressure(opts.quick), &opts, "ext_pressure");
        ran = true;
    }
    if wants("ext-accuracy") {
        emit(&extensions::ext_accuracy(opts.quick), &opts, "ext_accuracy");
        ran = true;
    }
    if wants("ext-gossip") {
        emit(&extensions::ext_gossip(opts.quick), &opts, "ext_gossip");
        ran = true;
    }
    if wants("ext-timing") {
        emit(&extensions::ext_timing(opts.quick), &opts, "ext_timing");
        ran = true;
    }
    if wants("ext-locality") {
        emit(&extensions::ext_locality(opts.quick), &opts, "ext_locality");
        ran = true;
    }
    if wants("ext-hpl") {
        emit(&extensions::ext_hpl(opts.quick), &opts, "ext_hpl");
        ran = true;
    }
    if wants("parsweep") {
        let (grid, engine) = experiments::parsweep(opts.quick);
        emit(&grid, &opts, "parsweep_grid");
        emit(&engine, &opts, "parsweep_engine");
        ran = true;
    }
    if wants("faultsweep") {
        let (grid, demo) = experiments::faultsweep(opts.quick);
        emit(&grid, &opts, "faultsweep_grid");
        emit(&demo, &opts, "faultsweep_policies");
        ran = true;
    }
    if wants("timeline") {
        emit(&extensions::timeline(opts.quick), &opts, "timeline");
        ran = true;
    }
    if wants("check") {
        let claims = checks::run_checklist(opts.quick);
        emit(&checks::checklist_table(&claims), &opts, "check");
        let failed = claims.iter().filter(|c| !c.pass).count();
        if failed > 0 {
            eprintln!("{failed} claim(s) FAILED");
            std::process::exit(1);
        }
        ran = true;
    }
    if wants("sweep") {
        emit_all(&extensions::sweep(opts.quick), &opts, "sweep");
        ran = true;
    }
    // The socket-backed commands are explicit-only: `all` regenerates the
    // paper's simulated artifacts and must not depend on live sockets.
    let target = match &opts.endpoint {
        Some(addr) => live::LiveTarget::Remote(addr.clone()),
        None => live::LiveTarget::Loopback,
    };
    if opts.command == "live" {
        emit(&live::live(opts.quick, &target), &opts, "live");
        ran = true;
    }
    if opts.command == "calibrate" {
        emit(&live::calibrate(&target), &opts, "calibrate");
        ran = true;
    }
    if opts.command == "profile" {
        run_profile_command(&opts);
        ran = true;
    }
    if opts.command == "multisweep" {
        emit_all(
            &ampom_hpcc::multisweep::multisweep(opts.quick, &target),
            &opts,
            "multisweep",
        );
        ran = true;
    }
    if opts.command == "bakeoff" {
        match ampom_hpcc::bakeoff::run_bakeoff(opts.quick) {
            Ok(b) => {
                emit(&ampom_hpcc::bakeoff::bakeoff_table(&b), &opts, "bakeoff");
                if let Some(path) = &opts.prom_path {
                    if let Err(e) = profile::write_artifact(path, &b.prometheus) {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                    println!("wrote metrics dump to {}", path.display());
                } else {
                    println!("{}", b.prometheus);
                }
            }
            Err(e) => {
                eprintln!("bakeoff failed: {e}");
                std::process::exit(1);
            }
        }
        ran = true;
    }
    if opts.command == "chaos" {
        run_chaos_command(&opts);
        ran = true;
    }
    if opts.command == "lifecycle" {
        run_lifecycle_command(&opts);
        ran = true;
    }
    if opts.command == "deputybench" {
        run_deputybench_command(&opts);
        ran = true;
    }
    if opts.command == "clusterlife" {
        run_clusterlife_command(&opts);
        ran = true;
    }
    if !ran {
        eprintln!("unknown command '{}'; see --help", opts.command);
        std::process::exit(2);
    }
}
