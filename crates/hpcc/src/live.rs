//! The `live` and `calibrate` subcommands: the same HPCC experiments,
//! but executed over real sockets.
//!
//! `hpcc-repro live --loopback` spins an in-process
//! [`DeputyServer`] on 127.0.0.1, migrates each HPCC kernel through the
//! wire protocol ([`run_live`]), then replays the identical experiment
//! in the simulator with the link parameterised by the *measured* `t0`
//! and capacity — the table reports the two side by side with their
//! divergence. `hpcc-repro calibrate` runs only the measurement
//! handshake and prints the resulting
//! [`LinkConfig`](ampom_net::link::LinkConfig) in the
//! [`MeasuredLink::to_kv`] key/value form.
//!
//! `--endpoint HOST:PORT` points either command at an external deputy
//! (any process serving the `ampom-rpc` wire protocol) instead of the
//! loopback server.

use ampom_core::experiment::WorkloadSpec;
use ampom_core::migration::Scheme;
use ampom_core::runner::{run_workload, RunConfig};
use ampom_net::calibration::{fast_ethernet, MeasuredLink};
use ampom_rpc::{
    calibrate_endpoint, run_live, CalibrateOptions, DeputyServer, Endpoint, LiveOptions,
    ServerConfig,
};
use ampom_workloads::sizes::Kernel;

use crate::matrix::{matrix_sizes, MATRIX_SEED};
use crate::report::{pct, secs, AsciiTable};

/// Where a live command should find its deputy.
pub enum LiveTarget {
    /// Spin an in-process loopback deputy on 127.0.0.1.
    Loopback,
    /// Connect to an already-running deputy at this TCP address.
    Remote(String),
}

/// Binds the loopback deputy unless an external endpoint was given.
/// Returns the endpoint to dial plus the server guard to keep alive.
fn resolve(target: &LiveTarget) -> (Endpoint, Option<DeputyServer>) {
    match target {
        LiveTarget::Loopback => {
            let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default())
                .expect("bind loopback deputy");
            (Endpoint::tcp(server.local_addr()), Some(server))
        }
        LiveTarget::Remote(addr) => (Endpoint::tcp(addr), None),
    }
}

/// Measurement-only handshake: prints the measured link in `to_kv` form
/// and returns a table comparing it with the simulator's calibrated
/// Fast Ethernet defaults.
pub fn calibrate(target: &LiveTarget) -> AsciiTable {
    let (endpoint, server) = resolve(target);
    let measured =
        calibrate_endpoint(&endpoint, &CalibrateOptions::default()).expect("calibration");
    println!("# measured link ({endpoint}) — feed back via LinkConfig");
    print!("{}", measured.to_kv());

    let reference = fast_ethernet();
    let link = measured.link_config();
    let mut t = AsciiTable::new(
        format!("Calibrated link at {endpoint} vs the paper's Fast Ethernet model"),
        &["parameter", "measured", "fast ethernet model"],
    );
    t.row(vec![
        "t0 / latency (us)".into(),
        format!("{:.3}", measured.t0.as_secs_f64() * 1e6),
        format!("{:.3}", reference.latency.as_secs_f64() * 1e6),
    ]);
    t.row(vec![
        "td, one page (us)".into(),
        format!("{:.3}", measured.td.as_secs_f64() * 1e6),
        format!(
            "{:.3}",
            ampom_net::calibration::page_transfer_time(&reference).as_secs_f64() * 1e6
        ),
    ]);
    t.row(vec![
        "capacity (MB/s)".into(),
        format!("{:.2}", link.capacity_bytes_per_sec as f64 / 1e6),
        format!("{:.2}", reference.capacity_bytes_per_sec as f64 / 1e6),
    ]);
    if let Some(server) = server {
        server.shutdown();
    }
    t
}

/// Runs every HPCC kernel at the quick sizes through the live transport
/// and again through the simulator on the measured link; reports both
/// with the per-cell divergence.
pub fn live(quick: bool, target: &LiveTarget) -> AsciiTable {
    let (endpoint, server) = resolve(target);
    let opts = LiveOptions::default();

    let mut t = AsciiTable::new(
        format!("Live migration over {endpoint} vs simulation on the measured link (AMPoM)"),
        &[
            "workload",
            "MB",
            "live total (s)",
            "sim total (s)",
            "divergence",
            "live stall (s)",
            "sim stall (s)",
            "live prefetched",
            "sim prefetched",
            "retries",
        ],
    );
    let mut measured: Option<MeasuredLink> = None;
    for kernel in Kernel::ALL {
        // A live run pays one real socket round trip per page batch, so
        // this command always works at the small quick sizes (the
        // divergence check, not Table 1 scale); `--quick` halves it.
        let mut sizes = matrix_sizes(kernel, true);
        if quick {
            sizes.truncate(1);
        }
        for size in sizes {
            let spec = WorkloadSpec::kernel(kernel, size);
            let mut workload = spec.build(MATRIX_SEED).expect("valid kernel spec");
            let live = run_live(
                &mut *workload,
                &RunConfig::new(Scheme::Ampom),
                endpoint.clone(),
                &opts,
            )
            .expect("live run");

            // The simulator replays the identical experiment on a link
            // with the measured latency and capacity.
            let mut sim_cfg = RunConfig::new(Scheme::Ampom);
            sim_cfg.link = live.measured.link_config();
            let mut workload = spec.build(MATRIX_SEED).expect("valid kernel spec");
            let sim = run_workload(&mut *workload, &sim_cfg);

            let lt = live.report.total_time.as_secs_f64();
            let st = sim.total_time.as_secs_f64();
            let divergence = if st > 0.0 {
                (lt - st) / st * 100.0
            } else {
                0.0
            };
            t.row(vec![
                kernel.name().into(),
                size.memory_mb.to_string(),
                secs(lt),
                secs(st),
                pct(divergence),
                secs(live.report.stall_time.as_secs_f64()),
                secs(sim.stall_time.as_secs_f64()),
                live.report.pages_prefetched.to_string(),
                sim.pages_prefetched.to_string(),
                live.report.faults.retries.to_string(),
            ]);
            measured = Some(live.measured);
        }
    }
    if let Some(m) = measured {
        println!("# last measured link — reusable as a LinkConfig");
        print!("{}", m.to_kv());
    }
    if let Some(server) = server {
        server.shutdown();
    }
    t
}
