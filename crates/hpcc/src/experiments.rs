//! One function per paper table/figure, each returning the ASCII tables
//! that regenerate it.

use ampom_core::experiment::{Experiment, WorkloadSpec};
use ampom_core::migration::Scheme;
use ampom_net::calibration::{broadband, fast_ethernet};
use ampom_sim::trace::TraceKind;
use ampom_workloads::locality::analyze;
use ampom_workloads::sizes::{ProblemSize, DGEMM_SIZES, RANDOM_ACCESS_FFT_SIZES, STREAM_SIZES};
use ampom_workloads::{build_kernel, Kernel};

use crate::matrix::{find, par_map, Cell, MATRIX_SEED};
use crate::report::{pct, secs, AsciiTable};

/// Table 1: problem sizes and memory sizes of HPCC.
pub fn table1() -> AsciiTable {
    let mut t = AsciiTable::new(
        "Table 1: Problem and memory sizes of HPCC",
        &["kernel", "problem sizes", "memory sizes (MB)"],
    );
    let fmt = |sizes: &[ProblemSize]| {
        (
            sizes
                .iter()
                .map(|s| s.problem.to_string())
                .collect::<Vec<_>>()
                .join(" "),
            sizes
                .iter()
                .map(|s| s.memory_mb.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        )
    };
    let (p, m) = fmt(&DGEMM_SIZES);
    t.row(vec!["DGEMM".into(), p, m]);
    let (p, m) = fmt(&STREAM_SIZES);
    t.row(vec!["STREAM".into(), p, m]);
    let (p, m) = fmt(&RANDOM_ACCESS_FFT_SIZES);
    t.row(vec!["RandomAccess & FFT".into(), p, m]);
    t
}

/// Figure 2: migration timelines of openMosix, FFA and AMPoM on a small
/// sequential workload. Returns `(summary, per-scheme timelines)`.
pub fn fig2() -> (AsciiTable, Vec<(String, String)>) {
    let schemes = [Scheme::OpenMosix, Scheme::Ffa, Scheme::Ampom];
    let results = par_map(schemes.to_vec(), |scheme| {
        let r = Experiment::new(scheme)
            .sequential(2048, ampom_sim::time::SimDuration::from_micros(20))
            .trace()
            .run()
            .expect("fig2 experiment is valid");
        (scheme, r)
    });

    let mut t = AsciiTable::new(
        "Figure 2: migration mechanisms (2048-page sequential migrant)",
        &[
            "scheme",
            "freeze (s)",
            "resume at (s)",
            "first fault (s)",
            "done (s)",
        ],
    );
    let mut timelines = Vec::new();
    for (scheme, r) in &results {
        let resume = r
            .trace
            .first_of(TraceKind::FreezeEnd)
            .map(|e| e.at.as_secs_f64())
            .unwrap_or(0.0);
        let first_fault = r
            .trace
            .first_of(TraceKind::PageFault)
            .map(|e| secs(e.at.as_secs_f64()))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            scheme.name().into(),
            secs(r.freeze_time.as_secs_f64()),
            secs(resume),
            first_fault,
            secs(r.total_time.as_secs_f64()),
        ]);
        // Keep the first 25 events of each timeline for display.
        let mut timeline = String::new();
        for e in r.trace.events().iter().take(25) {
            timeline.push_str(&format!(
                "{:>12.6}s  {:<18} {}\n",
                e.at.as_secs_f64(),
                e.kind.to_string(),
                e.data
            ));
        }
        timelines.push((scheme.name().to_string(), timeline));
    }
    (t, timelines)
}

/// Figure 4: measured localities of the four kernels (the conceptual
/// quadrant, quantified). Spatial axis: successor fraction of the
/// reference stream; temporal axis: reuse fraction.
pub fn fig4(quick: bool) -> AsciiTable {
    let mb = if quick { 4 } else { 64 };
    let size = ProblemSize {
        problem: 0,
        memory_mb: mb,
    };
    let rows = par_map(Kernel::ALL.to_vec(), |kernel| {
        let w = build_kernel(kernel, &size, MATRIX_SEED);
        let a = analyze(w);
        (kernel, a)
    });
    let mut t = AsciiTable::new(
        format!("Figure 4: measured kernel localities ({mb} MB streams)"),
        &[
            "kernel",
            "spatial (successor frac)",
            "temporal (reuse frac)",
            "quadrant (relative)",
        ],
    );
    // The paper's quadrant is relative: it ranks the four kernels against
    // each other, so the thresholds are the medians of the measured set.
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        (v[1] + v[2]) / 2.0
    };
    let spatial_med = median(rows.iter().map(|(_, a)| a.successor_fraction).collect());
    let temporal_med = median(rows.iter().map(|(_, a)| a.reuse_fraction).collect());
    for (kernel, a) in rows {
        let quadrant = match (
            a.successor_fraction >= spatial_med,
            a.reuse_fraction >= temporal_med,
        ) {
            (true, true) => "spatial:high temporal:high",
            (true, false) => "spatial:high temporal:low",
            (false, true) => "spatial:low temporal:high",
            (false, false) => "spatial:low temporal:low",
        };
        t.row(vec![
            kernel.name().into(),
            format!("{:.3}", a.successor_fraction),
            format!("{:.3}", a.reuse_fraction),
            quadrant.into(),
        ]);
    }
    t
}

/// Figure 5: migration freeze time vs program size, per kernel.
pub fn fig5(cells: &[Cell]) -> Vec<AsciiTable> {
    per_kernel_tables(cells, "Figure 5: migration freeze time (s)", |c| {
        secs(c.report.freeze_time.as_secs_f64())
    })
}

/// Figure 6: total execution time vs program size, per kernel.
pub fn fig6(cells: &[Cell]) -> Vec<AsciiTable> {
    per_kernel_tables(cells, "Figure 6: total execution time (s)", |c| {
        secs(c.report.total_time.as_secs_f64())
    })
}

/// Figure 7: number of page-fault requests, AMPoM vs NoPrefetch, plus the
/// prevention percentage the paper quotes.
pub fn fig7(cells: &[Cell]) -> Vec<AsciiTable> {
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        let sizes: Vec<u64> = cells
            .iter()
            .filter(|c| c.kernel == kernel)
            .map(|c| c.size.memory_mb)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut t = AsciiTable::new(
            format!("Figure 7: page fault requests — {}", kernel.name()),
            &["MB", "AMPoM", "NoPrefetch", "prevented"],
        );
        for mb in sizes {
            let ampom = find(cells, kernel, mb, Scheme::Ampom);
            let nopf = find(cells, kernel, mb, Scheme::NoPrefetch);
            t.row(vec![
                mb.to_string(),
                ampom.report.fault_requests.to_string(),
                nopf.report.fault_requests.to_string(),
                pct(ampom.report.fault_prevention_vs(&nopf.report) * 100.0),
            ]);
        }
        out.push(t);
    }
    out
}

/// Figure 8: prefetching aggressiveness per kernel — the mean
/// dependent-zone budget at each fault and pages prefetched per fault
/// request.
pub fn fig8(cells: &[Cell]) -> AsciiTable {
    let mut t = AsciiTable::new(
        "Figure 8: prefetched pages per page fault (AMPoM)",
        &[
            "kernel",
            "MB",
            "mean zone budget",
            "prefetched/request",
            "mean S",
        ],
    );
    for kernel in Kernel::ALL {
        for c in cells
            .iter()
            .filter(|c| c.kernel == kernel && c.scheme == Scheme::Ampom)
        {
            t.row(vec![
                kernel.name().into(),
                c.size.memory_mb.to_string(),
                format!("{:.1}", c.report.prefetch_stats.budgets.mean()),
                format!("{:.1}", c.report.prefetched_per_fault()),
                format!("{:.3}", c.report.prefetch_stats.scores.mean()),
            ]);
        }
    }
    t
}

/// Figure 9: adaptation to network performance — % increase in execution
/// time vs openMosix at 100 Mb/s and 6 Mb/s.
pub fn fig9(quick: bool) -> AsciiTable {
    let (dgemm_mb, ra_mb) = if quick { (4, 4) } else { (115, 129) };
    let mut specs = Vec::new();
    for (kernel, mb) in [(Kernel::Dgemm, dgemm_mb), (Kernel::RandomAccess, ra_mb)] {
        for (label, link) in [("100Mb/s", fast_ethernet()), ("6Mb/s", broadband())] {
            for scheme in Scheme::EVALUATED {
                specs.push((kernel, mb, label, link, scheme));
            }
        }
    }
    let results = par_map(specs, |(kernel, mb, label, link, scheme)| {
        let size = ProblemSize {
            problem: 0,
            memory_mb: mb,
        };
        let r = Experiment::new(scheme)
            .kernel(kernel, size)
            .link(link)
            .workload_seed(MATRIX_SEED)
            .run()
            .expect("fig9 experiment is valid");
        (kernel, mb, label, scheme, r)
    });
    let mut t = AsciiTable::new(
        "Figure 9: % increase in execution time vs openMosix",
        &["kernel", "MB", "network", "NoPrefetch", "AMPoM"],
    );
    for (kernel, mb) in [(Kernel::Dgemm, dgemm_mb), (Kernel::RandomAccess, ra_mb)] {
        for label in ["100Mb/s", "6Mb/s"] {
            let pick = |scheme: Scheme| {
                &results
                    .iter()
                    .find(|(k, m, l, s, _)| *k == kernel && *m == mb && *l == label && *s == scheme)
                    .expect("run present")
                    .4
            };
            let base = pick(Scheme::OpenMosix);
            t.row(vec![
                kernel.name().into(),
                mb.to_string(),
                label.into(),
                pct(pick(Scheme::NoPrefetch).exec_increase_vs(base)),
                pct(pick(Scheme::Ampom).exec_increase_vs(base)),
            ]);
        }
    }
    t
}

/// Figure 10: DGEMM with a 575 MB allocation and smaller working sets;
/// openMosix vs AMPoM total execution time.
pub fn fig10(quick: bool) -> AsciiTable {
    let (alloc_mb, ws_list): (u64, Vec<u64>) = if quick {
        (16, vec![4, 8, 16])
    } else {
        (575, vec![115, 230, 345, 460, 575])
    };
    let mut specs = Vec::new();
    for &ws in &ws_list {
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            specs.push((ws, scheme));
        }
    }
    let results = par_map(specs, |(ws, scheme)| {
        let r = Experiment::new(scheme)
            .workload(WorkloadSpec::DgemmSmallWs {
                alloc_bytes: alloc_mb * 1024 * 1024,
                working_bytes: ws * 1024 * 1024,
            })
            .run()
            .expect("fig10 experiment is valid");
        (ws, scheme, r)
    });
    let mut t = AsciiTable::new(
        format!("Figure 10: small working sets ({alloc_mb} MB allocated DGEMM)"),
        &[
            "working set (MB)",
            "openMosix (s)",
            "AMPoM (s)",
            "AMPoM saves",
        ],
    );
    for &ws in &ws_list {
        let pick = |scheme: Scheme| {
            &results
                .iter()
                .find(|(w, s, _)| *w == ws && *s == scheme)
                .expect("run present")
                .2
        };
        let eager = pick(Scheme::OpenMosix);
        let ampom = pick(Scheme::Ampom);
        t.row(vec![
            ws.to_string(),
            secs(eager.total_time.as_secs_f64()),
            secs(ampom.total_time.as_secs_f64()),
            pct(-ampom.exec_increase_vs(eager)),
        ]);
    }
    t
}

/// Figure 11: time to determine the dependent zone, as a percentage of
/// total execution time (AMPoM runs).
pub fn fig11(cells: &[Cell]) -> AsciiTable {
    let mut t = AsciiTable::new(
        "Figure 11: AMPoM analysis overhead (% of execution time)",
        &["kernel", "MB", "analyses", "analysis time (s)", "overhead"],
    );
    for kernel in Kernel::ALL {
        for c in cells
            .iter()
            .filter(|c| c.kernel == kernel && c.scheme == Scheme::Ampom)
        {
            t.row(vec![
                kernel.name().into(),
                c.size.memory_mb.to_string(),
                c.report.analysis_count.to_string(),
                secs(c.report.analysis_time.as_secs_f64()),
                pct(c.report.analysis_overhead_fraction() * 100.0),
            ]);
        }
    }
    t
}

/// The parallel sweep demo: the paper's full scheme × kernel × size grid
/// expressed as one [`SweepSpec`](ampom_core::sweep::SweepSpec), executed
/// serially and in parallel, with the bit-identical-results check and the
/// wall-clock speedup reported. Returns `(grid table, engine table)`.
pub fn parsweep(quick: bool) -> (AsciiTable, AsciiTable) {
    use ampom_core::sweep::SweepSpec;
    use std::time::Instant;

    let sizes: Vec<u64> = if quick {
        vec![2, 4, 8]
    } else {
        vec![16, 32, 64]
    };
    let mut workloads = Vec::new();
    for kernel in Kernel::ALL {
        for &mb in &sizes {
            workloads.push(WorkloadSpec::kernel(
                kernel,
                ProblemSize {
                    problem: 0,
                    memory_mb: mb,
                },
            ));
        }
    }
    let spec = SweepSpec::new()
        .workloads(workloads)
        .fixed_seed(MATRIX_SEED);

    let t0 = Instant::now();
    let parallel = spec.run().expect("sweep spec is valid");
    let parallel_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let serial = spec.run_serial().expect("sweep spec is valid");
    let serial_wall = t0.elapsed().as_secs_f64();
    let identical = parallel.fingerprint() == serial.fingerprint();

    let mut grid = AsciiTable::new(
        format!(
            "Parallel sweep: {} cells (schemes x kernels x sizes), {} threads",
            parallel.cells.len(),
            parallel.threads_used
        ),
        &[
            "workload",
            "scheme",
            "total (s)",
            "freeze (s)",
            "fault requests",
        ],
    );
    for cell in &parallel.cells {
        grid.row(vec![
            cell.workload.clone(),
            cell.scheme.name().into(),
            secs(cell.summary.mean_total_s),
            secs(cell.summary.mean_freeze_s),
            format!("{:.0}", cell.summary.mean_fault_requests),
        ]);
    }

    let mut engine = AsciiTable::new("Sweep engine: parallel vs serial", &["metric", "value"]);
    engine.row(vec!["runs".into(), parallel.total_runs().to_string()]);
    engine.row(vec![
        "worker threads".into(),
        parallel.threads_used.to_string(),
    ]);
    engine.row(vec![
        "parallel wall (s)".into(),
        format!("{parallel_wall:.2}"),
    ]);
    engine.row(vec!["serial wall (s)".into(), format!("{serial_wall:.2}")]);
    engine.row(vec![
        "speedup".into(),
        if parallel_wall > 0.0 {
            format!("{:.2}x", serial_wall / parallel_wall)
        } else {
            "-".into()
        },
    ]);
    engine.row(vec![
        "bit-identical".into(),
        if identical {
            "yes".into()
        } else {
            "NO (BUG)".into()
        },
    ]);
    assert!(identical, "parallel sweep diverged from serial reference");
    (grid, engine)
}

/// Robustness curves in the style of Figure 4 of the fault literature:
/// remote paging under 0–5% message loss, NoPrefetch vs AMPoM, with the
/// retry/timeout protocol absorbing every drop. The second table demos
/// graceful degradation: a deputy crash/restart under each
/// [`FailurePolicy`](ampom_core::reliability::FailurePolicy), with the
/// recovery counters. Returns `(loss-sweep table, policy-demo table)`.
pub fn faultsweep(quick: bool) -> (AsciiTable, AsciiTable) {
    use ampom_core::reliability::{FailurePolicy, FaultProfile, RetryPolicy};
    use ampom_core::sweep::{FaultAxis, SweepSpec};
    use ampom_net::fault::FaultSpec;
    use ampom_sim::event::DowntimeSchedule;
    use ampom_sim::time::SimTime;

    let mb = if quick { 2 } else { 16 };
    let size = ProblemSize {
        problem: 0,
        memory_mb: mb,
    };
    let mut axis: Vec<FaultAxis> = vec![("0%".into(), None)];
    for loss_pct in [1u32, 2, 5] {
        axis.push((
            format!("{loss_pct}%"),
            Some(FaultProfile::lossy(f64::from(loss_pct) / 100.0)),
        ));
    }
    let spec = SweepSpec::new()
        .schemes(vec![Scheme::NoPrefetch, Scheme::Ampom])
        .workload(WorkloadSpec::kernel(Kernel::Dgemm, size))
        .fault_axis(axis)
        .fixed_seed(MATRIX_SEED);
    let parallel = spec.run().expect("fault sweep spec is valid");
    let serial = spec.run_serial().expect("fault sweep spec is valid");
    assert_eq!(
        parallel.fingerprint(),
        serial.fingerprint(),
        "fault sweep must be bit-identical across thread counts"
    );

    let mut grid = AsciiTable::new(
        format!("Remote paging under message loss (DGEMM {mb}MB, retry/timeout protocol)"),
        &[
            "loss",
            "scheme",
            "total (s)",
            "stall (s)",
            "dropped",
            "retries",
            "timeouts",
            "dup replies",
            "deputy queued",
            "backlog (ms)",
        ],
    );
    for cell in &parallel.cells {
        let r = &cell.reports[0];
        grid.row(vec![
            cell.faults.clone(),
            cell.scheme.name().into(),
            secs(r.total_time.as_secs_f64()),
            secs(r.stall_time.as_secs_f64()),
            r.faults.messages_dropped.to_string(),
            r.faults.retries.to_string(),
            r.faults.timeouts.to_string(),
            r.faults.duplicate_replies.to_string(),
            r.deputy.queued_requests.to_string(),
            format!("{:.3}", r.deputy.max_backlog.as_secs_f64() * 1e3),
        ]);
    }

    // Graceful-degradation demo: 2% loss plus one deputy crash/restart
    // bracketing the first demand faults; every policy must finish.
    let outage = DowntimeSchedule::single(
        SimTime::from_nanos(60_000_000),
        SimTime::from_nanos(250_000_000),
    );
    let mut demo = AsciiTable::new(
        "Deputy crash at 60ms, restart at 250ms, 2% loss: failure policies",
        &[
            "policy",
            "total (s)",
            "recovery (s)",
            "reconnects",
            "fallback pages",
            "remigrated",
            "deputy queued",
            "backlog (ms)",
        ],
    );
    for policy in FailurePolicy::ALL {
        let profile = FaultProfile {
            faults: FaultSpec::lossy(0.02),
            downtime: outage.clone(),
            retry: RetryPolicy {
                timeout_factor: 1,
                max_retries: 2,
            },
            policy,
        };
        let r = Experiment::new(Scheme::Ampom)
            .kernel(Kernel::Dgemm, size)
            .seed(MATRIX_SEED)
            .faults(profile)
            .build()
            .expect("fault demo experiment is valid")
            .run()
            .expect("fault demo run succeeds");
        demo.row(vec![
            policy.name().into(),
            secs(r.total_time.as_secs_f64()),
            secs(r.faults.recovery_time.as_secs_f64()),
            r.faults.reconnects.to_string(),
            r.faults.fallback_pages.to_string(),
            if r.faults.remigrated { "yes" } else { "no" }.into(),
            r.deputy.queued_requests.to_string(),
            format!("{:.3}", r.deputy.max_backlog.as_secs_f64() * 1e3),
        ]);
    }
    (grid, demo)
}

/// Builds one table per kernel with a `MB | AMPoM | openMosix | NoPrefetch`
/// layout, projecting `metric` out of each cell.
fn per_kernel_tables(
    cells: &[Cell],
    title: &str,
    metric: impl Fn(&Cell) -> String,
) -> Vec<AsciiTable> {
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        let sizes: Vec<u64> = cells
            .iter()
            .filter(|c| c.kernel == kernel)
            .map(|c| c.size.memory_mb)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut t = AsciiTable::new(
            format!("{title} — {}", kernel.name()),
            &["MB", "AMPoM", "openMosix", "NoPrefetch"],
        );
        for mb in sizes {
            t.row(vec![
                mb.to_string(),
                metric(find(cells, kernel, mb, Scheme::Ampom)),
                metric(find(cells, kernel, mb, Scheme::OpenMosix)),
                metric(find(cells, kernel, mb, Scheme::NoPrefetch)),
            ]);
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::full_matrix;

    #[test]
    fn table1_lists_all_kernels() {
        let t = table1();
        assert_eq!(t.len(), 3);
        let s = t.render();
        assert!(s.contains("17350"));
        assert!(s.contains("575"));
    }

    #[test]
    fn table1_csv_golden() {
        let dir = std::env::temp_dir().join("ampom-table1-golden");
        table1().write_csv(&dir, "table1").unwrap();
        let got = std::fs::read_to_string(dir.join("table1.csv")).unwrap();
        let want = "\
kernel,problem sizes,memory sizes (MB)
DGEMM,7600 10850 13350 15450 17350,115 230 345 460 575
STREAM,7750 11000 13450 15520 17400,115 230 345 460 575
RandomAccess & FFT,8000 11000 16000 23000,65 129 260 513
";
        assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fig2_timeline_ordering() {
        let (summary, timelines) = fig2();
        assert_eq!(summary.len(), 3);
        assert_eq!(timelines.len(), 3);
        let rendered = summary.render();
        assert!(rendered.contains("openMosix"));
        assert!(rendered.contains("FFA"));
        assert!(rendered.contains("AMPoM"));
    }

    #[test]
    fn fig4_places_kernels_in_quadrants() {
        let t = fig4(true);
        let s = t.render();
        assert!(s.contains("STREAM"));
        // RandomAccess must land in the low-spatial half; DGEMM in the
        // high/high corner (the paper's Figure 4 placement).
        let ra_line = s.lines().find(|l| l.contains("RandomAccess")).unwrap();
        assert!(ra_line.contains("spatial:low"), "{ra_line}");
        let dgemm_line = s
            .lines()
            .find(|l| l.starts_with("DGEMM") || l.contains(" DGEMM "))
            .unwrap();
        assert!(
            dgemm_line.contains("spatial:high temporal:high"),
            "{dgemm_line}"
        );
    }

    #[test]
    fn quick_matrix_figures_render() {
        let cells = full_matrix(true);
        assert_eq!(fig5(&cells).len(), 4);
        assert_eq!(fig6(&cells).len(), 4);
        assert_eq!(fig7(&cells).len(), 4);
        assert!(!fig8(&cells).is_empty());
        assert!(!fig11(&cells).is_empty());
    }

    #[test]
    fn fig9_quick_renders() {
        let t = fig9(true);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn fig10_quick_shows_ampom_winning_at_small_ws() {
        let t = fig10(true);
        assert_eq!(t.len(), 3);
        // First row = smallest working set: AMPoM must save time.
        let rendered = t.render();
        assert!(rendered.contains('%'));
    }
}
