//! The `multisweep` subcommand: concurrency scaling of the shared
//! deputy, in simulation and over real sockets.
//!
//! The paper measures one migrant against one deputy; a home node in a
//! real openMosix cluster serves *several* migrants at once. This
//! command sweeps the migrant count over the sharded multi-migrant
//! deputy and reports the three quantities that matter for a shared
//! home node: per-migrant slowdown versus a solo run, fairness (the
//! max/min service-share ratio across migrants), and deputy saturation
//! (busy time over the makespan). All aggregate numbers are read back
//! from the [`ampom_obs`] metrics registry rather than ad hoc fields,
//! so the same values are available to any Prometheus-style scrape.
//!
//! The live half runs eight concurrent [`run_live`] migrants against a
//! single loopback [`DeputyServer`] with a two-worker pool — the
//! multiplexed event loop, request coalescing and DRR batching serve
//! all eight over genuinely shared sockets.

use ampom_core::experiment::{Experiment, WorkloadSpec};
use ampom_core::migration::Scheme;
use ampom_core::runner::RunConfig;
use ampom_core::sweep::SweepSpec;
use ampom_obs::{MetricSource, MetricsRegistry};
use ampom_rpc::{run_live, DeputyServer, Endpoint, LiveOptions, LiveReport, ServerConfig};
use ampom_workloads::sizes::Kernel;

use crate::live::LiveTarget;
use crate::matrix::{matrix_sizes, MATRIX_SEED};
use crate::report::{secs, AsciiTable};

/// Migrant counts the simulated sweep walks.
const MIGRANT_AXIS: [u32; 4] = [1, 2, 4, 8];

/// Concurrent live migrants against the loopback deputy.
const LIVE_MIGRANTS: usize = 8;

fn ratio(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "inf".into()
    }
}

/// The full multisweep: a simulated migrant-count grid, a per-migrant
/// breakdown at the highest count, and the live eight-migrant run.
pub fn multisweep(quick: bool, target: &LiveTarget) -> Vec<AsciiTable> {
    let sizes = matrix_sizes(Kernel::Stream, true);
    let size = if quick {
        sizes[0]
    } else {
        *sizes.last().expect("stream has quick sizes")
    };
    let spec = WorkloadSpec::kernel(Kernel::Stream, size);

    vec![
        grid_table(&spec),
        per_migrant_table(&spec),
        live_table(quick, target),
    ]
}

/// The migrants axis through the sweep engine: every cell's fairness
/// and saturation come from the run-level [`MultiRunMetrics`] the sweep
/// records per repeat.
///
/// [`MultiRunMetrics`]: ampom_core::sweep::MultiRunMetrics
fn grid_table(spec: &WorkloadSpec) -> AsciiTable {
    let sweep = SweepSpec::new()
        .workload(spec.clone())
        .schemes([Scheme::Ampom, Scheme::NoPrefetch])
        .migrants(MIGRANT_AXIS)
        .fixed_seed(MATRIX_SEED);
    let report = sweep.run().expect("multisweep grid");

    let mut t = AsciiTable::new(
        format!(
            "Deputy sharing: migrant count vs slowdown ({})",
            spec.label()
        ),
        &[
            "scheme",
            "migrants",
            "mean total (s)",
            "worst slowdown",
            "fairness max/min",
            "saturation",
            "coalesced",
        ],
    );
    for scheme in [Scheme::Ampom, Scheme::NoPrefetch] {
        // The N=1 cell is the solo baseline; the migrants axis does not
        // perturb seeds, so its stream is exactly what migrant 0 of
        // every N-cell replays.
        let solo = report
            .cells
            .iter()
            .find(|c| c.scheme == scheme && c.migrants == 1)
            .map(|c| c.summary.mean_total_s)
            .expect("solo cell");
        for cell in report.cells.iter().filter(|c| c.scheme == scheme) {
            let worst = cell
                .reports
                .iter()
                .map(|r| r.total_time.as_secs_f64())
                .fold(0.0, f64::max);
            let (fairness, saturation, coalesced) = match cell.multi.first() {
                Some(m) => (
                    ratio(m.fairness_ratio),
                    format!("{:.3}", m.saturation),
                    m.pages_coalesced.to_string(),
                ),
                None => ("-".into(), "-".into(), "-".into()),
            };
            t.row(vec![
                format!("{scheme}"),
                cell.migrants.to_string(),
                secs(cell.summary.mean_total_s),
                if solo > 0.0 {
                    format!("{:.3}", worst / solo)
                } else {
                    "-".into()
                },
                fairness,
                saturation,
                coalesced,
            ]);
        }
    }
    t
}

/// One eight-migrant run in detail: each migrant's slowdown against the
/// solo baseline and its share of the deputy's service time. The
/// aggregate row at the bottom is read back from the metrics registry.
fn per_migrant_table(spec: &WorkloadSpec) -> AsciiTable {
    let n = *MIGRANT_AXIS.last().expect("axis is non-empty");
    let exp = Experiment::new(Scheme::Ampom)
        .workload(spec.clone())
        .seed(MATRIX_SEED)
        .build()
        .expect("valid experiment");
    let solo = exp.run().expect("solo run").total_time.as_secs_f64();
    let multi = exp.run_multi(n).expect("multi run");

    let mut reg = MetricsRegistry::new();
    multi.export_metrics(&mut reg);

    let mut t = AsciiTable::new(
        format!(
            "{} migrants, one deputy ({}, AMPoM): per-migrant accounting",
            n,
            spec.label()
        ),
        &[
            "migrant",
            "total (s)",
            "slowdown",
            "service share",
            "queued reqs",
            "coalesced",
        ],
    );
    for (i, report) in multi.reports.iter().enumerate() {
        let total = report.total_time.as_secs_f64();
        t.row(vec![
            i.to_string(),
            secs(total),
            if solo > 0.0 {
                format!("{:.3}", total / solo)
            } else {
                "-".into()
            },
            format!("{:.3}", multi.service_shares[i]),
            multi.shard_stats[i].queued_requests.to_string(),
            multi.pages_coalesced[i].to_string(),
        ]);
    }
    t.row(vec![
        "all".into(),
        secs(
            reg.gauge_value("ampom_multi_makespan_seconds")
                .unwrap_or(0.0),
        ),
        "-".into(),
        format!(
            "fairness {}",
            ratio(reg.gauge_value("ampom_multi_fairness_ratio").unwrap_or(0.0))
        ),
        format!(
            "saturation {:.3}",
            reg.gauge_value("ampom_multi_deputy_saturation")
                .unwrap_or(0.0)
        ),
        reg.counter_value("ampom_multi_pages_coalesced_total")
            .unwrap_or(0)
            .to_string(),
    ]);
    t
}

/// Eight concurrent live migrants against one deputy. Per-migrant
/// service shares are approximated by each migrant's share of all pages
/// moved; the deputy-side counters come from the server's registry
/// export (absent when `--endpoint` points at an external deputy).
fn live_table(quick: bool, target: &LiveTarget) -> AsciiTable {
    let (addr, server) = match target {
        LiveTarget::Loopback => {
            let server = DeputyServer::bind_tcp(
                "127.0.0.1:0",
                ServerConfig {
                    workers: 2,
                    ..ServerConfig::default()
                },
            )
            .expect("bind loopback deputy");
            (server.local_addr().to_string(), Some(server))
        }
        LiveTarget::Remote(addr) => (addr.clone(), None),
    };
    let opts = LiveOptions::default();

    // Small on purpose: eight migrants each pay real socket round trips,
    // and the interesting signal is contention, not volume.
    let sizes = matrix_sizes(Kernel::Stream, true);
    let mut size = sizes[0];
    if quick {
        size.memory_mb = size.memory_mb.min(1);
    }
    let spec = WorkloadSpec::kernel(Kernel::Stream, size);

    let solo = run_one(&spec, &addr, &opts, 0);
    let solo_total = solo.report.total_time.as_secs_f64();

    let lives: Vec<LiveReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..LIVE_MIGRANTS)
            .map(|i| {
                let spec = &spec;
                let addr = &addr;
                let opts = &opts;
                s.spawn(move || run_one(spec, addr, opts, i as u64))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut t = AsciiTable::new(
        format!(
            "{} live migrants on one deputy at {} ({}, AMPoM)",
            LIVE_MIGRANTS,
            addr,
            spec.label()
        ),
        &["migrant", "total (s)", "slowdown vs solo", "pages moved"],
    );
    let mut moved = Vec::with_capacity(lives.len());
    for (i, live) in lives.iter().enumerate() {
        let total = live.report.total_time.as_secs_f64();
        let pages = live.report.pages_demand_fetched + live.report.pages_prefetched;
        moved.push(pages as f64);
        t.row(vec![
            i.to_string(),
            secs(total),
            if solo_total > 0.0 {
                format!("{:.3}", total / solo_total)
            } else {
                "-".into()
            },
            pages.to_string(),
        ]);
    }
    let sum: f64 = moved.iter().sum();
    let fairness = if sum > 0.0 {
        let max = moved.iter().copied().fold(0.0, f64::max);
        let min = moved.iter().copied().fold(f64::MAX, f64::min);
        if min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    } else {
        f64::INFINITY
    };
    t.row(vec![
        "all".into(),
        format!("fairness {}", ratio(fairness)),
        "-".into(),
        format!("{}", sum as u64),
    ]);

    if let Some(server) = server {
        let mut reg = MetricsRegistry::new();
        server.stats().export_metrics(&mut reg);
        let counter = |name: &str| reg.counter_value(name).unwrap_or(0);
        t.row(vec![
            "deputy".into(),
            format!(
                "coalesced {} / batches {}",
                counter("ampom_deputy_server_pages_coalesced_total"),
                counter("ampom_deputy_server_batch_replies_total"),
            ),
            format!(
                "peak sessions {}",
                counter("ampom_deputy_server_peak_sessions")
            ),
            counter("ampom_deputy_server_pages_served_total").to_string(),
        ]);
        server.shutdown();
    }
    t
}

fn run_one(spec: &WorkloadSpec, addr: &str, opts: &LiveOptions, member: u64) -> LiveReport {
    let mut workload = spec
        .build(MATRIX_SEED.wrapping_add(member))
        .expect("valid kernel spec");
    run_live(
        &mut *workload,
        &RunConfig::new(Scheme::Ampom),
        Endpoint::tcp(addr),
        opts,
    )
    .expect("live migrant")
}
