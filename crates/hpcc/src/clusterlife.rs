//! `hpcc-repro clusterlife` — the cluster-life engine as a reported fact.
//!
//! Drives [`ampom_cluster::run_cluster_life`] over a panel of cluster
//! sizes and migration schemes, re-running every cell at several thread
//! counts plus one repeat and refusing to report anything unless every
//! run produced the same fingerprint. The output is the same
//! self-verified shape as the other commands: an append-only JSONL fact
//! stream, a Prometheus-style metrics dump, and a compact
//! `BENCH_cluster.json` perf fact gated by `--baseline` at 80 % of the
//! committed per-cell throughput.

use std::time::{Duration, Instant};

use ampom_cluster::{run_cluster_life, LifeConfig, LifeOutcome};
use ampom_core::migration::Scheme;
use ampom_core::AmpomError;
use ampom_obs::{parse, JsonValue, JsonWriter, MetricsRegistry};
use ampom_sim::time::SimDuration;

use crate::chaos_cmd::env_seed;
use crate::report::AsciiTable;

/// Version stamp carried by every JSONL fact line.
pub const FACTS_SCHEMA: u64 = 1;

/// Thread counts every cell must agree across. The determinism contract
/// of the engine is that the count is invisible; this is where we hold
/// it to that.
const THREAD_PANEL: [usize; 3] = [1, 2, 8];

/// Options for `hpcc-repro clusterlife`.
#[derive(Debug, Clone)]
pub struct ClusterLifeOptions {
    /// Smaller panel and shorter horizon for CI smoke runs.
    pub quick: bool,
    /// Base RNG seed (from `AMPOM_FAULT_SEED` when unset).
    pub seed: u64,
}

impl Default for ClusterLifeOptions {
    fn default() -> Self {
        ClusterLifeOptions {
            quick: false,
            seed: env_seed(),
        }
    }
}

impl ClusterLifeOptions {
    /// `(nodes, scheme, horizon)` cells. The full panel reproduces the
    /// 300-node comparison and the 1000-node scale point of
    /// EXPERIMENTS.md; quick mode shrinks both axes for CI.
    pub fn panel(&self) -> Vec<(usize, Scheme, SimDuration)> {
        if self.quick {
            let h = SimDuration::from_secs(600);
            vec![(64, Scheme::Ampom, h), (64, Scheme::OpenMosix, h)]
        } else {
            let h = SimDuration::from_secs(3600);
            vec![
                (300, Scheme::Ampom, h),
                (300, Scheme::OpenMosix, h),
                (1000, Scheme::Ampom, h),
            ]
        }
    }
}

/// One measured `(nodes, scheme)` cell, determinism already enforced.
#[derive(Debug)]
pub struct ClusterCell {
    pub nodes: usize,
    pub scheme: Scheme,
    pub horizon: SimDuration,
    pub outcome: LifeOutcome,
    /// Fingerprint shared by every thread-count run and the repeat.
    pub fingerprint: u64,
    /// Wall-clock for all determinism runs of this cell combined.
    pub wall: Duration,
}

/// A completed clusterlife invocation: the cells plus the three rendered
/// artifacts.
#[derive(Debug)]
pub struct ClusterLifeRun {
    pub cells: Vec<ClusterCell>,
    pub jsonl: String,
    pub prometheus: String,
    pub bench_json: String,
}

fn run_cell(
    nodes: usize,
    scheme: Scheme,
    horizon: SimDuration,
    seed: u64,
) -> Result<ClusterCell, AmpomError> {
    let mut cfg = LifeConfig::standard(nodes, scheme);
    cfg.horizon = horizon;
    cfg.seed = seed;
    cfg.validate().map_err(AmpomError::InvalidConfig)?;

    let started = Instant::now();
    let mut runs: Vec<(usize, LifeOutcome)> = Vec::new();
    for &t in &THREAD_PANEL {
        let mut c = cfg.clone();
        c.threads = t;
        runs.push((t, run_cluster_life(&c)));
    }
    // One repeat at the widest thread count: catches nondeterminism that
    // a single pass per count would miss (e.g. leaked wall-clock state).
    let repeat_threads = *THREAD_PANEL.last().unwrap();
    let mut c = cfg.clone();
    c.threads = repeat_threads;
    runs.push((repeat_threads, run_cluster_life(&c)));

    let fingerprint = runs[0].1.fingerprint();
    for (t, outcome) in &runs[1..] {
        let f = outcome.fingerprint();
        if f != fingerprint {
            return Err(AmpomError::InvalidConfig(format!(
                "clusterlife {nodes}x{scheme}: fingerprint diverged at \
                 {t} thread(s): {f:#018x} vs {fingerprint:#018x}"
            )));
        }
    }
    let outcome = runs.pop().unwrap().1;
    if !outcome.conserves_jobs() {
        return Err(AmpomError::InvalidConfig(format!(
            "clusterlife {nodes}x{scheme}: job conservation violated: \
             {} arrived != {} completed + {} failed + {} running",
            outcome.arrived, outcome.completed, outcome.failed, outcome.running_at_horizon
        )));
    }
    Ok(ClusterCell {
        nodes,
        scheme,
        horizon,
        outcome,
        fingerprint,
        wall: started.elapsed(),
    })
}

/// Runs the panel, each cell across the full thread panel plus a repeat.
pub fn run_clusterlife(opts: &ClusterLifeOptions) -> Result<ClusterLifeRun, AmpomError> {
    let mut cells = Vec::new();
    for (nodes, scheme, horizon) in opts.panel() {
        eprintln!(
            "clusterlife: {nodes} nodes, {scheme}, {}s horizon, threads \
             {THREAD_PANEL:?} + repeat...",
            horizon.as_secs_f64()
        );
        cells.push(run_cell(nodes, scheme, horizon, opts.seed)?);
    }
    let jsonl = render_facts(&cells, opts.seed);
    let prometheus = render_metrics(&cells);
    let bench_json = render_bench(&cells, opts.seed);
    Ok(ClusterLifeRun {
        cells,
        jsonl,
        prometheus,
        bench_json,
    })
}

fn hex_fp(fp: u64) -> String {
    format!("{fp:#018x}")
}

/// One `cluster-cell` JSONL line per cell under a `clusterlife-run`
/// header, every line schema-stamped.
fn render_facts(cells: &[ClusterCell], seed: u64) -> String {
    let mut lines = Vec::new();
    let mut header = JsonWriter::object();
    header.field_str("type", "clusterlife-run");
    header.field_u64("schema", FACTS_SCHEMA);
    header.field_u64("seed", seed);
    header.field_u64("cells", cells.len() as u64);
    lines.push(header.close());
    for c in cells {
        let o = &c.outcome;
        let mut w = JsonWriter::object();
        w.field_str("type", "cluster-cell");
        w.field_u64("schema", FACTS_SCHEMA);
        w.field_u64("nodes", c.nodes as u64);
        w.field_str("scheme", c.scheme.name());
        w.field_f64("horizon_s", c.horizon.as_secs_f64());
        w.field_u64("arrived", o.arrived);
        w.field_u64("completed", o.completed);
        w.field_u64("failed", o.failed);
        w.field_u64("running_at_horizon", o.running_at_horizon);
        w.field_u64("migrations", o.migrations);
        w.field_u64("out_migrations", o.out_migrations);
        w.field_u64("remigrations", o.remigrations);
        w.field_u64("returns_home", o.returns_home);
        w.field_u64("gossip_messages", o.gossip_messages);
        w.field_u64("gossip_entries_merged", o.gossip_entries_merged);
        w.field_u64("storm_ticks", o.storm_ticks);
        w.field_u64("peak_migrations_per_tick", o.peak_migrations_per_tick);
        w.field_u64("max_live_stubs", o.max_live_stubs);
        w.field_f64("freeze_paid_s", o.freeze_paid.as_secs_f64());
        w.field_u64("bytes_moved", o.bytes_moved);
        w.field_f64("mean_slowdown", o.slowdown.mean());
        w.field_f64("p50_slowdown", o.p50_slowdown);
        w.field_f64("p99_slowdown", o.p99_slowdown);
        w.field_f64("mean_load_stddev", o.mean_load_stddev);
        w.field_f64("final_load_stddev", o.final_load_stddev);
        w.field_f64("throughput_jobs_per_hour", o.throughput_jobs_per_hour);
        w.field_str("fingerprint", &hex_fp(c.fingerprint));
        lines.push(w.close());
    }
    lines.join("\n") + "\n"
}

/// `ampom_cluster_<scheme>_n<nodes>_*` gauges and counters.
fn render_metrics(cells: &[ClusterCell]) -> String {
    let mut reg = MetricsRegistry::new();
    for c in cells {
        let key = format!(
            "{}_n{}",
            c.scheme.name().to_lowercase().replace('-', "_"),
            c.nodes
        );
        reg.export_gauge(
            &format!("ampom_cluster_{key}_throughput_jobs_per_hour"),
            "completed jobs per simulated hour",
            c.outcome.throughput_jobs_per_hour,
        );
        reg.export_gauge(
            &format!("ampom_cluster_{key}_p99_slowdown"),
            "tail completed-job slowdown",
            c.outcome.p99_slowdown,
        );
        reg.export_gauge(
            &format!("ampom_cluster_{key}_mean_load_stddev"),
            "time-averaged stddev of per-node run-queue lengths",
            c.outcome.mean_load_stddev,
        );
        reg.export_counter(
            &format!("ampom_cluster_{key}_storm_ticks_total"),
            "ticks whose migration count crossed the storm threshold",
            c.outcome.storm_ticks,
        );
        reg.export_counter(
            &format!("ampom_cluster_{key}_migrations_total"),
            "out-migrations + remigrations + home returns",
            c.outcome.migrations,
        );
    }
    reg.render_prometheus()
}

/// The `BENCH_cluster.json` fact: one compact cell entry per measurement.
fn render_bench(cells: &[ClusterCell], seed: u64) -> String {
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            let mut w = JsonWriter::object();
            w.field_u64("nodes", c.nodes as u64);
            w.field_str("scheme", c.scheme.name());
            w.field_f64(
                "throughput_jobs_per_hour",
                c.outcome.throughput_jobs_per_hour,
            );
            w.field_f64("p99_slowdown", c.outcome.p99_slowdown);
            w.field_str("fingerprint", &hex_fp(c.fingerprint));
            w.close()
        })
        .collect();
    let mut w = JsonWriter::object();
    w.field_str("bench", "cluster");
    w.field_u64("schema", FACTS_SCHEMA);
    w.field_u64("seed", seed);
    w.field_raw("cells", &format!("[{}]", entries.join(",")));
    w.close() + "\n"
}

/// Self-verification: every fact line parses, carries the schema stamp,
/// the header accounts for every cell, and every cell's counters are
/// internally consistent — jobs conserve, the migration kinds sum to the
/// total, and no job ever held two live deputy stubs.
pub fn verify_facts(jsonl: &str) -> Result<(), String> {
    let mut declared: Option<u64> = None;
    let mut cell_lines = 0u64;
    for (i, line) in jsonl.lines().enumerate() {
        let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_u64())
            .ok_or_else(|| format!("line {}: missing \"schema\"", i + 1))?;
        if schema != FACTS_SCHEMA {
            return Err(format!("line {}: schema {schema} != {FACTS_SCHEMA}", i + 1));
        }
        match v.get("type").and_then(|t| t.as_str()) {
            Some("clusterlife-run") => {
                declared = Some(
                    v.get("cells")
                        .and_then(|c| c.as_u64())
                        .ok_or_else(|| format!("line {}: header lacks cells", i + 1))?,
                );
            }
            Some("cluster-cell") => {
                cell_lines += 1;
                let u64_field = |key: &str| {
                    v.get(key)
                        .and_then(|x| x.as_u64())
                        .ok_or_else(|| format!("line {}: cell lacks {key}", i + 1))
                };
                let arrived = u64_field("arrived")?;
                let settled = u64_field("completed")?
                    + u64_field("failed")?
                    + u64_field("running_at_horizon")?;
                if arrived != settled {
                    return Err(format!(
                        "line {}: job conservation violated ({arrived} arrived, \
                         {settled} accounted)",
                        i + 1
                    ));
                }
                let kinds = u64_field("out_migrations")?
                    + u64_field("remigrations")?
                    + u64_field("returns_home")?;
                if u64_field("migrations")? != kinds {
                    return Err(format!(
                        "line {}: migration kinds do not sum to the total",
                        i + 1
                    ));
                }
                if u64_field("max_live_stubs")? > 1 {
                    return Err(format!(
                        "line {}: deputy-chain avoidance violated (>1 live stub)",
                        i + 1
                    ));
                }
                if u64_field("completed")? == 0 {
                    return Err(format!("line {}: cell completed no jobs", i + 1));
                }
                let fp = v
                    .get("fingerprint")
                    .and_then(|f| f.as_str())
                    .ok_or_else(|| format!("line {}: cell lacks fingerprint", i + 1))?;
                if !fp.starts_with("0x") || fp.len() != 18 {
                    return Err(format!("line {}: malformed fingerprint {fp:?}", i + 1));
                }
            }
            other => return Err(format!("line {}: unknown fact type {other:?}", i + 1)),
        }
    }
    match declared {
        None => Err("no clusterlife-run header line".into()),
        Some(c) if c != cell_lines => Err(format!(
            "header declares {c} cells but the stream has {cell_lines}"
        )),
        Some(_) => Ok(()),
    }
}

/// Pulls `(nodes, scheme) -> throughput` out of a `BENCH_cluster.json`
/// document.
fn bench_cells(doc: &JsonValue) -> Result<Vec<(u64, String, f64)>, String> {
    let cells = match doc.get("cells") {
        Some(JsonValue::Arr(items)) => items,
        _ => return Err("bench fact lacks a cells array".into()),
    };
    cells
        .iter()
        .map(|c| {
            let nodes = c
                .get("nodes")
                .and_then(|n| n.as_u64())
                .ok_or("cell lacks nodes")?;
            let scheme = c
                .get("scheme")
                .and_then(|s| s.as_str())
                .ok_or("cell lacks scheme")?
                .to_string();
            let thr = c
                .get("throughput_jobs_per_hour")
                .and_then(|t| t.as_f64())
                .ok_or("cell lacks throughput_jobs_per_hour")?;
            Ok((nodes, scheme, thr))
        })
        .collect()
}

/// Regression gate: every baseline (nodes, scheme) cell present in the
/// fresh run must hold at least 80 % of its committed throughput.
/// Returns a human summary on success.
pub fn check_baseline(current_json: &str, baseline_json: &str) -> Result<String, String> {
    let current = parse(current_json.trim()).map_err(|e| format!("current fact: {e}"))?;
    let baseline = parse(baseline_json.trim()).map_err(|e| format!("baseline fact: {e}"))?;
    let cur = bench_cells(&current)?;
    let base = bench_cells(&baseline)?;
    let mut compared = 0usize;
    for (nodes, scheme, was) in &base {
        let Some((_, _, now)) = cur.iter().find(|(n, s, _)| n == nodes && s == scheme) else {
            continue;
        };
        compared += 1;
        if *now < was * 0.8 {
            return Err(format!(
                "{scheme}/{nodes} nodes regressed: {now:.1} jobs/h vs \
                 baseline {was:.1} (floor {:.1})",
                was * 0.8
            ));
        }
    }
    if compared == 0 {
        return Err("no (nodes, scheme) cell overlaps the baseline".into());
    }
    Ok(format!("{compared} cell(s) within 20 % of baseline"))
}

/// The clusterlife table: one row per cell.
pub fn clusterlife_table(run: &ClusterLifeRun) -> AsciiTable {
    let mut t = AsciiTable::new(
        "clusterlife: cluster-scale job flow under gossip-informed migration",
        &[
            "nodes",
            "scheme",
            "jobs/h",
            "completed",
            "out/remig/return",
            "storms",
            "p99 slow",
            "load dev",
            "GB moved",
            "fingerprint",
        ],
    );
    for c in &run.cells {
        let o = &c.outcome;
        t.row(vec![
            c.nodes.to_string(),
            c.scheme.name().to_string(),
            format!("{:.0}", o.throughput_jobs_per_hour),
            o.completed.to_string(),
            format!("{}/{}/{}", o.out_migrations, o.remigrations, o.returns_home),
            o.storm_ticks.to_string(),
            format!("{:.2}", o.p99_slowdown),
            format!("{:.2}", o.mean_load_stddev),
            format!("{:.1}", o.bytes_moved as f64 / (1u64 << 30) as f64),
            hex_fp(c.fingerprint),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cells() -> Vec<ClusterCell> {
        let mut cfg = LifeConfig::standard(8, Scheme::Ampom);
        cfg.horizon = SimDuration::from_secs(240);
        cfg.seed = 7;
        let outcome = run_cluster_life(&cfg);
        let fingerprint = outcome.fingerprint();
        vec![ClusterCell {
            nodes: 8,
            scheme: Scheme::Ampom,
            horizon: cfg.horizon,
            outcome,
            fingerprint,
            wall: Duration::from_millis(1),
        }]
    }

    #[test]
    fn facts_self_verify() {
        let cells = tiny_cells();
        let jsonl = render_facts(&cells, 7);
        verify_facts(&jsonl).expect("facts verify");
    }

    #[test]
    fn doctored_facts_are_rejected() {
        let cells = tiny_cells();
        let jsonl = render_facts(&cells, 7);
        // Break conservation in the cell line and the stream must fail.
        let broken = jsonl.replacen("\"arrived\":", "\"arrived_was\":999,\"arrived\":", 1);
        let broken = {
            let o = &cells[0].outcome;
            broken.replacen(
                &format!("\"arrived\":{}", o.arrived),
                &format!("\"arrived\":{}", o.arrived + 1),
                1,
            )
        };
        assert!(verify_facts(&broken).is_err());
        // Truncating the stream breaks the header count.
        let header_only = jsonl.lines().next().unwrap().to_string();
        assert!(verify_facts(&header_only).is_err());
    }

    #[test]
    fn bench_fact_passes_its_own_baseline() {
        let cells = tiny_cells();
        let bench = render_bench(&cells, 7);
        let msg = check_baseline(&bench, &bench).expect("self-baseline holds");
        assert!(msg.contains("1 cell(s)"));
    }

    #[test]
    fn baseline_gate_catches_regression() {
        let cells = tiny_cells();
        let bench = render_bench(&cells, 7);
        let thr = cells[0].outcome.throughput_jobs_per_hour;
        let inflated = bench.replacen(
            &format!("\"throughput_jobs_per_hour\":{thr}"),
            &format!("\"throughput_jobs_per_hour\":{}", thr * 2.0),
            1,
        );
        assert_ne!(inflated, bench, "replacement must hit");
        // Baseline twice as fast as current -> current is below the floor.
        assert!(check_baseline(&bench, &inflated).is_err());
        // Disjoint panels are an error, not a silent pass.
        let other = bench.replace("\"nodes\":8", "\"nodes\":9");
        assert!(check_baseline(&bench, &other).is_err());
    }

    #[test]
    fn metrics_and_table_render() {
        let cells = tiny_cells();
        let prom = render_metrics(&cells);
        assert!(prom.contains("ampom_cluster_ampom_n8_throughput_jobs_per_hour"));
        assert!(prom.contains("ampom_cluster_ampom_n8_storm_ticks_total"));
        let run = ClusterLifeRun {
            jsonl: render_facts(&cells, 7),
            prometheus: prom,
            bench_json: render_bench(&cells, 7),
            cells,
        };
        let text = clusterlife_table(&run).render();
        assert!(text.contains("AMPoM"));
        assert!(text.contains("0x"));
    }
}
