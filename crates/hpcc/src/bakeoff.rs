//! `hpcc-repro bakeoff` — the prefetch-policy bake-off.
//!
//! Runs every [`PolicySpec`] (AMPoM, Leap, INDIGO) over a workload panel
//! that spans the locality spectrum: two HPCC kernels from the paper's
//! evaluation (STREAM and RandomAccess), plus the three locality-breaking
//! extension workloads (pointer chase, Zipfian KV reuse, bursty churn)
//! that no stride census was designed for. Every (workload, policy) cell
//! shares the reference stream via a fixed seed, and a NoPrefetch run per
//! workload provides the slowdown baseline.
//!
//! The table reports, per cell:
//!
//! * **coverage** — [`RunReport::coverage`]: the fraction of remotely
//!   needed pages the policy delivered ahead of demand,
//! * **accuracy** — [`RunReport::prefetch_accuracy`]: fraction of
//!   prefetched pages later touched (1 − [`RunReport::waste`]),
//! * **stall** — stall share of total time,
//! * **slowdown** — total time relative to the NoPrefetch baseline
//!   (values < 1 mean the policy beat demand paging).
//!
//! The same numbers are exported through [`MetricsRegistry`] as
//! `ampom_prefetch_policy_*` gauges, so the bake-off can feed dashboards
//! alongside the per-run metrics of DESIGN.md §11.

use ampom_core::experiment::WorkloadSpec;
use ampom_core::migration::Scheme;
use ampom_core::sweep::SweepSpec;
use ampom_core::{AmpomError, Experiment, PolicySpec, RunReport};
use ampom_obs::{MetricSource, MetricsRegistry};
use ampom_sim::time::SimDuration;
use ampom_workloads::sizes::{Kernel, ProblemSize};

use crate::matrix::MATRIX_SEED;
use crate::report::{pct, secs, AsciiTable};

/// One (workload, policy) bake-off measurement plus its baseline.
#[derive(Debug)]
pub struct BakeoffCell {
    /// Workload label.
    pub workload: String,
    /// Policy label (`ampom`/`leap`/`indigo`).
    pub policy: String,
    /// The policy run.
    pub report: RunReport,
    /// The NoPrefetch run of the same workload and seed.
    pub baseline_total: SimDuration,
}

impl BakeoffCell {
    /// Total-time ratio vs the NoPrefetch baseline (< 1 = faster).
    pub fn slowdown(&self) -> f64 {
        let b = self.baseline_total.as_secs_f64();
        if b <= 0.0 {
            return 1.0;
        }
        self.report.total_time.as_secs_f64() / b
    }
}

/// Everything the `bakeoff` command produced.
#[derive(Debug)]
pub struct Bakeoff {
    /// Per-cell measurements, workload-major then policy order.
    pub cells: Vec<BakeoffCell>,
    /// The Prometheus-style `ampom_prefetch_policy_*` dump.
    pub prometheus: String,
}

/// The bake-off workload panel: two paper kernels bracketing the
/// locality spectrum plus the three locality-breaking extensions.
pub fn panel(quick: bool) -> Vec<WorkloadSpec> {
    let mb = if quick { 4 } else { 16 };
    let size = ProblemSize {
        problem: 0,
        memory_mb: mb,
    };
    let heap = mb << 20;
    let scale = if quick { 1 } else { 4 };
    vec![
        WorkloadSpec::kernel(Kernel::Stream, size),
        WorkloadSpec::kernel(Kernel::RandomAccess, size),
        WorkloadSpec::PointerChase {
            data_bytes: heap,
            hops: 3_000 * scale,
        },
        WorkloadSpec::ZipfianKv {
            data_bytes: heap,
            keys: 256 * scale,
            exponent: 0.9,
            ops: 6_000 * scale,
        },
        WorkloadSpec::BurstyChurn {
            data_bytes: heap,
            epochs: 6,
            hot_pages: 48 * scale,
            touches_per_epoch: 800 * scale,
            churn_pct: 40,
        },
    ]
}

/// Runs the full bake-off grid.
pub fn run_bakeoff(quick: bool) -> Result<Bakeoff, AmpomError> {
    let workloads = panel(quick);

    // The policy grid: AMPoM-scheme cells × all policies, one fixed seed
    // so every policy faces the identical reference stream.
    let sweep = SweepSpec::new()
        .schemes([Scheme::Ampom])
        .workloads(workloads.clone())
        .policies(PolicySpec::all())
        .fixed_seed(MATRIX_SEED)
        .run()?;

    // NoPrefetch baselines, one per workload, same seed.
    let mut baselines = Vec::with_capacity(workloads.len());
    for spec in &workloads {
        let baseline = Experiment::new(Scheme::NoPrefetch)
            .workload(spec.clone())
            .seed(MATRIX_SEED)
            .run()?;
        baselines.push(baseline.total_time);
    }

    // Sweep cells come out workload-major with policies innermost, so
    // each workload's policy block is contiguous.
    let n_policies = PolicySpec::all().len();
    let mut cells = Vec::with_capacity(workloads.len() * n_policies);
    for (i, cell) in sweep.cells.into_iter().enumerate() {
        cells.push(BakeoffCell {
            workload: cell.workload.clone(),
            policy: cell.policy.clone(),
            report: cell
                .reports
                .into_iter()
                .next()
                .expect("one report per cell"),
            baseline_total: baselines[i / n_policies],
        });
    }

    let prometheus = render_metrics(&cells);
    Ok(Bakeoff { cells, prometheus })
}

/// Exports per-policy aggregates as `ampom_prefetch_policy_*` gauges and
/// counters (mean coverage/accuracy/slowdown over the panel, total pages
/// prefetched), plus the full per-run metric set of the last cell's
/// policy for spot checks.
fn render_metrics(cells: &[BakeoffCell]) -> String {
    let mut reg = MetricsRegistry::new();
    for policy in PolicySpec::all().iter().map(|p| p.label()) {
        let mine: Vec<&BakeoffCell> = cells.iter().filter(|c| c.policy == policy).collect();
        if mine.is_empty() {
            continue;
        }
        let n = mine.len() as f64;
        let mean = |f: &dyn Fn(&BakeoffCell) -> f64| mine.iter().map(|c| f(c)).sum::<f64>() / n;
        reg.export_gauge(
            &format!("ampom_prefetch_policy_{policy}_coverage"),
            "mean prefetch coverage over the bake-off panel",
            mean(&|c| c.report.coverage()),
        );
        reg.export_gauge(
            &format!("ampom_prefetch_policy_{policy}_accuracy"),
            "mean prefetch accuracy over the bake-off panel",
            mean(&|c| c.report.prefetch_accuracy()),
        );
        reg.export_gauge(
            &format!("ampom_prefetch_policy_{policy}_waste"),
            "mean prefetch waste over the bake-off panel",
            mean(&|c| c.report.waste()),
        );
        reg.export_gauge(
            &format!("ampom_prefetch_policy_{policy}_slowdown"),
            "mean total-time ratio vs NoPrefetch over the bake-off panel",
            mean(&|c| c.slowdown()),
        );
        reg.export_counter(
            &format!("ampom_prefetch_policy_{policy}_pages_prefetched_total"),
            "pages prefetched across the bake-off panel",
            mine.iter().map(|c| c.report.pages_prefetched).sum(),
        );
        reg.export_counter(
            &format!("ampom_prefetch_policy_{policy}_fallbacks_total"),
            "prefetcher fallback (empty-budget) analyses across the panel",
            mine.iter().map(|c| c.report.prefetch_stats.fallbacks).sum(),
        );
    }
    if let Some(last) = cells.last() {
        last.report.export_metrics(&mut reg);
    }
    reg.render_prometheus()
}

/// The bake-off table: one row per (workload, policy) cell.
pub fn bakeoff_table(b: &Bakeoff) -> AsciiTable {
    let mut t = AsciiTable::new(
        "prefetcher bake-off: AMPoM vs Leap vs INDIGO (vs NoPrefetch baseline)",
        &[
            "workload",
            "policy",
            "coverage",
            "accuracy",
            "waste",
            "stall",
            "slowdown",
            "total (s)",
        ],
    );
    for c in &b.cells {
        let total = c.report.total_time.as_secs_f64();
        let stall = if total > 0.0 {
            c.report.stall_time.as_secs_f64() / total
        } else {
            0.0
        };
        t.row(vec![
            c.workload.clone(),
            c.policy.clone(),
            pct(c.report.coverage() * 100.0),
            pct(c.report.prefetch_accuracy() * 100.0),
            pct(c.report.waste() * 100.0),
            pct(stall * 100.0),
            format!("{:.3}x", c.slowdown()),
            secs(total),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bakeoff_covers_policies_x_panel() {
        let b = run_bakeoff(true).expect("bakeoff");
        assert_eq!(b.cells.len(), panel(true).len() * PolicySpec::all().len());
        for policy in ["ampom", "leap", "indigo"] {
            assert!(b.cells.iter().any(|c| c.policy == policy));
        }
        // The panel includes at least one locality-breaking workload.
        assert!(b
            .cells
            .iter()
            .any(|c| c.workload.starts_with("PointerChase")));
    }

    #[test]
    fn policies_share_the_reference_stream_per_workload() {
        let b = run_bakeoff(true).expect("bakeoff");
        let stream: Vec<&BakeoffCell> = b
            .cells
            .iter()
            .filter(|c| c.workload.starts_with("STREAM"))
            .collect();
        assert_eq!(stream.len(), 3);
        assert_eq!(
            stream[0].report.compute_time, stream[1].report.compute_time,
            "same stream → same compute time across policies"
        );
    }

    #[test]
    fn ampom_beats_demand_paging_on_stream() {
        let b = run_bakeoff(true).expect("bakeoff");
        let ampom_stream = b
            .cells
            .iter()
            .find(|c| c.policy == "ampom" && c.workload.starts_with("STREAM"))
            .unwrap();
        assert!(
            ampom_stream.slowdown() < 1.0,
            "AMPoM must beat NoPrefetch on a sequential kernel, got {:.3}",
            ampom_stream.slowdown()
        );
        assert!(ampom_stream.report.coverage() > 0.5);
    }

    #[test]
    fn metrics_follow_the_naming_convention() {
        let b = run_bakeoff(true).expect("bakeoff");
        assert!(b
            .prometheus
            .contains("ampom_prefetch_policy_ampom_coverage"));
        assert!(b.prometheus.contains("ampom_prefetch_policy_leap_slowdown"));
        assert!(b
            .prometheus
            .contains("ampom_prefetch_policy_indigo_accuracy"));
        for line in b.prometheus.lines() {
            if !line.starts_with('#') && !line.is_empty() {
                assert!(line.starts_with("ampom_"), "bad metric line: {line}");
            }
        }
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let b = run_bakeoff(true).expect("bakeoff");
        let t = bakeoff_table(&b);
        assert!(!t.is_empty());
        let rendered = t.render();
        assert!(rendered.contains("leap"));
        assert!(rendered.contains("indigo"));
        assert!(rendered.contains("ZipfianKV"));
        assert!(rendered.contains("waste"), "the waste column is audited");
    }

    #[test]
    fn waste_column_is_the_accuracy_complement() {
        // The audit behind the table's `waste` column: waste and
        // accuracy partition every cell's prefetched pages, so the two
        // shares always sum to one.
        let b = run_bakeoff(true).expect("bakeoff");
        for c in &b.cells {
            let sum = c.report.prefetch_accuracy() + c.report.waste();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{}/{}: accuracy {} + waste {} != 1",
                c.workload,
                c.policy,
                c.report.prefetch_accuracy(),
                c.report.waste()
            );
        }
    }
}
