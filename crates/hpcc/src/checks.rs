//! The reproduction checklist: every quantitative claim the paper makes,
//! re-measured and judged automatically.
//!
//! `hpcc-repro check` runs the experiments behind each claim and prints a
//! PASS/FAIL table — the repository's "reproduction certificate". Bands
//! are deliberately loose (this is a simulator, not the authors'
//! testbed); each band is justified in EXPERIMENTS.md.

use ampom_core::experiment::{Experiment, WorkloadSpec};
use ampom_core::migration::Scheme;
use ampom_workloads::sizes::ProblemSize;
use ampom_workloads::Kernel;

use crate::matrix::{par_map, MATRIX_SEED};
use crate::report::AsciiTable;

/// One checked claim.
#[derive(Debug)]
pub struct Claim {
    /// Where the paper states it.
    pub source: &'static str,
    /// The claim, paraphrased.
    pub statement: String,
    /// What we measured.
    pub measured: String,
    /// Whether the measurement satisfies the acceptance band.
    pub pass: bool,
}

/// Runs the full checklist. `quick` shrinks problem sizes (used by tests);
/// the published certificate uses full sizes.
pub fn run_checklist(quick: bool) -> Vec<Claim> {
    let size_mb = if quick { 8 } else { 575 };
    let ra_mb = if quick { 8 } else { 513 };
    let mut claims = Vec::new();

    // Run the three schemes on DGEMM and RandomAccess once, in parallel.
    let runs = par_map(
        vec![
            (Kernel::Dgemm, size_mb, Scheme::OpenMosix),
            (Kernel::Dgemm, size_mb, Scheme::Ampom),
            (Kernel::Dgemm, size_mb, Scheme::NoPrefetch),
            (Kernel::RandomAccess, ra_mb, Scheme::Ampom),
            (Kernel::RandomAccess, ra_mb, Scheme::NoPrefetch),
        ],
        |(kernel, mb, scheme)| {
            let size = ProblemSize {
                problem: 0,
                memory_mb: mb,
            };
            let r = Experiment::new(scheme)
                .kernel(kernel, size)
                .workload_seed(MATRIX_SEED)
                .run()
                .expect("checklist experiment is valid");
            (kernel, scheme, r)
        },
    );
    let get = |kernel, scheme| {
        &runs
            .iter()
            .find(|(k, s, _)| *k == kernel && *s == scheme)
            .expect("run present")
            .2
    };

    let eager = get(Kernel::Dgemm, Scheme::OpenMosix);
    let ampom = get(Kernel::Dgemm, Scheme::Ampom);
    let nopf = get(Kernel::Dgemm, Scheme::NoPrefetch);

    // §Abstract: "AMPoM can avoid 98% of migration freeze time".
    let freeze_avoided = 1.0 - ampom.freeze_time.as_secs_f64() / eager.freeze_time.as_secs_f64();
    claims.push(Claim {
        source: "abstract",
        statement: "AMPoM avoids ~98% of openMosix's freeze time".into(),
        measured: format!("{:.1}% avoided", freeze_avoided * 100.0),
        pass: freeze_avoided > 0.9,
    });

    // §5.2: NoPrefetch freeze is flat and tiny.
    claims.push(Claim {
        source: "§5.2",
        statement: "NoPrefetch freeze ≈ 0.07 s regardless of size".into(),
        measured: format!("{:.3} s", nopf.freeze_time.as_secs_f64()),
        pass: (0.05..0.12).contains(&nopf.freeze_time.as_secs_f64()),
    });

    // §Abstract: "preventing 85-99% of page fault requests".
    let prevented = ampom.fault_prevention_vs(nopf);
    claims.push(Claim {
        source: "abstract / fig 7",
        statement: "AMPoM prevents 85–99% of DGEMM fault requests".into(),
        measured: format!("{:.1}% prevented", prevented * 100.0),
        pass: prevented > 0.85,
    });

    let ra_ampom = get(Kernel::RandomAccess, Scheme::Ampom);
    let ra_nopf = get(Kernel::RandomAccess, Scheme::NoPrefetch);
    let ra_prevented = ra_ampom.fault_prevention_vs(ra_nopf);
    claims.push(Claim {
        source: "fig 7",
        statement: "RandomAccess fault prevention near 85%".into(),
        measured: format!("{:.1}% prevented", ra_prevented * 100.0),
        pass: (0.7..0.95).contains(&ra_prevented),
    });

    // §Abstract: "0-5% additional runtime" vs openMosix. The acceptance
    // band is ±5% at the paper's full sizes; at quick (small) sizes the
    // documented small-size artifact (EXPERIMENTS.md deviation 1) widens
    // it — AMPoM is *faster* there, never slower.
    let increase = ampom.exec_increase_vs(eager);
    let band = if quick { 15.0 } else { 5.0 };
    claims.push(Claim {
        source: "abstract / fig 6",
        statement: format!("AMPoM within ±{band:.0}% of openMosix runtime (DGEMM)"),
        measured: format!("{increase:+.1}%"),
        pass: increase.abs() < band,
    });

    // Fig 6: NoPrefetch clearly lags.
    let nopf_increase = nopf.exec_increase_vs(eager);
    claims.push(Claim {
        source: "fig 6",
        statement: "NoPrefetch lags openMosix by tens of percent".into(),
        measured: format!("{nopf_increase:+.1}%"),
        pass: nopf_increase > 15.0,
    });

    // Fig 8: adaptivity — sequential ≫ random aggressiveness.
    let seq_budget = ampom.prefetch_stats.budgets.mean();
    let ra_budget = ra_ampom.prefetch_stats.budgets.mean();
    claims.push(Claim {
        source: "fig 8 / §5.4",
        statement: "Prefetch aggressiveness adapts: sequential ≫ random".into(),
        measured: format!("budgets {seq_budget:.0} vs {ra_budget:.0}"),
        pass: seq_budget > 5.0 * ra_budget,
    });

    // Fig 11: analysis overhead < 0.6%.
    let overhead = ampom.analysis_overhead_fraction();
    claims.push(Claim {
        source: "fig 11",
        statement: "Dependent-zone analysis < 0.6% of execution time".into(),
        measured: format!("{:.2}%", overhead * 100.0),
        pass: overhead < 0.006,
    });

    // Fig 10: small working sets favour AMPoM.
    let (alloc, ws) = if quick { (16u64, 4u64) } else { (575, 115) };
    let fig10 = par_map(vec![Scheme::OpenMosix, Scheme::Ampom], move |scheme| {
        let r = Experiment::new(scheme)
            .workload(WorkloadSpec::DgemmSmallWs {
                alloc_bytes: alloc * 1024 * 1024,
                working_bytes: ws * 1024 * 1024,
            })
            .run()
            .expect("fig10 checklist experiment is valid");
        (scheme, r)
    });
    let small_eager = &fig10
        .iter()
        .find(|(s, _)| *s == Scheme::OpenMosix)
        .unwrap()
        .1;
    let small_ampom = &fig10.iter().find(|(s, _)| *s == Scheme::Ampom).unwrap().1;
    let saved = -small_ampom.exec_increase_vs(small_eager);
    claims.push(Claim {
        source: "§5.6 / fig 10",
        statement: "Small working set: AMPoM outperforms considerably".into(),
        measured: format!("{saved:.1}% faster"),
        pass: saved > 20.0,
    });

    claims
}

/// Renders the checklist as a table.
pub fn checklist_table(claims: &[Claim]) -> AsciiTable {
    let mut t = AsciiTable::new(
        "Reproduction certificate: paper claims vs this implementation",
        &["source", "claim", "measured", "verdict"],
    );
    for c in claims {
        t.row(vec![
            c.source.into(),
            c.statement.clone(),
            c.measured.clone(),
            if c.pass { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_checklist_passes_every_claim() {
        let claims = run_checklist(true);
        assert!(claims.len() >= 9);
        for c in &claims {
            assert!(
                c.pass,
                "claim failed at quick size: {} — measured {}",
                c.statement, c.measured
            );
        }
        let t = checklist_table(&claims);
        assert!(t.render().contains("PASS"));
    }
}
