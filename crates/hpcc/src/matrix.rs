//! The experiment matrix and its parallel executor.
//!
//! Figures 5, 6, 7 and 8 all read off the *same* set of runs — every HPCC
//! kernel at every Table 1 size under each of the three schemes — so the
//! harness executes that matrix once ([`full_matrix`]) and each figure
//! projects the columns it needs.

use ampom_core::experiment::Experiment;
use ampom_core::migration::Scheme;
use ampom_core::RunReport;
use ampom_workloads::sizes::{sizes_for, ProblemSize};
use ampom_workloads::Kernel;

/// One completed run in the matrix.
#[derive(Debug)]
pub struct Cell {
    /// The kernel.
    pub kernel: Kernel,
    /// The Table 1 size used.
    pub size: ProblemSize,
    /// The migration scheme.
    pub scheme: Scheme,
    /// The measurements.
    pub report: RunReport,
}

/// Seed used for every stochastic kernel so all schemes see the same
/// reference stream.
pub const MATRIX_SEED: u64 = 42;

/// Runs one cell of the matrix on the standard cluster LAN.
pub fn run_cell(kernel: Kernel, size: ProblemSize, scheme: Scheme) -> Cell {
    let report = Experiment::new(scheme)
        .kernel(kernel, size)
        .workload_seed(MATRIX_SEED)
        .run()
        .expect("matrix cell is a valid experiment");
    Cell {
        kernel,
        size,
        scheme,
        report,
    }
}

/// The sizes used for a kernel: the paper's Table 1, or a reduced set in
/// quick mode (used by tests and smoke runs).
pub fn matrix_sizes(kernel: Kernel, quick: bool) -> Vec<ProblemSize> {
    if quick {
        vec![
            ProblemSize {
                problem: 0,
                memory_mb: 4,
            },
            ProblemSize {
                problem: 0,
                memory_mb: 8,
            },
        ]
    } else {
        sizes_for(kernel).to_vec()
    }
}

/// Executes the full (kernel × size × scheme) matrix, parallelised across
/// the machine's cores. Results are returned in deterministic
/// (kernel, size, scheme) order regardless of scheduling.
pub fn full_matrix(quick: bool) -> Vec<Cell> {
    let mut specs = Vec::new();
    for kernel in Kernel::ALL {
        for size in matrix_sizes(kernel, quick) {
            for scheme in Scheme::EVALUATED {
                specs.push((kernel, size, scheme));
            }
        }
    }
    par_map(specs, |(kernel, size, scheme)| {
        run_cell(kernel, size, scheme)
    })
}

/// Order-preserving parallel map over a work list, using one worker per
/// available core (minimum one). Delegates to the core sweep engine's
/// self-scheduling pool so the whole harness shares one executor.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    ampom_core::sweep::par_map(items, f)
}

/// Finds the cell for a given coordinate.
pub fn find(cells: &[Cell], kernel: Kernel, memory_mb: u64, scheme: Scheme) -> &Cell {
    cells
        .iter()
        .find(|c| c.kernel == kernel && c.size.memory_mb == memory_mb && c.scheme == scheme)
        .unwrap_or_else(|| panic!("missing cell {kernel:?} {memory_mb}MB {scheme:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect::<Vec<u64>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn quick_matrix_covers_all_coordinates() {
        let cells = full_matrix(true);
        // 4 kernels × 2 quick sizes × 3 schemes.
        assert_eq!(cells.len(), 24);
        for kernel in Kernel::ALL {
            for scheme in Scheme::EVALUATED {
                let c = find(&cells, kernel, 4, scheme);
                assert_eq!(c.report.scheme, scheme);
                assert!(c.report.total_time.as_nanos() > 0);
            }
        }
    }

    #[test]
    fn quick_matrix_freeze_ordering_everywhere() {
        let cells = full_matrix(true);
        for kernel in Kernel::ALL {
            for mb in [4, 8] {
                let eager = find(&cells, kernel, mb, Scheme::OpenMosix);
                let ampom = find(&cells, kernel, mb, Scheme::Ampom);
                let nopf = find(&cells, kernel, mb, Scheme::NoPrefetch);
                assert!(nopf.report.freeze_time <= ampom.report.freeze_time);
                assert!(ampom.report.freeze_time < eager.report.freeze_time);
            }
        }
    }

    #[test]
    #[should_panic(expected = "missing cell")]
    fn find_panics_on_absent_coordinate() {
        let cells = full_matrix(true);
        let _ = find(&cells, Kernel::Dgemm, 999, Scheme::Ampom);
    }
}
