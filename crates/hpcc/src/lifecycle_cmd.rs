//! `hpcc-repro lifecycle` — the full bidirectional page lifecycle as an
//! experiment: migrate out, dirty pages, write them back in the
//! background, and return home (DESIGN.md §15).
//!
//! The simulated panel crosses two working-set sizes (1 MB and 4 MB)
//! with three link conditions — a clean link plus the `flaky-link-storm`
//! and `deputy-restart-midstorm` chaos profiles — and reports a
//! per-phase breakdown (outbound freeze, away execution incl. the
//! writeback drain, return freeze, home execution) along with the
//! dirty-page conservation verdict. A live leg then drives the same
//! writeback + home-return protocol over real loopback sockets against
//! an in-process deputy.
//!
//! Artifacts follow the `chaos` command's discipline:
//!
//! * JSONL run facts — schema-stamped `cell` and `live` lines under a
//!   `lifecycle-run` header, self-verified before the command exits,
//! * Prometheus gauges — `ampom_lifecycle_<cell>_*` per cell,
//! * `BENCH_lifecycle.json` — writeback throughput and return-freeze
//!   time at both sizes on the clean link, the repo's perf-trajectory
//!   fact for the lifecycle path.
//!
//! The chaos seed comes from `AMPOM_FAULT_SEED` (default 42), matching
//! the CI fault matrix.

use std::time::{Duration, Instant};

use ampom_core::chaos::scenario;
use ampom_core::lifecycle::{run_lifecycle, LifecycleConfig, LifecycleReport};
use ampom_core::runner::RunConfig;
use ampom_core::{AmpomError, Scheme};
use ampom_mem::page::PageId;
use ampom_obs::{parse, JsonWriter, MetricsRegistry};
use ampom_rpc::{DeputyServer, Endpoint, Frame, MigrantClient, ServerConfig};
use ampom_sim::time::SimDuration;
use ampom_workloads::synthetic::SequentialWrite;

use crate::chaos_cmd::env_seed;
use crate::report::{secs, AsciiTable};

/// Version stamped on every JSONL fact line.
pub const FACTS_SCHEMA: u64 = 1;

/// Pages per megabyte at the 4 KiB page size.
const PAGES_PER_MB: u64 = 256;

/// The working-set panel, in megabytes.
pub const SIZE_PANEL: [u64; 2] = [1, 4];

/// Link conditions every size runs under: `None` is the clean link, the
/// names resolve through [`ampom_core::chaos::scenario`].
pub const STORM_PANEL: [Option<&str>; 3] = [
    None,
    Some("flaky-link-storm"),
    Some("deputy-restart-midstorm"),
];

/// Fraction of the reference stream executed away before the return.
const AWAY_FRACTION: f64 = 0.6;

/// What to run.
#[derive(Debug, Clone)]
pub struct LifecycleOptions {
    /// Working-set sizes in MB.
    pub sizes_mb: Vec<u64>,
    /// Base seed for the writeback chaos channel.
    pub seed: u64,
    /// Drive the live loopback leg (off in unit tests that must not
    /// bind sockets).
    pub live: bool,
}

impl Default for LifecycleOptions {
    fn default() -> Self {
        LifecycleOptions {
            sizes_mb: SIZE_PANEL.to_vec(),
            seed: env_seed(),
            live: true,
        }
    }
}

/// One simulated cell of the panel.
#[derive(Debug)]
pub struct LifecycleCell {
    /// Link-condition name (`clean` for the null condition).
    pub storm: &'static str,
    /// Working-set size in MB.
    pub mb: u64,
    /// The lifecycle measurements.
    pub report: LifecycleReport,
}

/// What the live loopback leg measured.
#[derive(Debug)]
pub struct LiveLeg {
    /// Pages written back over the socket.
    pub pages_written_back: u64,
    /// Duplicate entries the deputy refused (idempotence proof).
    pub duplicates: u64,
    /// Wall time of the writeback phase.
    pub writeback_wall: Duration,
    /// Wall time from `ReturnRequest` to `ReturnAck`.
    pub return_wall: Duration,
    /// Deputy-stub pages left behind.
    pub stub_pages: u64,
    /// Pages free at home after the return.
    pub freed_pages: u64,
}

/// Everything the `lifecycle` command produced.
#[derive(Debug)]
pub struct LifecycleRun {
    /// Simulated cells, size-major in panel order.
    pub cells: Vec<LifecycleCell>,
    /// The live loopback leg, when requested.
    pub live: Option<LiveLeg>,
    /// Schema-versioned JSONL run facts.
    pub jsonl: String,
    /// The `ampom_lifecycle_*` Prometheus-style dump.
    pub prometheus: String,
    /// `BENCH_lifecycle.json` contents — present when the clean-link
    /// cells at every panel size all ran.
    pub bench_json: Option<String>,
}

/// Writeback throughput of a cell: pages landed per second away.
pub fn writeback_pages_per_sec(cell: &LifecycleCell) -> f64 {
    let s = cell.report.away_time.as_secs_f64();
    if s > 0.0 {
        cell.report.writeback.pages_written_back as f64 / s
    } else {
        0.0
    }
}

fn cell_config(storm: Option<&str>, seed: u64) -> Result<RunConfig, AmpomError> {
    let cfg = RunConfig::new(Scheme::Ampom).with_seed(seed);
    match storm {
        None => Ok(cfg),
        Some(name) => {
            let sc = scenario(name).ok_or_else(|| {
                AmpomError::InvalidConfig(format!("unknown chaos scenario {name:?}"))
            })?;
            let profile = sc.profile().ok_or_else(|| {
                AmpomError::InvalidConfig(format!("scenario {name:?} carries no fault profile"))
            })?;
            Ok(cfg.with_faults(profile.clone()))
        }
    }
}

/// Runs the simulated panel and (optionally) the live loopback leg.
pub fn run_lifecycle_cmd(opts: &LifecycleOptions) -> Result<LifecycleRun, AmpomError> {
    let mut cells = Vec::new();
    for &mb in &opts.sizes_mb {
        for storm in STORM_PANEL {
            let cfg = cell_config(storm, opts.seed)?;
            let mut w = SequentialWrite::new(mb * PAGES_PER_MB, SimDuration::from_micros(15));
            let report = run_lifecycle(&mut w, &cfg, &LifecycleConfig::new(AWAY_FRACTION));
            report.check_conservation();
            cells.push(LifecycleCell {
                storm: storm.unwrap_or("clean"),
                mb,
                report,
            });
        }
    }

    let live = if opts.live {
        Some(run_live_leg().map_err(AmpomError::Transport)?)
    } else {
        None
    };

    let jsonl = render_facts(&cells, live.as_ref(), opts.seed);
    let prometheus = render_metrics(&cells);
    let bench_json = render_bench(&cells, opts.seed);
    Ok(LifecycleRun {
        cells,
        live,
        jsonl,
        prometheus,
        bench_json,
    })
}

/// The live leg: a migrant on loopback sockets fetches half its pages,
/// writes a quarter of them back (twice — the deputy must refuse the
/// duplicates), then returns home and collects the stub accounting.
fn run_live_leg() -> Result<LiveLeg, String> {
    const TOTAL: u64 = 256;
    const FETCHED: u64 = 128;
    const DIRTIED: u64 = 64;
    const TIMEOUT: Duration = Duration::from_secs(10);

    let server = DeputyServer::bind_tcp("127.0.0.1:0", ServerConfig::default())
        .map_err(|e| format!("bind: {e}"))?;
    let mut client = MigrantClient::connect(Endpoint::tcp(server.local_addr()), TOTAL, 2)
        .map_err(|e| format!("connect: {e}"))?;

    // Fetch the away working set.
    let mut fetched = 0u64;
    let mut next = 0u64;
    while fetched < FETCHED {
        let batch: Vec<PageId> = (next..(next + 32).min(FETCHED)).map(PageId).collect();
        next = (next + 32).min(FETCHED);
        client
            .send_request(None, &batch)
            .map_err(|e| format!("fetch: {e}"))?;
        let mut got = 0;
        while got < batch.len() {
            match client.recv(TIMEOUT).map_err(|e| format!("recv: {e}"))? {
                Some(Frame::PageReply { .. }) => got += 1,
                Some(Frame::PageBatchReply { pages, .. }) => got += pages.len(),
                Some(other) => return Err(format!("unexpected frame: {other:?}")),
                None => return Err("page fetch timed out".into()),
            }
        }
        fetched += batch.len() as u64;
    }

    // Write back the dirty quarter, then replay it: the second pass must
    // be refused entry-by-entry (exactly-once accounting).
    let entries: Vec<(PageId, u64)> = (0..DIRTIED).map(|p| (PageId(p), 1)).collect();
    let wb_start = Instant::now();
    let mut duplicates = 0u64;
    for (pass, seq) in [(0u32, 1u64), (1, 2)] {
        for (i, chunk) in entries.chunks(32).enumerate() {
            let seq = seq * 100 + i as u64;
            client
                .send_writeback(seq, chunk)
                .map_err(|e| format!("writeback: {e}"))?;
            match client.recv(TIMEOUT).map_err(|e| format!("recv: {e}"))? {
                Some(Frame::WritebackAck {
                    seq: s,
                    applied,
                    duplicates: d,
                }) if s == seq => {
                    if pass == 0 && u64::from(applied) != chunk.len() as u64 {
                        return Err(format!(
                            "first pass applied {applied}, expected {}",
                            chunk.len()
                        ));
                    }
                    duplicates += u64::from(d);
                }
                Some(other) => return Err(format!("unexpected frame: {other:?}")),
                None => return Err("writeback ack timed out".into()),
            }
        }
    }
    let writeback_wall = wb_start.elapsed();

    let ret_start = Instant::now();
    let ((stub_pages, freed_pages), stray) = client
        .send_return(TIMEOUT)
        .map_err(|e| format!("return: {e}"))?;
    let return_wall = ret_start.elapsed();
    if !stray.is_empty() {
        return Err(format!("{} stray frames during return", stray.len()));
    }

    let stats = server.stats();
    let pages_written_back = stats.writeback_pages_applied;
    drop(client);
    server.shutdown();
    Ok(LiveLeg {
        pages_written_back,
        duplicates,
        writeback_wall,
        return_wall,
        stub_pages,
        freed_pages,
    })
}

/// A stable per-cell key for metric names: `flaky_link_storm_4mb`.
fn cell_key(cell: &LifecycleCell) -> String {
    format!("{}_{}mb", cell.storm.replace('-', "_"), cell.mb)
}

fn render_facts(cells: &[LifecycleCell], live: Option<&LiveLeg>, seed: u64) -> String {
    let mut lines = Vec::new();
    let mut header = JsonWriter::object();
    header.field_str("type", "lifecycle-run");
    header.field_u64("schema", FACTS_SCHEMA);
    header.field_u64("seed", seed);
    header.field_u64("cells", cells.len() as u64);
    header.field_bool("live", live.is_some());
    lines.push(header.close());

    for cell in cells {
        let r = &cell.report;
        let mut w = JsonWriter::object();
        w.field_str("type", "cell");
        w.field_u64("schema", FACTS_SCHEMA);
        w.field_str("storm", cell.storm);
        w.field_u64("mb", cell.mb);
        w.field_f64("outbound_freeze_s", r.outbound_freeze.as_secs_f64());
        w.field_f64("away_s", r.away_time.as_secs_f64());
        w.field_f64("return_freeze_s", r.return_freeze.as_secs_f64());
        w.field_f64("home_s", r.home_time.as_secs_f64());
        w.field_f64("total_s", r.total_time.as_secs_f64());
        w.field_u64("pages_dirtied", r.pages_dirtied);
        w.field_u64("pages_written_back", r.writeback.pages_written_back);
        w.field_u64("retransmits", r.writeback.retransmits);
        w.field_u64("sink_restarts", r.sink_restarts);
        w.field_u64("stub_pages", r.stub_pages);
        w.field_u64("pages_freed_at_home", r.pages_freed_at_home);
        w.field_bool("conservation_ok", r.conservation_ok);
        lines.push(w.close());
    }

    if let Some(leg) = live {
        let mut w = JsonWriter::object();
        w.field_str("type", "live");
        w.field_u64("schema", FACTS_SCHEMA);
        w.field_u64("pages_written_back", leg.pages_written_back);
        w.field_u64("duplicates_refused", leg.duplicates);
        w.field_f64("writeback_wall_s", leg.writeback_wall.as_secs_f64());
        w.field_f64("return_wall_s", leg.return_wall.as_secs_f64());
        w.field_u64("stub_pages", leg.stub_pages);
        w.field_u64("freed_pages", leg.freed_pages);
        lines.push(w.close());
    }
    lines.join("\n") + "\n"
}

fn render_metrics(cells: &[LifecycleCell]) -> String {
    let mut reg = MetricsRegistry::new();
    for cell in cells {
        let key = cell_key(cell);
        let r = &cell.report;
        reg.export_gauge(
            &format!("ampom_lifecycle_{key}_return_freeze_seconds"),
            "freeze time of the home-return migration",
            r.return_freeze.as_secs_f64(),
        );
        reg.export_gauge(
            &format!("ampom_lifecycle_{key}_writeback_pages_per_sec"),
            "dirty pages landed at the home sink per second away",
            writeback_pages_per_sec(cell),
        );
        reg.export_counter(
            &format!("ampom_lifecycle_{key}_pages_freed_at_home_total"),
            "pages resident for free after the return",
            r.pages_freed_at_home,
        );
        reg.export_counter(
            &format!("ampom_lifecycle_{key}_stub_pages_total"),
            "pages the remote deputy stub still holds",
            r.stub_pages,
        );
        reg.export_gauge(
            &format!("ampom_lifecycle_{key}_conservation_ok"),
            "1 iff every dirtied page's final version landed exactly once",
            if r.conservation_ok { 1.0 } else { 0.0 },
        );
    }
    reg.render_prometheus()
}

/// The `BENCH_lifecycle.json` fact: clean-link writeback throughput and
/// return-freeze time at every panel size.
fn render_bench(cells: &[LifecycleCell], seed: u64) -> Option<String> {
    let clean: Vec<&LifecycleCell> = cells.iter().filter(|c| c.storm == "clean").collect();
    if clean.is_empty() || clean.len() < SIZE_PANEL.len() {
        return None;
    }
    let mut w = JsonWriter::object();
    w.field_str("bench", "lifecycle");
    w.field_u64("schema", FACTS_SCHEMA);
    w.field_u64("seed", seed);
    let cell_json = |c: &LifecycleCell| {
        let mut w = JsonWriter::object();
        w.field_u64("mb", c.mb);
        w.field_f64("writeback_pages_per_sec", writeback_pages_per_sec(c));
        w.field_f64("return_freeze_s", c.report.return_freeze.as_secs_f64());
        w.field_u64("pages_freed_at_home", c.report.pages_freed_at_home);
        w.close()
    };
    for c in &clean {
        w.field_raw(&format!("clean_{}mb", c.mb), &cell_json(c));
    }
    Some(w.close() + "\n")
}

/// Self-verification of the JSONL facts: every line parses, carries the
/// schema stamp, and the header's counts match the stream.
pub fn verify_facts(jsonl: &str) -> Result<(), String> {
    let mut declared_cells: Option<u64> = None;
    let mut declared_live = false;
    let mut cell_lines = 0u64;
    let mut live_lines = 0u64;
    for (i, line) in jsonl.lines().enumerate() {
        let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_u64())
            .ok_or_else(|| format!("line {}: missing \"schema\"", i + 1))?;
        if schema != FACTS_SCHEMA {
            return Err(format!("line {}: schema {schema} != {FACTS_SCHEMA}", i + 1));
        }
        match v.get("type").and_then(|t| t.as_str()) {
            Some("lifecycle-run") => {
                declared_cells = Some(
                    v.get("cells")
                        .and_then(|c| c.as_u64())
                        .ok_or_else(|| format!("line {}: header lacks cells", i + 1))?,
                );
                declared_live = matches!(v.get("live"), Some(ampom_obs::JsonValue::Bool(true)));
            }
            Some("cell") => {
                cell_lines += 1;
                for key in [
                    "storm",
                    "return_freeze_s",
                    "pages_dirtied",
                    "pages_written_back",
                    "conservation_ok",
                ] {
                    if v.get(key).is_none() {
                        return Err(format!("line {}: cell fact lacks {key}", i + 1));
                    }
                }
                if !matches!(
                    v.get("conservation_ok"),
                    Some(ampom_obs::JsonValue::Bool(true))
                ) {
                    return Err(format!("line {}: conservation violated", i + 1));
                }
            }
            Some("live") => live_lines += 1,
            other => return Err(format!("line {}: unknown fact type {other:?}", i + 1)),
        }
    }
    match declared_cells {
        None => Err("no lifecycle-run header line".into()),
        Some(c) if c != cell_lines => Err(format!(
            "header declares {c} cells but the stream has {cell_lines}"
        )),
        Some(_) if declared_live != (live_lines == 1) => Err(format!(
            "header live flag {declared_live} but {live_lines} live line(s)"
        )),
        Some(_) => Ok(()),
    }
}

/// The lifecycle table: one row per simulated cell plus the live leg.
pub fn lifecycle_table(run: &LifecycleRun) -> AsciiTable {
    let mut t = AsciiTable::new(
        "page lifecycle: out -> dirty -> writeback -> return, per-phase breakdown",
        &[
            "cell",
            "out freeze",
            "away (s)",
            "return freeze",
            "home (s)",
            "dirtied",
            "written back",
            "wb pages/s",
            "stub",
            "freed",
            "conservation",
        ],
    );
    for cell in &run.cells {
        let r = &cell.report;
        t.row(vec![
            format!("{} {}MB", cell.storm, cell.mb),
            secs(r.outbound_freeze.as_secs_f64()),
            secs(r.away_time.as_secs_f64()),
            secs(r.return_freeze.as_secs_f64()),
            secs(r.home_time.as_secs_f64()),
            r.pages_dirtied.to_string(),
            r.writeback.pages_written_back.to_string(),
            format!("{:.0}", writeback_pages_per_sec(cell)),
            r.stub_pages.to_string(),
            r.pages_freed_at_home.to_string(),
            if r.conservation_ok { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    if let Some(leg) = &run.live {
        t.row(vec![
            "live loopback".into(),
            "-".into(),
            secs(leg.writeback_wall.as_secs_f64()),
            secs(leg.return_wall.as_secs_f64()),
            "-".into(),
            leg.pages_written_back.to_string(),
            leg.pages_written_back.to_string(),
            "-".into(),
            leg.stub_pages.to_string(),
            leg.freed_pages.to_string(),
            if leg.duplicates > 0 { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(live: bool) -> LifecycleRun {
        run_lifecycle_cmd(&LifecycleOptions {
            sizes_mb: vec![1, 4],
            seed: 42,
            live,
        })
        .expect("lifecycle run")
    }

    #[test]
    fn facts_round_trip_and_conservation_holds_everywhere() {
        let run = small(false);
        verify_facts(&run.jsonl).expect("self-verification");
        assert_eq!(run.cells.len(), 6);
        // 1 header + 6 cell lines, no live line.
        assert_eq!(run.jsonl.lines().count(), 7);
        for cell in &run.cells {
            assert!(cell.report.conservation_ok, "{}", cell_key(cell));
        }
    }

    #[test]
    fn storms_force_the_recovery_machinery() {
        let run = small(false);
        let retransmits: u64 = run
            .cells
            .iter()
            .filter(|c| c.storm != "clean")
            .map(|c| c.report.writeback.retransmits)
            .sum();
        assert!(retransmits > 0, "storms must force retransmits");
        let restarts: u64 = run
            .cells
            .iter()
            .filter(|c| c.storm == "deputy-restart-midstorm")
            .map(|c| c.report.sink_restarts)
            .sum();
        assert!(restarts > 0, "the restart storm must restart the sink");
    }

    #[test]
    fn bench_fact_covers_every_clean_cell() {
        let run = small(false);
        let bench = run.bench_json.expect("clean cells present");
        let v = parse(bench.trim()).expect("bench json parses");
        assert_eq!(v.get("bench").and_then(|b| b.as_str()), Some("lifecycle"));
        for mb in SIZE_PANEL {
            let cell = v
                .get(&format!("clean_{mb}mb"))
                .unwrap_or_else(|| panic!("clean_{mb}mb missing"));
            assert!(
                cell.get("writeback_pages_per_sec")
                    .and_then(|p| p.as_f64())
                    .unwrap()
                    > 0.0
            );
        }
    }

    #[test]
    fn metrics_follow_the_naming_convention() {
        let run = small(false);
        assert!(run
            .prometheus
            .contains("ampom_lifecycle_clean_1mb_return_freeze_seconds"));
        assert!(run
            .prometheus
            .contains("ampom_lifecycle_flaky_link_storm_4mb_writeback_pages_per_sec"));
        for line in run.prometheus.lines() {
            if !line.starts_with('#') && !line.is_empty() {
                assert!(line.starts_with("ampom_"), "bad metric line: {line}");
            }
        }
    }

    #[test]
    fn live_leg_round_trips_over_loopback() {
        let run = small(true);
        let leg = run.live.expect("live leg ran");
        assert_eq!(leg.pages_written_back, 64);
        assert_eq!(leg.duplicates, 64, "the replay pass must be refused");
        // Pages 64..128 were fetched but never written back.
        assert_eq!(leg.stub_pages, 64);
        assert_eq!(leg.freed_pages, 256 - 64);
        assert!(run.jsonl.contains("\"type\":\"live\""));
        verify_facts(&run.jsonl).expect("self-verification");
    }

    #[test]
    fn table_has_one_row_per_cell_plus_the_live_leg() {
        let run = small(false);
        let t = lifecycle_table(&run);
        let rendered = t.render();
        assert!(rendered.contains("clean 1MB"));
        assert!(rendered.contains("deputy-restart-midstorm 4MB"));
        assert!(!rendered.contains("VIOLATED"));
    }
}
