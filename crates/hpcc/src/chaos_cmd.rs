//! `hpcc-repro chaos` — run the named chaos scenarios, grade per-migrant
//! SLOs, and emit machine-readable run facts.
//!
//! Each named [`ChaosScenario`](ampom_core::chaos::ChaosScenario) (see
//! DESIGN.md §14) runs at every
//! migrant count in the panel (1, 4 and 8 by default). A cell produces:
//!
//! * a table row — headline verdict, worst per-migrant p99 stall and
//!   slowdown, the shed/admission counters,
//! * JSONL run facts — one schema-versioned `scenario` line per cell
//!   plus one `slo` line per migrant, append-friendly and self-verified
//!   by [`verify_facts`] before the command exits,
//! * Prometheus gauges/counters — `ampom_slo_<cell>_m<i>_*` per migrant
//!   and `ampom_shed_<cell>_*_total` per cell.
//!
//! When the run covers both `null` and `flaky-link-storm` at four
//! migrants, the command also emits `BENCH_chaos.json`: pages/s and
//! worst p99 stall, clean link vs storm — the repo's perf-trajectory
//! fact for the serving path under chaos.
//!
//! The seed comes from `AMPOM_FAULT_SEED` (default 42), the same
//! convention the CI fault matrix uses, so a smoke run is reproducible
//! bit-for-bit across jobs.

use std::path::Path;

use ampom_core::chaos::{scenario, scenarios, ScenarioOutcome};
use ampom_core::slo::{SloOutcome, SloReport};
use ampom_core::AmpomError;
use ampom_obs::{parse, JsonWriter, MetricsRegistry};

use crate::report::{secs, AsciiTable};

/// Version stamped on every JSONL fact line; bump on breaking shape
/// changes so downstream collectors can dispatch.
pub const FACTS_SCHEMA: u64 = 1;

/// The migrant-count panel every scenario runs at.
pub const MIGRANT_PANEL: [u32; 3] = [1, 4, 8];

/// The chaos seed: `AMPOM_FAULT_SEED` if set and parseable, else 42 —
/// the seed the scenario downtime windows were calibrated against.
pub fn env_seed() -> u64 {
    std::env::var("AMPOM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// What to run.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Scenario-name filter; empty means every named scenario.
    pub scenarios: Vec<String>,
    /// Migrant counts per scenario.
    pub migrants: Vec<u32>,
    /// Base seed for workload, cross-traffic and fault plans.
    pub seed: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            scenarios: Vec::new(),
            migrants: MIGRANT_PANEL.to_vec(),
            seed: env_seed(),
        }
    }
}

/// Everything the `chaos` command produced.
#[derive(Debug)]
pub struct ChaosRun {
    /// One outcome per (scenario, migrants) cell, scenario-major in the
    /// canonical [`scenarios`] order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Schema-versioned JSONL run facts (header + scenario + slo lines).
    pub jsonl: String,
    /// The `ampom_slo_*` / `ampom_shed_*` Prometheus-style dump.
    pub prometheus: String,
    /// `BENCH_chaos.json` contents — present when the run covered both
    /// `null` and `flaky-link-storm` at four migrants.
    pub bench_json: Option<String>,
}

/// Pages delivered per second of makespan across all migrants of a cell.
pub fn pages_per_sec(out: &ScenarioOutcome) -> f64 {
    let pages: u64 = out
        .report
        .reports
        .iter()
        .map(|r| r.pages_demand_fetched + r.pages_prefetched)
        .sum();
    let s = out.report.makespan.as_secs_f64();
    if s > 0.0 {
        pages as f64 / s
    } else {
        0.0
    }
}

/// Worst (largest) measurement of one SLO dimension across migrants.
fn worst_measure(out: &ScenarioOutcome, dim: impl Fn(&SloReport) -> Option<SloOutcome>) -> f64 {
    out.slo
        .iter()
        .filter_map(|s| dim(s).map(|o| o.measured))
        .fold(0.0, f64::max)
}

/// Runs the selected scenarios over the migrant panel.
pub fn run_chaos(opts: &ChaosOptions) -> Result<ChaosRun, AmpomError> {
    let selected = if opts.scenarios.is_empty() {
        scenarios()
    } else {
        opts.scenarios
            .iter()
            .map(|name| {
                scenario(name).ok_or_else(|| {
                    AmpomError::InvalidConfig(format!(
                        "unknown chaos scenario {name:?}; known: {}",
                        scenarios()
                            .iter()
                            .map(|s| s.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?
    };

    let mut outcomes = Vec::with_capacity(selected.len() * opts.migrants.len());
    for scn in &selected {
        for &n in &opts.migrants {
            outcomes.push(scn.run(n, opts.seed)?);
        }
    }

    let jsonl = render_facts(&outcomes, opts.seed);
    let prometheus = render_metrics(&outcomes);
    let bench_json = render_bench(&outcomes, opts.seed);
    Ok(ChaosRun {
        outcomes,
        jsonl,
        prometheus,
        bench_json,
    })
}

/// A stable per-cell key for metric names: `flaky_link_storm_n4`.
fn cell_key(out: &ScenarioOutcome) -> String {
    format!("{}_n{}", out.name.replace('-', "_"), out.migrants)
}

/// One `scenario` JSONL line per cell, one `slo` line per migrant, under
/// a `chaos-run` header — every line schema-stamped so the stream stays
/// append-only across runs.
fn render_facts(outcomes: &[ScenarioOutcome], seed: u64) -> String {
    let mut lines = Vec::new();
    let mut header = JsonWriter::object();
    header.field_str("type", "chaos-run");
    header.field_u64("schema", FACTS_SCHEMA);
    header.field_u64("seed", seed);
    header.field_u64("cells", outcomes.len() as u64);
    lines.push(header.close());

    for out in outcomes {
        let mut w = JsonWriter::object();
        w.field_str("type", "scenario");
        w.field_u64("schema", FACTS_SCHEMA);
        w.field_str("scenario", out.name);
        w.field_u64("migrants", u64::from(out.migrants));
        w.field_u64("seed", out.seed);
        w.field_str("verdict", out.worst_verdict().name());
        w.field_u64("prefetch_pages_shed", out.prefetch_pages_shed());
        w.field_u64("demand_pages_shed", out.demand_pages_shed());
        w.field_u64("shed_events", out.report.deputy.shed_events);
        w.field_u64("hellos_deferred", out.report.deputy.hellos_deferred);
        w.field_u64("retries", out.total_retries());
        w.field_u64("makespan_ns", out.report.makespan.as_nanos());
        w.field_f64("pages_per_sec", pages_per_sec(out));
        lines.push(w.close());

        for (i, slo) in out.slo.iter().enumerate() {
            let mut w = JsonWriter::object();
            w.field_str("type", "slo");
            w.field_u64("schema", FACTS_SCHEMA);
            w.field_str("scenario", out.name);
            w.field_u64("migrants", u64::from(out.migrants));
            w.field_u64("migrant", i as u64);
            w.field_str("verdict", slo.overall().name());
            if let Some(o) = slo.p99_stall {
                w.field_f64("p99_stall_s", o.measured);
                w.field_f64("p99_stall_budget_s", o.budget);
            }
            if let Some(o) = slo.slowdown {
                w.field_f64("slowdown", o.measured);
                w.field_f64("slowdown_budget", o.budget);
            }
            if let Some(o) = slo.timeout_rate {
                w.field_f64("timeout_rate", o.measured);
                w.field_f64("timeout_rate_budget", o.budget);
            }
            lines.push(w.close());
        }
    }
    lines.join("\n") + "\n"
}

/// Per-migrant `ampom_slo_<cell>_m<i>_*` gauges plus per-cell
/// `ampom_shed_<cell>_*_total` counters and the worst-verdict gauge.
fn render_metrics(outcomes: &[ScenarioOutcome]) -> String {
    let mut reg = MetricsRegistry::new();
    for out in outcomes {
        let key = cell_key(out);
        for (i, slo) in out.slo.iter().enumerate() {
            slo.export(&mut reg, &format!("{key}_m{i}"));
        }
        reg.export_gauge(
            &format!("ampom_chaos_{key}_worst_verdict"),
            "worst per-migrant SLO verdict rank: 0 met, 1 at-risk, 2 breached",
            f64::from(out.worst_verdict().rank()),
        );
        reg.export_counter(
            &format!("ampom_shed_{key}_prefetch_pages_total"),
            "prefetch pages refused by deputy admission control",
            out.prefetch_pages_shed(),
        );
        reg.export_counter(
            &format!("ampom_shed_{key}_demand_pages_total"),
            "demand pages refused by deputy admission control (never shed)",
            out.demand_pages_shed(),
        );
        reg.export_counter(
            &format!("ampom_shed_{key}_events_total"),
            "admission-control shed events",
            out.report.deputy.shed_events,
        );
        reg.export_counter(
            &format!("ampom_shed_{key}_hellos_deferred_total"),
            "migrant admissions deferred by the hysteresis hello gate",
            out.report.deputy.hellos_deferred,
        );
    }
    reg.render_prometheus()
}

/// The `BENCH_chaos.json` fact: pages/s and worst p99 stall, clean link
/// vs `flaky-link-storm`, both at four migrants.
fn render_bench(outcomes: &[ScenarioOutcome], seed: u64) -> Option<String> {
    let at4 = |name: &str| outcomes.iter().find(|o| o.name == name && o.migrants == 4);
    let cell_json = |out: &ScenarioOutcome| {
        let mut w = JsonWriter::object();
        w.field_str("scenario", out.name);
        w.field_f64("pages_per_sec", pages_per_sec(out));
        w.field_f64("p99_stall_s", worst_measure(out, |s| s.p99_stall));
        w.field_str("verdict", out.worst_verdict().name());
        w.close()
    };
    let null = at4("null")?;
    let storm = at4("flaky-link-storm")?;
    let mut w = JsonWriter::object();
    w.field_str("bench", "chaos");
    w.field_u64("schema", FACTS_SCHEMA);
    w.field_u64("seed", seed);
    w.field_u64("migrants", 4);
    w.field_raw("baseline", &cell_json(null));
    w.field_raw("storm", &cell_json(storm));
    Some(w.close() + "\n")
}

/// Appends to the facts file instead of truncating it — the JSONL
/// stream is append-only across runs, each run contributing its own
/// header + fact block.
pub fn append_artifact(path: &Path, contents: &str) -> Result<(), String> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("could not open {}: {e}", path.display()))?;
    f.write_all(contents.as_bytes())
        .map_err(|e| format!("could not append to {}: {e}", path.display()))
}

/// Self-verification of the JSONL facts: every line parses, carries the
/// schema stamp, and the header's cell count matches the stream — the
/// same parse-it-back discipline `hpcc-repro profile` applies.
pub fn verify_facts(jsonl: &str) -> Result<(), String> {
    let mut declared_cells: Option<u64> = None;
    let mut scenario_lines = 0u64;
    let mut expected_slo = 0u64;
    let mut slo_lines = 0u64;
    for (i, line) in jsonl.lines().enumerate() {
        let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_u64())
            .ok_or_else(|| format!("line {}: missing \"schema\"", i + 1))?;
        if schema != FACTS_SCHEMA {
            return Err(format!("line {}: schema {schema} != {FACTS_SCHEMA}", i + 1));
        }
        let kind = v
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("line {}: missing \"type\"", i + 1))?;
        match kind {
            "chaos-run" => {
                declared_cells = Some(
                    v.get("cells")
                        .and_then(|c| c.as_u64())
                        .ok_or_else(|| format!("line {}: header lacks cells", i + 1))?,
                );
            }
            "scenario" => {
                scenario_lines += 1;
                for key in [
                    "verdict",
                    "prefetch_pages_shed",
                    "demand_pages_shed",
                    "shed_events",
                    "hellos_deferred",
                ] {
                    if v.get(key).is_none() {
                        return Err(format!("line {}: scenario fact lacks {key}", i + 1));
                    }
                }
                expected_slo += v
                    .get("migrants")
                    .and_then(|m| m.as_u64())
                    .ok_or_else(|| format!("line {}: scenario fact lacks migrants", i + 1))?;
            }
            "slo" => {
                slo_lines += 1;
                if v.get("verdict").and_then(|x| x.as_str()).is_none() {
                    return Err(format!("line {}: slo fact lacks verdict", i + 1));
                }
            }
            other => return Err(format!("line {}: unknown fact type {other:?}", i + 1)),
        }
    }
    match declared_cells {
        None => Err("no chaos-run header line".into()),
        Some(c) if c != scenario_lines => Err(format!(
            "header declares {c} cells but the stream has {scenario_lines}"
        )),
        Some(_) if slo_lines != expected_slo => Err(format!(
            "scenario facts promise {expected_slo} slo lines but the stream has {slo_lines}"
        )),
        Some(_) => Ok(()),
    }
}

/// The chaos table: one row per (scenario, migrants) cell.
pub fn chaos_table(run: &ChaosRun) -> AsciiTable {
    let mut t = AsciiTable::new(
        "chaos suite: per-migrant SLO verdicts and admission-control shedding",
        &[
            "scenario",
            "migrants",
            "verdict",
            "p99 stall (s)",
            "slowdown",
            "timeouts/req",
            "shed prefetch",
            "shed demand",
            "hellos deferred",
            "retries",
        ],
    );
    for out in &run.outcomes {
        t.row(vec![
            out.name.to_string(),
            out.migrants.to_string(),
            out.worst_verdict().name().to_string(),
            secs(worst_measure(out, |s| s.p99_stall)),
            format!("{:.3}x", worst_measure(out, |s| s.slowdown)),
            format!("{:.2}", worst_measure(out, |s| s.timeout_rate)),
            out.prefetch_pages_shed().to_string(),
            out.demand_pages_shed().to_string(),
            out.report.deputy.hellos_deferred.to_string(),
            out.total_retries().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_core::slo::SloVerdict;

    fn small(names: &[&str], migrants: &[u32]) -> ChaosRun {
        run_chaos(&ChaosOptions {
            scenarios: names.iter().map(|s| s.to_string()).collect(),
            migrants: migrants.to_vec(),
            seed: 42,
        })
        .expect("chaos run")
    }

    #[test]
    fn facts_round_trip_and_account_for_every_migrant() {
        let run = small(&["null", "slow-link-degrade"], &[1, 2]);
        verify_facts(&run.jsonl).expect("self-verification");
        assert_eq!(run.outcomes.len(), 4);
        // 1 header + 4 scenario lines + (1+2)*2 slo lines.
        assert_eq!(run.jsonl.lines().count(), 1 + 4 + 6);
    }

    #[test]
    fn null_scenario_meets_every_slo() {
        let run = small(&["null"], &[1, 4]);
        for out in &run.outcomes {
            assert_eq!(out.worst_verdict(), SloVerdict::Met, "{}", out.name);
            assert_eq!(out.prefetch_pages_shed(), 0);
            assert_eq!(out.demand_pages_shed(), 0);
        }
        assert!(run.jsonl.contains("\"verdict\":\"met\""));
    }

    #[test]
    fn metrics_follow_the_naming_convention() {
        let run = small(&["null"], &[1]);
        assert!(run.prometheus.contains("ampom_slo_null_n1_m0_verdict"));
        assert!(run
            .prometheus
            .contains("ampom_shed_null_n1_prefetch_pages_total"));
        assert!(run
            .prometheus
            .contains("ampom_shed_null_n1_hellos_deferred_total"));
        for line in run.prometheus.lines() {
            if !line.starts_with('#') && !line.is_empty() {
                assert!(line.starts_with("ampom_"), "bad metric line: {line}");
            }
        }
    }

    #[test]
    fn bench_fact_needs_both_cells_at_four_migrants() {
        let run = small(&["null"], &[4]);
        assert!(run.bench_json.is_none(), "storm cell missing");

        let run = small(&["null", "flaky-link-storm"], &[4]);
        let bench = run.bench_json.expect("both cells present");
        let v = parse(bench.trim()).expect("bench json parses");
        assert_eq!(v.get("bench").and_then(|b| b.as_str()), Some("chaos"));
        let base = v.get("baseline").expect("baseline cell");
        assert!(base.get("pages_per_sec").and_then(|p| p.as_f64()).unwrap() > 0.0);
        assert_eq!(
            v.get("storm")
                .and_then(|s| s.get("scenario"))
                .and_then(|s| s.as_str()),
            Some("flaky-link-storm")
        );
    }

    #[test]
    fn unknown_scenario_is_a_config_error() {
        let err = run_chaos(&ChaosOptions {
            scenarios: vec!["no-such-storm".into()],
            migrants: vec![1],
            seed: 42,
        })
        .unwrap_err();
        assert!(err.to_string().contains("no-such-storm"));
    }

    #[test]
    fn table_has_one_row_per_cell_and_shows_shedding() {
        let run = small(&["deputy-restart-midstorm"], &[1]);
        let t = chaos_table(&run);
        assert!(!t.is_empty());
        let rendered = t.render();
        assert!(rendered.contains("deputy-restart-midstorm"));
        assert!(rendered.contains("shed prefetch"));
        // The bounded-admission scenario actually sheds.
        assert!(run.outcomes[0].prefetch_pages_shed() > 0);
        assert_eq!(run.outcomes[0].demand_pages_shed(), 0);
    }
}
