//! Facade crate re-exporting the AMPoM workspace.
pub use ampom_cluster as cluster;
pub use ampom_core as core;
pub use ampom_mem as mem;
pub use ampom_net as net;
pub use ampom_obs as obs;
pub use ampom_sim as sim;
pub use ampom_workloads as workloads;
