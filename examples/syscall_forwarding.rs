//! The "home dependency": forwarded system calls (paper §2.2, §7).
//!
//! ```sh
//! cargo run --release --example syscall_forwarding
//! ```
//!
//! After migration "the original process instance will be switched to a
//! 'deputy' process which only answers remote paging requests and executes
//! system calls on behalf of the migrant". The paper's §7 notes this home
//! dependency "significantly affects the performance of I/O-intensive
//! applications". This example measures it directly: a migrant issues a
//! stream of forwarded system calls over the LAN and over broadband, with
//! and without per-call I/O work at the home node.

use ampom::core::cluster::NetPath;
use ampom::core::deputy::Deputy;
use ampom::net::calibration::{broadband, fast_ethernet};
use ampom::sim::time::{SimDuration, SimTime};

fn main() {
    println!("Cost of the home dependency: 1000 forwarded system calls.\n");
    println!(
        "{:<26} {:>16} {:>18} {:>16}",
        "network", "per-call work", "total elapsed", "per call"
    );

    for (label, link) in [
        ("Fast Ethernet (100 Mb/s)", fast_ethernet()),
        ("broadband (6 Mb/s, 2 ms)", broadband()),
    ] {
        for (work_label, work) in [
            ("getpid-class", SimDuration::ZERO),
            ("1 ms of disk I/O", SimDuration::from_millis(1)),
        ] {
            let mut path = NetPath::new(link);
            let mut deputy = Deputy::new();
            let mut now = SimTime::ZERO;
            for _ in 0..1000 {
                now = deputy.forward_syscall(now, work, &mut path);
            }
            let total = now.as_secs_f64();
            println!(
                "{:<26} {:>16} {:>17.3}s {:>13.0} us",
                label,
                work_label,
                total,
                total * 1e3,
            );
        }
    }

    println!(
        "\nEvery call pays a full network round trip to the home node — the overhead\n\
         the paper suggests removing with Zap-style virtualisation (its §7 future work)."
    );
}
