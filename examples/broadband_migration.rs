//! Migration over a slow wide-area link (the §5.5 / Figure 9 scenario).
//!
//! ```sh
//! cargo run --release --example broadband_migration
//! ```
//!
//! The paper motivates process migration partly by "the widening gap
//! between CPU and wide-area network speeds" (§1). This example migrates
//! the same process over the cluster LAN (100 Mb/s), an emulated
//! broadband link (6 Mb/s, 2 ms — the paper's `tc` setup), and the LAN
//! with heavy competing cross traffic, showing how AMPoM's Eq. 3 adapts:
//! its monitor daemon sees the longer round trips and reduced available
//! bandwidth and sizes the dependent zone accordingly.

use ampom::core::migration::Scheme;
use ampom::core::runner::{run_workload, CrossTrafficSpec, RunConfig};
use ampom::net::calibration::{broadband, fast_ethernet};
use ampom::workloads::sizes::ProblemSize;
use ampom::workloads::{build_kernel, Kernel};

fn main() {
    let size = ProblemSize {
        problem: 0,
        memory_mb: 32,
    };

    println!(
        "Migrating a {} MB DGEMM kernel across different networks:\n",
        size.memory_mb
    );
    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>18}",
        "network", "scheme", "total (s)", "requests", "mean zone budget"
    );

    let scenarios: Vec<(&str, RunConfig)> = vec![
        (
            "Fast Ethernet (100 Mb/s)",
            RunConfig::new(Scheme::Ampom).with_link(fast_ethernet()),
        ),
        (
            "broadband (6 Mb/s, 2 ms)",
            RunConfig::new(Scheme::Ampom).with_link(broadband()),
        ),
        ("LAN + 8 MB/s cross traffic", {
            let mut cfg = RunConfig::new(Scheme::Ampom);
            cfg.cross_traffic = Some(CrossTrafficSpec {
                bytes_per_sec: 8_000_000,
                burst_bytes: 64 * 1024,
            });
            cfg
        }),
    ];

    for (label, cfg) in &scenarios {
        let mut w = build_kernel(Kernel::Dgemm, &size, 42);
        let r = run_workload(w.as_mut(), cfg);
        println!(
            "{:<26} {:>10} {:>12.2} {:>14} {:>18.1}",
            label,
            "AMPoM",
            r.total_time.as_secs_f64(),
            r.fault_requests,
            r.prefetch_stats.budgets.mean(),
        );
        // NoPrefetch comparison on the same network.
        let mut w = build_kernel(Kernel::Dgemm, &size, 42);
        let mut nopf = cfg.clone();
        nopf.scheme = Scheme::NoPrefetch;
        let rn = run_workload(w.as_mut(), &nopf);
        println!(
            "{:<26} {:>10} {:>12.2} {:>14} {:>18}",
            "",
            "NoPrefetch",
            rn.total_time.as_secs_f64(),
            rn.fault_requests,
            "-",
        );
    }

    println!(
        "\nOn slower or busier links the per-fault round trip grows, so Eq. 3\n\
         raises the dependent-zone size — AMPoM keeps far ahead of NoPrefetch."
    );
}
