//! Migration over a slow wide-area link (the §5.5 / Figure 9 scenario).
//!
//! ```sh
//! cargo run --release --example broadband_migration
//! ```
//!
//! The paper motivates process migration partly by "the widening gap
//! between CPU and wide-area network speeds" (§1). This example migrates
//! the same process over the cluster LAN (100 Mb/s), an emulated
//! broadband link (6 Mb/s, 2 ms — the paper's `tc` setup), and the LAN
//! with heavy competing cross traffic, showing how AMPoM's Eq. 3 adapts:
//! its monitor daemon sees the longer round trips and reduced available
//! bandwidth and sizes the dependent zone accordingly.

use ampom::core::runner::CrossTrafficSpec;
use ampom::core::{Experiment, Scheme};
use ampom::net::calibration::{broadband, fast_ethernet};
use ampom::net::link::LinkConfig;
use ampom::workloads::sizes::ProblemSize;
use ampom::workloads::Kernel;

fn main() {
    let size = ProblemSize {
        problem: 0,
        memory_mb: 32,
    };

    println!(
        "Migrating a {} MB DGEMM kernel across different networks:\n",
        size.memory_mb
    );
    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>18}",
        "network", "scheme", "total (s)", "requests", "mean zone budget"
    );

    let scenarios: Vec<(&str, LinkConfig, Option<CrossTrafficSpec>)> = vec![
        ("Fast Ethernet (100 Mb/s)", fast_ethernet(), None),
        ("broadband (6 Mb/s, 2 ms)", broadband(), None),
        (
            "LAN + 8 MB/s cross traffic",
            fast_ethernet(),
            Some(CrossTrafficSpec {
                bytes_per_sec: 8_000_000,
                burst_bytes: 64 * 1024,
            }),
        ),
    ];

    for (label, link, cross) in &scenarios {
        let run = |scheme: Scheme| {
            let mut exp = Experiment::new(scheme)
                .kernel(Kernel::Dgemm, size)
                .link(*link)
                .workload_seed(42);
            if let Some(spec) = cross {
                exp = exp.cross_traffic(*spec);
            }
            exp.run().expect("broadband experiment is valid")
        };
        let r = run(Scheme::Ampom);
        println!(
            "{:<26} {:>10} {:>12.2} {:>14} {:>18.1}",
            label,
            "AMPoM",
            r.total_time.as_secs_f64(),
            r.fault_requests,
            r.prefetch_stats.budgets.mean(),
        );
        // NoPrefetch comparison on the same network.
        let rn = run(Scheme::NoPrefetch);
        println!(
            "{:<26} {:>10} {:>12.2} {:>14} {:>18}",
            "",
            "NoPrefetch",
            rn.total_time.as_secs_f64(),
            rn.fault_requests,
            "-",
        );
    }

    println!(
        "\nOn slower or busier links the per-fault round trip grows, so Eq. 3\n\
         raises the dependent-zone size — AMPoM keeps far ahead of NoPrefetch."
    );
}
