//! Quickstart: migrate one process under each scheme and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 64 MB STREAM-like kernel, migrates it right after allocation
//! (the paper's §5.1 protocol) under openMosix (eager), NoPrefetch
//! (demand paging) and AMPoM (demand paging + adaptive prefetching), and
//! prints the headline numbers of the paper: freeze time, total execution
//! time, and how many page-fault requests prefetching avoided.

use ampom::core::{Experiment, Scheme};
use ampom::workloads::sizes::ProblemSize;
use ampom::workloads::Kernel;

fn main() {
    let size = ProblemSize {
        problem: 0,
        memory_mb: 64,
    };

    println!(
        "Migrating a {} MB STREAM kernel under three schemes:\n",
        size.memory_mb
    );
    println!(
        "{:<12} {:>12} {:>12} {:>16} {:>14}",
        "scheme", "freeze (s)", "total (s)", "fault requests", "prefetched"
    );

    let mut eager_freeze = None;
    let mut baseline_faults = None;
    for scheme in [Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom] {
        let report = Experiment::new(scheme)
            .kernel(Kernel::Stream, size)
            .workload_seed(42)
            .run()
            .expect("quickstart experiment is valid");
        println!(
            "{:<12} {:>12.3} {:>12.2} {:>16} {:>14}",
            scheme.name(),
            report.freeze_time.as_secs_f64(),
            report.total_time.as_secs_f64(),
            report.fault_requests,
            report.pages_prefetched,
        );
        match scheme {
            Scheme::OpenMosix => eager_freeze = Some(report.freeze_time.as_secs_f64()),
            Scheme::NoPrefetch => baseline_faults = Some(report.fault_requests),
            Scheme::Ampom => {
                if let (Some(base), Some(eager)) = (baseline_faults, eager_freeze) {
                    let prevented = 100.0 * (1.0 - report.fault_requests as f64 / base as f64);
                    println!(
                        "\nAMPoM avoided {prevented:.1}% of NoPrefetch's page-fault requests \
                         and {:.1}% of openMosix's freeze time.",
                        100.0 * (1.0 - report.freeze_time.as_secs_f64() / eager)
                    );
                }
            }
            _ => {}
        }
    }
}
