//! Quickstart: migrate one process under each scheme and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 64 MB STREAM-like kernel, migrates it right after allocation
//! (the paper's §5.1 protocol) under openMosix (eager), NoPrefetch
//! (demand paging) and AMPoM (demand paging + adaptive prefetching), and
//! prints the headline numbers of the paper: freeze time, total execution
//! time, and how many page-fault requests prefetching avoided.

use ampom::core::migration::Scheme;
use ampom::core::runner::{run_workload, RunConfig};
use ampom::workloads::sizes::ProblemSize;
use ampom::workloads::{build_kernel, Kernel};

fn main() {
    let size = ProblemSize {
        problem: 0,
        memory_mb: 64,
    };

    println!("Migrating a {} MB STREAM kernel under three schemes:\n", size.memory_mb);
    println!(
        "{:<12} {:>12} {:>12} {:>16} {:>14}",
        "scheme", "freeze (s)", "total (s)", "fault requests", "prefetched"
    );

    let mut baseline_faults = None;
    for scheme in [Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom] {
        let mut workload = build_kernel(Kernel::Stream, &size, 42);
        let report = run_workload(workload.as_mut(), &RunConfig::new(scheme));
        println!(
            "{:<12} {:>12.3} {:>12.2} {:>16} {:>14}",
            scheme.name(),
            report.freeze_time.as_secs_f64(),
            report.total_time.as_secs_f64(),
            report.fault_requests,
            report.pages_prefetched,
        );
        if scheme == Scheme::NoPrefetch {
            baseline_faults = Some(report.fault_requests);
        } else if scheme == Scheme::Ampom {
            if let Some(base) = baseline_faults {
                let prevented = 100.0 * (1.0 - report.fault_requests as f64 / base as f64);
                println!(
                    "\nAMPoM avoided {prevented:.1}% of NoPrefetch's page-fault requests \
                     and {:.1}% of openMosix's freeze time.",
                    100.0 * (1.0 - report.freeze_time.as_secs_f64() / eager_freeze(&size))
                );
            }
        }
    }
}

/// The eager freeze time for the same workload (recomputed for the
/// closing summary line).
fn eager_freeze(size: &ProblemSize) -> f64 {
    let mut w = build_kernel(Kernel::Stream, size, 42);
    run_workload(w.as_mut(), &RunConfig::new(Scheme::OpenMosix))
        .freeze_time
        .as_secs_f64()
}
