//! Migrating a virtual machine: multi-process access streams (paper §7).
//!
//! ```sh
//! cargo run --release --example vm_migration
//! ```
//!
//! The paper's final future-work item: "a tailored AMPoM for migrating
//! virtual machines whose memory references are consisted of access
//! streams from multiple processes." A VM's fault stream interleaves its
//! guests' streams; with `k` busy guests a per-guest sequential pattern
//! appears as stride-`k` in a single shared lookback window — invisible
//! beyond `dmax = 4`. The tailored design keeps one window per guest
//! process. This example migrates VMs with 2–8 guests and compares the
//! naive and tailored analyses with the pure Eq. 3 algorithm.

use ampom::core::prefetcher::AmpomConfig;
use ampom::core::vm::{run_vm, VmAnalysis, VmWorkload};
use ampom::core::{Experiment, Scheme};
use ampom::sim::time::SimDuration;
use ampom::workloads::synthetic::Sequential;
use ampom::workloads::Workload;

fn build_vm(guests: usize) -> VmWorkload {
    let procs: Vec<Box<dyn Workload>> = (0..guests)
        .map(|_| Box::new(Sequential::new(1500, SimDuration::from_micros(15))) as Box<dyn Workload>)
        .collect();
    VmWorkload::new(procs, 1)
}

fn main() {
    println!("Migrating a VM whose guests each sweep memory sequentially.");
    println!("(pure Eq. 3 analysis — no baseline read-ahead)\n");
    println!(
        "{:>7} {:<16} {:>14} {:>12} {:>10} {:>10}",
        "guests", "analysis", "fault reqs", "prefetched", "mean S", "total (s)"
    );

    // `run_vm` consumes a raw `RunConfig`; compose it with the builder.
    let cfg = Experiment::new(Scheme::Ampom)
        .ampom(AmpomConfig {
            baseline_readahead: 0,
            ..AmpomConfig::default()
        })
        .config()
        .clone();

    for guests in [2usize, 4, 6, 8] {
        for mode in [
            VmAnalysis::SharedWindow,
            VmAnalysis::PerProcess,
            VmAnalysis::NoPrefetch,
        ] {
            let out = run_vm(build_vm(guests), &cfg, mode);
            println!(
                "{:>7} {:<16} {:>14} {:>12} {:>10.3} {:>10.2}",
                guests,
                mode.name(),
                out.report.fault_requests,
                out.report.pages_prefetched,
                out.mean_score,
                out.report.total_time.as_secs_f64(),
            );
        }
        println!();
    }

    println!(
        "With 2 guests the shared window still sees stride-2 patterns (within\n\
         dmax = 4). From ~5 guests on, the naive analysis scores S ≈ 0 and stops\n\
         prefetching, while the per-process windows keep S ≈ 1 per guest — the\n\
         tailored design the paper proposes."
    );
}
