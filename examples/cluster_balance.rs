//! Cluster-wide load balancing on gossip information (paper §1 + §7).
//!
//! ```sh
//! cargo run --release --example cluster_balance
//! ```
//!
//! Sixteen nodes, Poisson job arrivals skewed onto a quarter of them (jobs
//! start on their users' home nodes), MOSIX-style gossip for load
//! information, and greedy push migration. The experiment crosses two
//! balancing policies with two migration mechanisms and reports job
//! slowdowns — quantifying the paper's §7 claim that cheap freezes make
//! aggressive migration policies viable.

use ampom::cluster::{simulate, BalancePolicy, ClusterConfig};
use ampom::core::Scheme;
use ampom::sim::time::SimDuration;

fn main() {
    println!(
        "16 nodes, 120 jobs (mean 90 s CPU, 230 MB), arrivals on 4 nodes,\n\
         gossip-based load views:\n"
    );
    println!(
        "{:<22} {:<12} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "policy", "migration", "makespan", "mean slowdn", "max slowdn", "migrations", "freeze paid"
    );

    let threshold = BalancePolicy::LifetimeThreshold(SimDuration::from_secs(30));
    for policy in [threshold, BalancePolicy::Aggressive] {
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            let cfg = ClusterConfig::standard(policy, scheme);
            let out = simulate(&cfg);
            println!(
                "{:<22} {:<12} {:>9.0}s {:>12.2} {:>12.1} {:>14} {:>11.1}s",
                policy.name(),
                scheme.name(),
                out.makespan.as_secs_f64(),
                out.slowdown.mean(),
                out.slowdown.max().unwrap_or(0.0),
                out.migrations,
                out.freeze_paid.as_secs_f64(),
            );
        }
    }

    println!(
        "\nEager (openMosix) migration pays ~20 s of freeze per 230 MB move, so each\n\
         balancing decision is expensive; AMPoM's ~0.3 s freezes turn the same\n\
         decisions nearly free, improving slowdowns — especially under the\n\
         aggressive policy."
    );
}
