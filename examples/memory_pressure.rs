//! Migrating into a node that cannot hold the migrant.
//!
//! ```sh
//! cargo run --release --example memory_pressure
//! ```
//!
//! The paper's testbed paired 512 MB nodes with processes up to 575 MB —
//! the destination must evict. Because §2.2 deletes the origin's copy
//! when a page transfers, evicted pages swap back over the network. This
//! example migrates a 64 MB DGEMM into nodes with progressively less free
//! RAM and shows how the two philosophies degrade: eager openMosix ships
//! everything into a node that cannot keep it (bouncing the overflow
//! immediately), while AMPoM's demand-driven resident set tracks the
//! working set and degrades gracefully until the RAM no longer holds
//! even that.

use ampom::core::{Experiment, Scheme};
use ampom::workloads::sizes::ProblemSize;
use ampom::workloads::Kernel;

fn main() {
    const MB: u64 = 64;
    println!("A {MB} MB DGEMM migrant vs destination nodes with shrinking RAM:\n");
    println!(
        "{:>10} {:<12} {:>11} {:>12} {:>14}",
        "node RAM", "scheme", "total (s)", "evictions", "write-back MB"
    );

    for limit in [None, Some(48u64), Some(32), Some(16)] {
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            let size = ProblemSize {
                problem: 0,
                memory_mb: MB,
            };
            let mut exp = Experiment::new(scheme)
                .kernel(Kernel::Dgemm, size)
                .workload_seed(42);
            if let Some(l) = limit {
                exp = exp.resident_limit_mb(l);
            }
            let r = exp.run().expect("pressure experiment is valid");
            println!(
                "{:>10} {:<12} {:>11.2} {:>12} {:>14.1}",
                limit.map_or("unlimited".to_string(), |l| format!("{l} MB")),
                scheme.name(),
                r.total_time.as_secs_f64(),
                r.pages_evicted,
                r.pages_evicted as f64 * 4096.0 / (1024.0 * 1024.0),
            );
        }
        println!();
    }

    println!(
        "At 48 MB (75% of the footprint) AMPoM barely notices — its resident set\n\
         is the working set — while the eager copy thrashes on arrival. Under\n\
         severe pressure both swap over the network, AMPoM roughly 2x faster."
    );
}
