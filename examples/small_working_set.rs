//! The Figure 10 scenario: a large process with a small working set.
//!
//! ```sh
//! cargo run --release --example small_working_set
//! ```
//!
//! The paper's §5.6 argument: interactive and data-intensive applications
//! often allocate far more memory than they touch after a migration
//! ("interactive applications … are often large in size … but might not
//! require to perform all functions at one time"). Eager openMosix must
//! ship the whole dirty address space; AMPoM ships only what the migrant
//! actually uses. This example sweeps the working-set fraction and shows
//! the crossover.

use ampom::core::{Experiment, Scheme, WorkloadSpec};

fn main() {
    const ALLOC_MB: u64 = 128;
    println!("A {ALLOC_MB} MB process migrates, then computes on only part of its memory:\n");
    println!(
        "{:>8} {:>16} {:>12} {:>12}",
        "WS (MB)", "WS fraction", "openMosix", "AMPoM"
    );

    for ws_mb in [16u64, 32, 64, 96, 128] {
        let mut times = Vec::new();
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            let r = Experiment::new(scheme)
                .workload(WorkloadSpec::DgemmSmallWs {
                    alloc_bytes: ALLOC_MB * 1024 * 1024,
                    working_bytes: ws_mb * 1024 * 1024,
                })
                .run()
                .expect("working-set experiment is valid");
            times.push(r.total_time.as_secs_f64());
        }
        println!(
            "{:>8} {:>15}% {:>11.2}s {:>11.2}s{}",
            ws_mb,
            100 * ws_mb / ALLOC_MB,
            times[0],
            times[1],
            if times[1] < times[0] {
                "  <- AMPoM wins"
            } else {
                ""
            }
        );
    }

    println!(
        "\nThe smaller the working set, the bigger AMPoM's win: it transfers only\n\
         the pages the migrant touches, while openMosix always pays for all {ALLOC_MB} MB."
    );
}
