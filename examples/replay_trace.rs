//! Record a reference trace, then drive the migration system from it.
//!
//! ```sh
//! cargo run --release --example replay_trace
//! ```
//!
//! AMPoM only ever sees a page-reference stream, so any trace — captured
//! from a real application, another simulator, or by hand — can drive the
//! full system. This example records a STREAM run to the line-oriented
//! trace format, replays it under both AMPoM and NoPrefetch, and verifies
//! the replay produced the exact same behaviour as the original workload.

use std::io::BufReader;

use ampom::core::{Experiment, Scheme};
use ampom::workloads::stream_kernel::StreamKernel;
use ampom::workloads::trace_io::{write_trace, Replay};

fn main() {
    let data_bytes = 16 * 1024 * 1024;

    // 1. Record the workload into the trace format.
    let mut buf: Vec<u8> = Vec::new();
    let n = write_trace(data_bytes, StreamKernel::new(data_bytes), &mut buf)
        .expect("in-memory write cannot fail");
    println!(
        "recorded {n} references ({:.1} MB of trace text) from a 16 MB STREAM run\n",
        buf.len() as f64 / 1e6
    );

    // 2. Replay it through the migration system.
    println!(
        "{:<12} {:>12} {:>16} {:>14}",
        "scheme", "total (s)", "fault requests", "prefetched"
    );
    for scheme in [Scheme::Ampom, Scheme::NoPrefetch] {
        let mut replay = Replay::from_reader(BufReader::new(&buf[..])).expect("trace parses");
        let r = Experiment::new(scheme)
            .run_on(&mut replay)
            .expect("replay experiment is valid");
        println!(
            "{:<12} {:>12.2} {:>16} {:>14}",
            scheme.name(),
            r.total_time.as_secs_f64(),
            r.fault_requests,
            r.pages_prefetched
        );
    }

    // 3. Confirm the replay is behaviour-identical to the live workload.
    let mut original = StreamKernel::new(data_bytes);
    let ampom = Experiment::new(Scheme::Ampom);
    let live = ampom.run_on(&mut original).expect("live run is valid");
    let mut replay = Replay::from_reader(BufReader::new(&buf[..])).expect("trace parses");
    let replayed = ampom.run_on(&mut replay).expect("replay run is valid");
    assert_eq!(live.fault_requests, replayed.fault_requests);
    assert_eq!(live.total_time, replayed.total_time);
    println!("\nreplay is bit-identical to the live workload (same faults, same time).");
}
