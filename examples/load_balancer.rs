//! Aggressive load balancing enabled by cheap migrations (paper §7).
//!
//! ```sh
//! cargo run --release --example load_balancer
//! ```
//!
//! "New scheduling policies can make use of AMPoM on openMosix to perform
//! more aggressive migrations since the performance penalty of suboptimal
//! decisions has been dramatically decreased." This example runs the
//! two-node load-balancer simulation with both the conservative
//! lifetime-threshold policy (sensible when freezes cost tens of seconds)
//! and an aggressive policy, under eager openMosix migration and under
//! AMPoM — showing that the aggressive policy only pays off when the
//! freeze is cheap.

use ampom::core::migration::Scheme;
use ampom::core::scheduler::{simulate_two_nodes, Job, Policy};
use ampom::sim::time::SimDuration;

fn main() {
    // Eight 2-minute jobs of 575 MB land on one node of an idle pair.
    let jobs: Vec<Job> = (0..8)
        .map(|_| Job {
            remaining: SimDuration::from_secs(120),
            memory_mb: 575,
        })
        .collect();

    println!("8 jobs x 120 s x 575 MB arrive on one node; a second node is idle.\n");
    println!(
        "{:<22} {:<12} {:>12} {:>12} {:>14}",
        "policy", "migration", "makespan", "migrations", "freeze paid"
    );

    let threshold = Policy::LifetimeThreshold(SimDuration::from_secs(60));
    for (policy, pname) in [
        (threshold, "threshold(60s)"),
        (Policy::Aggressive, "aggressive"),
    ] {
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            let out = simulate_two_nodes(&jobs, policy, scheme);
            println!(
                "{:<22} {:<12} {:>11.0}s {:>12} {:>13.1}s",
                pname,
                scheme.name(),
                out.makespan.as_secs_f64(),
                out.migrations,
                out.freeze_paid.as_secs_f64(),
            );
        }
    }

    println!(
        "\nWith eager (openMosix) migration each move freezes the job for ~54 s, so\n\
         aggressive balancing pays a heavy freeze bill. AMPoM's sub-second freezes\n\
         make the aggressive policy safe — the paper's §7 scheduling argument."
    );
}
