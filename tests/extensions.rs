//! Integration tests of the extension subsystems through the public
//! facade: VM migration, cluster balancing, round trips, memory pressure
//! and syscall forwarding — composed end to end.

use ampom::cluster::{simulate, BalancePolicy, ClusterConfig};
use ampom::core::prefetcher::AmpomConfig;
use ampom::core::remigration::run_round_trip;
use ampom::core::runner::{run_workload, RunConfig, SyscallProfile};
use ampom::core::vm::{run_vm, VmAnalysis, VmWorkload};
use ampom::core::Scheme;
use ampom::sim::time::SimDuration;
use ampom::workloads::hpl::Hpl;
use ampom::workloads::ptrans::Ptrans;
use ampom::workloads::synthetic::{Sequential, Strided};
use ampom::workloads::Workload;

const CPU: SimDuration = SimDuration::from_micros(15);

#[test]
fn vm_per_process_windows_survive_many_guests() {
    let build = |k: usize| {
        let procs: Vec<Box<dyn Workload>> = (0..k)
            .map(|_| Box::new(Sequential::new(300, CPU)) as Box<dyn Workload>)
            .collect();
        VmWorkload::new(procs, 1)
    };
    let mut cfg = RunConfig::new(Scheme::Ampom);
    cfg.ampom = AmpomConfig {
        baseline_readahead: 0,
        ..AmpomConfig::default()
    };
    // The shared window's score must collapse once the guest count
    // exceeds dmax, while per-process scores stay high at every count.
    for k in [2usize, 6] {
        let shared = run_vm(build(k), &cfg, VmAnalysis::SharedWindow);
        let per_proc = run_vm(build(k), &cfg, VmAnalysis::PerProcess);
        assert!(per_proc.mean_score > 0.9, "k={k}: {}", per_proc.mean_score);
        if k > 4 {
            assert!(shared.mean_score < 0.1, "k={k}: {}", shared.mean_score);
            assert!(per_proc.report.total_time < shared.report.total_time);
        }
    }
}

#[test]
fn cluster_ampom_beats_eager_on_tail_latency() {
    let run = |scheme| {
        let mut cfg = ClusterConfig::standard(BalancePolicy::Aggressive, scheme);
        cfg.nodes = 8;
        cfg.jobs = 40;
        simulate(&cfg)
    };
    let ampom = run(Scheme::Ampom);
    let eager = run(Scheme::OpenMosix);
    assert!(ampom.slowdown.mean() <= eager.slowdown.mean());
    assert!(ampom.slowdown.max().unwrap() <= eager.slowdown.max().unwrap());
    assert!(ampom.freeze_paid.as_secs_f64() * 10.0 < eager.freeze_paid.as_secs_f64());
}

#[test]
fn round_trip_is_cheap_when_the_stay_is_short() {
    let mut w = Sequential::new(1024, CPU);
    let ampom = run_round_trip(&mut w, &RunConfig::new(Scheme::Ampom), 0.25);
    let mut w = Sequential::new(1024, CPU);
    let eager = run_round_trip(&mut w, &RunConfig::new(Scheme::OpenMosix), 0.25);
    assert!(ampom.total_time.as_secs_f64() * 2.0 < eager.total_time.as_secs_f64());
    assert!(ampom.pages_returned < eager.pages_returned / 2);
}

#[test]
fn pressure_degrades_gracefully_under_ampom() {
    let mk = || Sequential::new(1024, CPU);
    let free = run_workload(&mut mk(), &RunConfig::new(Scheme::Ampom));
    let mut cfg = RunConfig::new(Scheme::Ampom);
    cfg.resident_limit_mb = Some(2);
    let tight = run_workload(&mut mk(), &cfg);
    // A single sweep with no reuse: pressure costs write-backs but the
    // run must not blow up (no re-fetch thrash on a non-reusing stream).
    assert!(tight.pages_evicted > 0);
    assert!(
        tight.total_time.as_secs_f64() < free.total_time.as_secs_f64() * 1.5,
        "graceful: {} vs {}",
        tight.total_time,
        free.total_time
    );
}

#[test]
fn syscalls_and_prefetching_compose() {
    let mut w = Sequential::new(512, CPU);
    let mut cfg = RunConfig::new(Scheme::Ampom);
    cfg.syscalls = Some(SyscallProfile {
        every_refs: 64,
        work: SimDuration::from_micros(10),
    });
    let r = run_workload(&mut w, &cfg);
    assert_eq!(r.syscalls_forwarded, 8);
    assert!(r.pages_prefetched > 400, "prefetching keeps working");
}

#[test]
fn extension_workloads_complete_under_all_schemes() {
    for scheme in [Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom] {
        let mut p = Ptrans::new(4 * 1024 * 1024);
        let rp = run_workload(&mut p, &RunConfig::new(scheme));
        assert!(rp.total_time.as_nanos() > 0, "{scheme:?} PTRANS");
        let mut h = Hpl::new(4 * 1024 * 1024);
        let rh = run_workload(&mut h, &RunConfig::new(scheme));
        assert!(rh.total_time.as_nanos() > 0, "{scheme:?} HPL");
        assert_eq!(rp.compute_time, {
            let mut p2 = Ptrans::new(4 * 1024 * 1024);
            run_workload(&mut p2, &RunConfig::new(scheme)).compute_time
        });
    }
}

#[test]
fn dmax_knife_edge_on_interleaved_streams() {
    // Three interleaved sequential lanes put each page's successor three
    // window slots later: invisible to dmax ∈ {1, 2}, detectable from
    // dmax = 3 on (pure Eq. 3, no read-ahead floor).
    use ampom::workloads::synthetic::Interleaved;
    let run = |dmax: usize| {
        let mut w = Interleaved::new(3, 400, CPU);
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.ampom = AmpomConfig {
            dmax,
            baseline_readahead: 0,
            ..AmpomConfig::default()
        };
        run_workload(&mut w, &cfg)
    };
    let blind = run(2);
    let sighted = run(4);
    assert_eq!(blind.pages_prefetched, 0, "stride 3 invisible at dmax 2");
    assert!(
        sighted.pages_prefetched > 500,
        "{}",
        sighted.pages_prefetched
    );
    assert!(sighted.fault_requests * 4 < blind.fault_requests);
    assert!(sighted.total_time < blind.total_time);
}

#[test]
fn value_strided_sweep_is_adversarial_at_any_dmax() {
    // The column-major walk: successor pages are a whole lane apart, so
    // the census never fires regardless of dmax — only the read-ahead
    // fallback (disabled here) could help.
    let run = |dmax: usize| {
        let mut w = Strided::new(1200, 3, CPU);
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.ampom = AmpomConfig {
            dmax,
            baseline_readahead: 0,
            ..AmpomConfig::default()
        };
        run_workload(&mut w, &cfg)
    };
    for dmax in [2usize, 4, 8] {
        let r = run(dmax);
        assert_eq!(r.pages_prefetched, 0, "dmax {dmax}");
    }
}

#[test]
fn composed_workloads_run_end_to_end() {
    use ampom::workloads::compose::{Concat, Repeat, Scaled};
    // An app lifecycle: a warm-up sweep replayed twice, then a slower
    // random phase — migrated under AMPoM.
    use ampom::sim::rng::SimRng;
    use ampom::workloads::synthetic::UniformRandom;
    let mut w = Concat::new(vec![
        Box::new(Repeat::new(Box::new(Sequential::new(128, CPU)), 2)),
        Box::new(Scaled::new(
            Box::new(UniformRandom::new(64, 200, CPU, SimRng::seed_from_u64(4))),
            2.0,
        )),
    ]);
    let r = run_workload(&mut w, &RunConfig::new(Scheme::Ampom));
    assert!(r.total_time.as_nanos() > 0);
    assert!(r.pages_prefetched > 0);
    // The sequential phase's second pass is all hits: faults bounded by
    // the distinct footprint.
    assert!(r.faults_total <= 128 + 64 + 8);
}

#[test]
fn ptrans_prefetching_lands_between_stream_and_nothing() {
    let mut p = Ptrans::new(8 * 1024 * 1024);
    let ampom = run_workload(&mut p, &RunConfig::new(Scheme::Ampom));
    let mut p = Ptrans::new(8 * 1024 * 1024);
    let nopf = run_workload(&mut p, &RunConfig::new(Scheme::NoPrefetch));
    let prevented = ampom.fault_prevention_vs(&nopf);
    assert!(prevented > 0.5, "prevented {prevented}");
    // But the strided write lane keeps it short of a pure sequential
    // kernel's ~99.9%.
    assert!(prevented < 0.999);
}
