//! Cross-crate property-based tests: invariants that must hold for *any*
//! workload shape, checked with the in-tree propcheck harness over
//! randomized synthetic reference streams and randomized AMPoM
//! configurations.

use std::collections::HashSet;

use ampom::core::migration::Scheme;
use ampom::core::prefetcher::{AmpomConfig, NetEstimates};
use ampom::core::runner::{run_workload, RunConfig};
use ampom::core::{PolicySpec, PrefetchFeedback, RunReport};
use ampom::mem::page::PageId;
use ampom::sim::propcheck::{forall, Gen};
use ampom::sim::rng::SimRng;
use ampom::sim::time::{SimDuration, SimTime};
use ampom::workloads::synthetic::{Interleaved, Scripted, Sequential, UniformRandom};
use ampom::workloads::Workload;

fn run_with(w: &mut dyn Workload, scheme: Scheme) -> RunReport {
    run_workload(w, &RunConfig::new(scheme))
}

/// A randomized scripted workload over up to 256 pages.
fn random_script(g: &mut Gen) -> (u64, Vec<u64>) {
    let pages = g.u64(16..257);
    let seq = g.vec_u64(1..400, 0..pages);
    (pages, seq)
}

#[test]
fn all_schemes_complete_any_scripted_workload() {
    forall("all-schemes-complete", 24, |g| {
        let (pages, seq) = random_script(g);
        for scheme in [
            Scheme::OpenMosix,
            Scheme::NoPrefetch,
            Scheme::Ampom,
            Scheme::Ffa,
        ] {
            let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
            let r = run_with(&mut w, scheme);
            assert!(r.total_time.as_nanos() > 0);
            assert!(r.total_time >= r.freeze_time);
        }
    });
}

#[test]
fn compute_time_matches_stream_cpu() {
    forall("compute-matches-cpu", 24, |g| {
        let (pages, seq) = random_script(g);
        let cpu = SimDuration::from_micros(5);
        let expected = cpu * seq.len() as u64;
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            let mut w = Scripted::new(pages, &seq, cpu);
            let r = run_with(&mut w, scheme);
            assert_eq!(r.compute_time, expected);
        }
    });
}

#[test]
fn ampom_never_requests_more_than_noprefetch() {
    forall("ampom-fewer-requests", 24, |g| {
        let (pages, seq) = random_script(g);
        let cpu = SimDuration::from_micros(5);
        let mut w = Scripted::new(pages, &seq, cpu);
        let ampom = run_with(&mut w, Scheme::Ampom);
        let mut w = Scripted::new(pages, &seq, cpu);
        let nopf = run_with(&mut w, Scheme::NoPrefetch);
        assert!(ampom.fault_requests <= nopf.fault_requests);
        // And NoPrefetch's demand count equals its distinct remote pages.
        assert_eq!(nopf.pages_demand_fetched, nopf.fault_requests);
    });
}

#[test]
fn page_conservation_under_ampom() {
    forall("page-conservation", 24, |g| {
        let (pages, seq) = random_script(g);
        let mut distinct: Vec<u64> = seq.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
        let r = run_with(&mut w, Scheme::Ampom);
        // Every distinct touched page was satisfied from exactly one of:
        // freeze pages (3), demand fetch, prefetch, or local allocation.
        assert!(
            r.pages_demand_fetched + r.prefetched_pages_used + r.pages_local_alloc + 3
                >= distinct.len() as u64
        );
        // Total fetched never exceeds the mapped footprint (the deputy
        // refuses to ship a page twice).
        assert!(r.pages_demand_fetched + r.pages_prefetched <= pages + 200 /* code+stack margin */);
    });
}

#[test]
fn openmosix_never_faults_remotely() {
    forall("openmosix-no-faults", 24, |g| {
        let (pages, seq) = random_script(g);
        let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
        let r = run_with(&mut w, Scheme::OpenMosix);
        assert_eq!(r.fault_requests, 0);
        assert_eq!(r.pages_prefetched, 0);
        assert_eq!(r.stall_time, SimDuration::ZERO);
    });
}

#[test]
fn random_ampom_configs_are_safe() {
    forall("random-configs-safe", 24, |g| {
        let window_len = g.usize(2..64);
        let dmax = g.usize(1..8);
        if dmax >= window_len {
            return; // equivalent of prop_assume!
        }
        let baseline = g.u64(0..64);
        let cap = g.u64(1..1024);
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.ampom = AmpomConfig {
            window_len,
            dmax,
            baseline_readahead: baseline.min(cap),
            max_zone: cap,
        };
        let mut w = Sequential::new(128, SimDuration::from_micros(5));
        let r = run_workload(&mut w, &cfg);
        assert!(r.total_time.as_nanos() > 0);
        // The cap bounds every batch: pages prefetched per request can
        // never exceed it.
        if r.fault_requests + r.prefetch_only_requests > 0 {
            let per_request =
                r.pages_prefetched as f64 / (r.fault_requests + r.prefetch_only_requests) as f64;
            assert!(per_request <= cap as f64 + 1e-9);
        }
    });
}

#[test]
fn deterministic_across_identical_runs() {
    forall("identical-runs", 24, |g| {
        let seed = g.u64(0..1000);
        let build = || {
            UniformRandom::new(
                64,
                256,
                SimDuration::from_micros(5),
                SimRng::seed_from_u64(seed),
            )
        };
        let a = run_with(&mut build(), Scheme::Ampom);
        let b = run_with(&mut build(), Scheme::Ampom);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.fault_requests, b.fault_requests);
        assert_eq!(a.pages_prefetched, b.pages_prefetched);
    });
}

#[test]
fn time_accounting_is_consistent() {
    forall("time-accounting", 24, |g| {
        let (pages, seq) = random_script(g);
        for scheme in [Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom] {
            let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
            let r = run_with(&mut w, scheme);
            // The wall clock decomposes: nothing accounted can exceed it.
            assert!(r.compute_time <= r.total_time);
            assert!(r.stall_time <= r.total_time);
            assert!(r.freeze_time <= r.total_time);
            assert!(r.analysis_time <= r.total_time);
            let accounted = r.freeze_time + r.compute_time + r.stall_time + r.analysis_time;
            // Stall/compute/freeze/analysis never overlap, so their sum is
            // bounded by the total (the remainder is per-page kernel work).
            assert!(accounted <= r.total_time);
        }
    });
}

#[test]
fn bytes_accounting_covers_fetched_pages() {
    forall("bytes-accounting", 24, |g| {
        let (pages, seq) = random_script(g);
        let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
        let r = run_with(&mut w, Scheme::Ampom);
        // Every fetched page crossed the wire with at least PAGE_SIZE bytes.
        let fetched = r.pages_demand_fetched + r.pages_prefetched;
        assert!(r.bytes_to_dest >= fetched * 4096);
        // Requests flowed the other way.
        if r.fault_requests + r.prefetch_only_requests > 0 {
            assert!(r.bytes_from_dest > 0);
        }
    });
}

#[test]
fn pressure_never_exceeds_the_resident_limit() {
    forall("resident-limit", 24, |g| {
        let (pages, seq) = random_script(g);
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.resident_limit_mb = Some(1); // 256 pages
        let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
        let r = run_workload(&mut w, &cfg);
        assert!(r.total_time.as_nanos() > 0);
        // The run completes and evictions (if any) are all accounted as
        // write-back traffic on the request link.
        if r.pages_evicted > 0 {
            assert!(r.bytes_from_dest >= r.pages_evicted * 4096);
        }
    });
}

/// Golden fingerprint of a 512-page sequential sweep under
/// `Scheme::Ampom` with every default, captured before the `Prefetcher`
/// trait existed (when the run loops called [`AmpomPrefetcher`]
/// directly). The trait-object default path must stay bit-identical.
const GOLD_SEQ512_AMPOM: u64 = 0xef7c94edaf2703bf;

#[test]
fn trait_object_default_policy_matches_the_pre_refactor_fingerprint() {
    let cpu = SimDuration::from_micros(10);
    let baseline = run_workload(
        &mut Sequential::new(512, cpu),
        &RunConfig::new(Scheme::Ampom),
    );
    assert_eq!(
        baseline.fingerprint(),
        GOLD_SEQ512_AMPOM,
        "the Box<dyn Prefetcher> default path drifted from the pre-trait engine"
    );
    // Asking for the default policy explicitly is the same run.
    let explicit = run_workload(
        &mut Sequential::new(512, cpu),
        &RunConfig::new(Scheme::Ampom).with_policy(PolicySpec::Ampom),
    );
    assert_eq!(explicit.fingerprint(), GOLD_SEQ512_AMPOM);
}

/// Drives one boxed policy through a generated fault stream while
/// mirroring the runner's bookkeeping: the fetchable predicate rejects
/// resident and in-flight pages, and every page a decision requests
/// immediately becomes in-flight.
fn check_policy_conservation(g: &mut Gen, spec: &PolicySpec) {
    let mut pf = spec.build(&AmpomConfig::default());
    let page_limit = PageId(g.u64(64..4096));
    let faults = g.usize(10..80);
    let stride = g.u64(1..4);
    let mut resident: HashSet<u64> = HashSet::new();
    let mut now = SimTime::ZERO;
    let mut cursor = g.u64(0..page_limit.0);
    let mut prefetched: u64 = 0;
    let mut used: u64 = 0;

    for _ in 0..faults {
        // Mostly strided so trend detectors engage, with random jumps
        // mixed in so back-off paths run too.
        let page = if g.bool(0.7) {
            cursor = (cursor + stride) % page_limit.0;
            PageId(cursor)
        } else {
            cursor = g.u64(0..page_limit.0);
            PageId(cursor)
        };
        now += SimDuration::from_micros(g.u64(5..500));
        let net = NetEstimates {
            t0: SimDuration::from_micros(g.u64(20..400)),
            td: SimDuration::from_micros(g.u64(2..60)),
        };

        // The runner feeds monotone cumulative outcome counters before
        // each analysis; model a plausible hit ratio.
        used += g.u64(0..prefetched.saturating_sub(used) + 1);
        pf.note_outcome(PrefetchFeedback {
            pages_prefetched: prefetched,
            prefetched_used: used,
        });

        // The faulted page is being demand-fetched: not fetchable.
        resident.insert(page.0);
        let d = pf.on_fault(page, now, g.unit_f64(), net, page_limit, &mut |p| {
            !resident.contains(&p.0)
        });

        let mut this_decision: HashSet<u64> = HashSet::new();
        for p in &d.prefetch {
            assert!(p.0 < page_limit.0, "{}: out-of-space page", spec.label());
            assert_ne!(*p, page, "{}: requested the faulted page", spec.label());
            assert!(
                !resident.contains(&p.0),
                "{}: requested resident/pending page {}",
                spec.label(),
                p.0
            );
            assert!(
                this_decision.insert(p.0),
                "{}: duplicate page {} in one decision",
                spec.label(),
                p.0
            );
            resident.insert(p.0);
        }
        prefetched += d.prefetch.len() as u64;
        assert!(d.prefetch.len() as u64 <= d.budget.max(1));
    }
    // The observation snapshot agrees with what the stream drove.
    let obs = pf.observe();
    assert_eq!(obs.policy, spec.label());
    assert_eq!(obs.stats.analyses, faults as u64);
    assert_eq!(obs.stats.pages_selected, prefetched);
}

#[test]
fn no_policy_requests_a_resident_or_pending_page() {
    forall("policy-conservation", 24, |g| {
        for spec in PolicySpec::all() {
            check_policy_conservation(g, &spec);
        }
    });
}

#[test]
fn every_policy_completes_any_scripted_workload() {
    forall("policies-complete", 16, |g| {
        let (pages, seq) = random_script(g);
        let cpu = SimDuration::from_micros(5);
        let mut totals = Vec::new();
        for spec in PolicySpec::all() {
            let mut w = Scripted::new(pages, &seq, cpu);
            let cfg = RunConfig::new(Scheme::Ampom).with_policy(spec);
            let r = run_workload(&mut w, &cfg);
            assert!(r.total_time.as_nanos() > 0);
            assert_eq!(r.compute_time, cpu * seq.len() as u64);
            // Prefetching never loses pages: everything the migrant
            // touched arrived via freeze, demand, prefetch or local alloc.
            let mut distinct: Vec<u64> = seq.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(
                r.pages_demand_fetched + r.prefetched_pages_used + r.pages_local_alloc + 3
                    >= distinct.len() as u64
            );
            totals.push(r.total_time);
        }
        // All policies saw the identical reference stream, so compute
        // time is shared even though totals differ.
        assert_eq!(totals.len(), PolicySpec::all().len());
    });
}

#[test]
fn interleaved_streams_always_get_prefetched() {
    forall("interleaved-prefetch", 24, |g| {
        let lanes = g.u64(2..6);
        let lane_pages = g.u64(20..60);
        let mut w = Interleaved::new(lanes, lane_pages, SimDuration::from_micros(5));
        let r = run_with(&mut w, Scheme::Ampom);
        assert!(r.pages_prefetched > 0);
        // Interleaved sequential lanes are the best case: the vast
        // majority of fault requests are avoided.
        let mut w = Interleaved::new(lanes, lane_pages, SimDuration::from_micros(5));
        let nopf = run_with(&mut w, Scheme::NoPrefetch);
        assert!(r.fault_requests * 2 < nopf.fault_requests);
    });
}
