//! Cross-crate property-based tests: invariants that must hold for *any*
//! workload shape, checked with proptest over randomized synthetic
//! reference streams and randomized AMPoM configurations.

use ampom::core::migration::Scheme;
use ampom::core::prefetcher::AmpomConfig;
use ampom::core::runner::{run_workload, RunConfig};
use ampom::core::RunReport;
use ampom::sim::rng::SimRng;
use ampom::sim::time::SimDuration;
use ampom::workloads::synthetic::{Interleaved, Scripted, Sequential, UniformRandom};
use ampom::workloads::Workload;
use proptest::prelude::*;

fn run_with(w: &mut dyn Workload, scheme: Scheme) -> RunReport {
    run_workload(w, &RunConfig::new(scheme))
}

/// A randomized scripted workload over up to 256 pages.
fn scripted_strategy() -> impl Strategy<Value = (u64, Vec<u64>)> {
    (16u64..=256).prop_flat_map(|pages| {
        (
            Just(pages),
            prop::collection::vec(0..pages, 1..400),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_schemes_complete_any_scripted_workload((pages, seq) in scripted_strategy()) {
        for scheme in [Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom, Scheme::Ffa] {
            let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
            let r = run_with(&mut w, scheme);
            prop_assert!(r.total_time.as_nanos() > 0);
            prop_assert!(r.total_time >= r.freeze_time);
        }
    }

    #[test]
    fn compute_time_matches_stream_cpu((pages, seq) in scripted_strategy()) {
        let cpu = SimDuration::from_micros(5);
        let expected = cpu * seq.len() as u64;
        for scheme in [Scheme::OpenMosix, Scheme::Ampom] {
            let mut w = Scripted::new(pages, &seq, cpu);
            let r = run_with(&mut w, scheme);
            prop_assert_eq!(r.compute_time, expected);
        }
    }

    #[test]
    fn ampom_never_requests_more_than_noprefetch((pages, seq) in scripted_strategy()) {
        let cpu = SimDuration::from_micros(5);
        let mut w = Scripted::new(pages, &seq, cpu);
        let ampom = run_with(&mut w, Scheme::Ampom);
        let mut w = Scripted::new(pages, &seq, cpu);
        let nopf = run_with(&mut w, Scheme::NoPrefetch);
        prop_assert!(ampom.fault_requests <= nopf.fault_requests);
        // And NoPrefetch's demand count equals its distinct remote pages.
        prop_assert_eq!(nopf.pages_demand_fetched, nopf.fault_requests);
    }

    #[test]
    fn page_conservation_under_ampom((pages, seq) in scripted_strategy()) {
        let mut distinct: Vec<u64> = seq.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
        let r = run_with(&mut w, Scheme::Ampom);
        // Every distinct touched page was satisfied from exactly one of:
        // freeze pages (3), demand fetch, prefetch, or local allocation.
        prop_assert!(
            r.pages_demand_fetched + r.prefetched_pages_used + r.pages_local_alloc + 3
                >= distinct.len() as u64
        );
        // Total fetched never exceeds the mapped footprint (the deputy
        // refuses to ship a page twice).
        prop_assert!(
            r.pages_demand_fetched + r.pages_prefetched
                <= pages + 200 /* code+stack margin */
        );
    }

    #[test]
    fn openmosix_never_faults_remotely((pages, seq) in scripted_strategy()) {
        let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
        let r = run_with(&mut w, Scheme::OpenMosix);
        prop_assert_eq!(r.fault_requests, 0);
        prop_assert_eq!(r.pages_prefetched, 0);
        prop_assert_eq!(r.stall_time, SimDuration::ZERO);
    }

    #[test]
    fn random_ampom_configs_are_safe(
        window_len in 2usize..64,
        dmax in 1usize..8,
        baseline in 0u64..64,
        cap in 1u64..1024,
    ) {
        prop_assume!(dmax < window_len);
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.ampom = AmpomConfig {
            window_len,
            dmax,
            baseline_readahead: baseline,
            max_zone: cap,
        };
        let mut w = Sequential::new(128, SimDuration::from_micros(5));
        let r = run_workload(&mut w, &cfg);
        prop_assert!(r.total_time.as_nanos() > 0);
        // The cap bounds every batch: pages prefetched per request can
        // never exceed it.
        if r.fault_requests + r.prefetch_only_requests > 0 {
            let per_request = r.pages_prefetched as f64
                / (r.fault_requests + r.prefetch_only_requests) as f64;
            prop_assert!(per_request <= cap as f64 + 1e-9);
        }
    }

    #[test]
    fn deterministic_across_identical_runs(seed in 0u64..1000) {
        let build = || UniformRandom::new(
            64, 256, SimDuration::from_micros(5), SimRng::seed_from_u64(seed),
        );
        let a = run_with(&mut build(), Scheme::Ampom);
        let b = run_with(&mut build(), Scheme::Ampom);
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.fault_requests, b.fault_requests);
        prop_assert_eq!(a.pages_prefetched, b.pages_prefetched);
    }

    #[test]
    fn time_accounting_is_consistent((pages, seq) in scripted_strategy()) {
        for scheme in [Scheme::OpenMosix, Scheme::NoPrefetch, Scheme::Ampom] {
            let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
            let r = run_with(&mut w, scheme);
            // The wall clock decomposes: nothing accounted can exceed it.
            prop_assert!(r.compute_time <= r.total_time);
            prop_assert!(r.stall_time <= r.total_time);
            prop_assert!(r.freeze_time <= r.total_time);
            prop_assert!(r.analysis_time <= r.total_time);
            let accounted = r.freeze_time + r.compute_time + r.stall_time
                + r.analysis_time;
            // Stall/compute/freeze/analysis never overlap, so their sum is
            // bounded by the total (the remainder is per-page kernel work).
            prop_assert!(accounted <= r.total_time);
        }
    }

    #[test]
    fn bytes_accounting_covers_fetched_pages((pages, seq) in scripted_strategy()) {
        let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
        let r = run_with(&mut w, Scheme::Ampom);
        // Every fetched page crossed the wire with at least PAGE_SIZE bytes.
        let fetched = r.pages_demand_fetched + r.pages_prefetched;
        prop_assert!(r.bytes_to_dest >= fetched * 4096);
        // Requests flowed the other way.
        if r.fault_requests + r.prefetch_only_requests > 0 {
            prop_assert!(r.bytes_from_dest > 0);
        }
    }

    #[test]
    fn pressure_never_exceeds_the_resident_limit((pages, seq) in scripted_strategy()) {
        use ampom::core::runner::RunConfig;
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.resident_limit_mb = Some(1); // 256 pages
        let mut w = Scripted::new(pages, &seq, SimDuration::from_micros(5));
        let r = ampom::core::runner::run_workload(&mut w, &cfg);
        prop_assert!(r.total_time.as_nanos() > 0);
        // The run completes and evictions (if any) are all accounted as
        // write-back traffic on the request link.
        if r.pages_evicted > 0 {
            prop_assert!(r.bytes_from_dest >= r.pages_evicted * 4096);
        }
    }

    #[test]
    fn interleaved_streams_always_get_prefetched(lanes in 2u64..6, lane_pages in 20u64..60) {
        let mut w = Interleaved::new(lanes, lane_pages, SimDuration::from_micros(5));
        let r = run_with(&mut w, Scheme::Ampom);
        prop_assert!(r.pages_prefetched > 0);
        // Interleaved sequential lanes are the best case: the vast
        // majority of fault requests are avoided.
        let mut w = Interleaved::new(lanes, lane_pages, SimDuration::from_micros(5));
        let nopf = run_with(&mut w, Scheme::NoPrefetch);
        prop_assert!(r.fault_requests * 2 < nopf.fault_requests);
    }
}
