//! End-to-end integration tests: the paper's headline claims, asserted
//! against full runs of the public API at reduced problem sizes.

use ampom::core::migration::Scheme;
use ampom::core::runner::{run_workload, RunConfig};
use ampom::core::RunReport;
use ampom::net::calibration::broadband;
use ampom::workloads::dgemm::DgemmSmallWs;
use ampom::workloads::sizes::ProblemSize;
use ampom::workloads::{build_kernel, Kernel};

const MB: u64 = 1024 * 1024;

fn run(kernel: Kernel, memory_mb: u64, scheme: Scheme) -> RunReport {
    let size = ProblemSize {
        problem: 0,
        memory_mb,
    };
    let mut w = build_kernel(kernel, &size, 7);
    run_workload(w.as_mut(), &RunConfig::new(scheme))
}

#[test]
fn freeze_time_ordering_all_kernels() {
    // Figure 5: NoPrefetch < AMPoM << openMosix at every size.
    for kernel in Kernel::ALL {
        let eager = run(kernel, 8, Scheme::OpenMosix);
        let ampom = run(kernel, 8, Scheme::Ampom);
        let nopf = run(kernel, 8, Scheme::NoPrefetch);
        assert!(nopf.freeze_time < ampom.freeze_time, "{kernel:?}");
        assert!(ampom.freeze_time < eager.freeze_time, "{kernel:?}");
        // AMPoM avoids the overwhelming majority of the eager freeze.
        assert!(
            ampom.freeze_time.as_secs_f64() < 0.2 * eager.freeze_time.as_secs_f64(),
            "{kernel:?}: {} vs {}",
            ampom.freeze_time,
            eager.freeze_time
        );
    }
}

#[test]
fn ampom_execution_close_to_openmosix_on_sequential_kernels() {
    // Figure 6: AMPoM within a few percent of openMosix.
    for kernel in [Kernel::Dgemm, Kernel::Stream, Kernel::Fft] {
        let eager = run(kernel, 8, Scheme::OpenMosix);
        let ampom = run(kernel, 8, Scheme::Ampom);
        let increase = ampom.exec_increase_vs(&eager);
        assert!(
            increase.abs() < 20.0,
            "{kernel:?}: AMPoM {increase:+.1}% vs openMosix"
        );
    }
}

#[test]
fn noprefetch_lags_behind_everywhere() {
    // Figure 6: "the performance of NoPrefetch clearly lags behind."
    for kernel in Kernel::ALL {
        let eager = run(kernel, 8, Scheme::OpenMosix);
        let ampom = run(kernel, 8, Scheme::Ampom);
        let nopf = run(kernel, 8, Scheme::NoPrefetch);
        assert!(nopf.total_time > ampom.total_time, "{kernel:?}");
        assert!(
            nopf.exec_increase_vs(&eager) > 10.0,
            "{kernel:?}: NoPrefetch only {:+.1}%",
            nopf.exec_increase_vs(&eager)
        );
    }
}

#[test]
fn fault_prevention_matches_paper_bands() {
    // Figure 7: AMPoM prevents 98/99/85/97% of fault requests for
    // DGEMM/STREAM/RandomAccess/FFT. Assert conservative lower bounds.
    let bands = [
        (Kernel::Dgemm, 0.95),
        (Kernel::Stream, 0.95),
        (Kernel::RandomAccess, 0.75),
        (Kernel::Fft, 0.95),
    ];
    for (kernel, floor) in bands {
        let ampom = run(kernel, 16, Scheme::Ampom);
        let nopf = run(kernel, 16, Scheme::NoPrefetch);
        let prevented = ampom.fault_prevention_vs(&nopf);
        assert!(
            prevented >= floor,
            "{kernel:?}: prevented {:.1}% < {:.0}%",
            prevented * 100.0,
            floor * 100.0
        );
    }
}

#[test]
fn prefetch_aggressiveness_adapts_to_pattern() {
    // Figure 8: sequential kernels prefetch aggressively; RandomAccess
    // stays at the conservative baseline.
    let stream = run(Kernel::Stream, 16, Scheme::Ampom);
    let ra = run(Kernel::RandomAccess, 16, Scheme::Ampom);
    let stream_budget = stream.prefetch_stats.budgets.mean();
    let ra_budget = ra.prefetch_stats.budgets.mean();
    assert!(
        stream_budget > 5.0 * ra_budget,
        "STREAM {stream_budget:.1} vs RandomAccess {ra_budget:.1}"
    );
    // And the spatial score distinguishes them sharply.
    assert!(stream.prefetch_stats.scores.mean() > 0.8);
    assert!(ra.prefetch_stats.scores.mean() < 0.1);
}

#[test]
fn broadband_hurts_noprefetch_more_than_ampom() {
    // Figure 9 direction: at 6 Mb/s the gap between NoPrefetch and AMPoM
    // widens relative to openMosix.
    for kernel in [Kernel::Dgemm, Kernel::RandomAccess] {
        let mk = |scheme, link| {
            let size = ProblemSize {
                problem: 0,
                memory_mb: 8,
            };
            let mut w = build_kernel(kernel, &size, 7);
            run_workload(w.as_mut(), &RunConfig::new(scheme).with_link(link))
        };
        let lan = ampom::net::calibration::fast_ethernet();
        let eager_bb = mk(Scheme::OpenMosix, broadband());
        let nopf_bb = mk(Scheme::NoPrefetch, broadband());
        let ampom_bb = mk(Scheme::Ampom, broadband());
        let eager_lan = mk(Scheme::OpenMosix, lan);
        let nopf_lan = mk(Scheme::NoPrefetch, lan);
        // NoPrefetch's penalty grows when the network slows.
        assert!(
            nopf_bb.exec_increase_vs(&eager_bb) > nopf_lan.exec_increase_vs(&eager_lan),
            "{kernel:?}"
        );
        // AMPoM still beats NoPrefetch on broadband.
        assert!(ampom_bb.total_time < nopf_bb.total_time, "{kernel:?}");
    }
}

#[test]
fn small_working_sets_favour_ampom() {
    // Figure 10: the smaller the working set, the bigger AMPoM's win; the
    // two schemes converge at full-footprint.
    let alloc = 32 * MB;
    let mut gaps = Vec::new();
    for ws_mb in [4u64, 16, 32] {
        let mut w = DgemmSmallWs::new(alloc, ws_mb * MB);
        let eager = run_workload(&mut w, &RunConfig::new(Scheme::OpenMosix));
        let mut w = DgemmSmallWs::new(alloc, ws_mb * MB);
        let ampom = run_workload(&mut w, &RunConfig::new(Scheme::Ampom));
        assert!(
            ampom.total_time < eager.total_time,
            "ws={ws_mb}MB: AMPoM must win"
        );
        gaps.push(eager.total_time.as_secs_f64() - ampom.total_time.as_secs_f64());
    }
    assert!(
        gaps[0] > gaps[2],
        "gap must shrink as the working set grows: {gaps:?}"
    );
}

#[test]
fn analysis_overhead_under_paper_ceiling() {
    // Figure 11: "AMPoM consumes less than 0.6% of execution time in
    // finding the dependent zone in all test cases."
    for kernel in Kernel::ALL {
        let r = run(kernel, 16, Scheme::Ampom);
        assert!(
            r.analysis_overhead_fraction() < 0.006,
            "{kernel:?}: {:.3}%",
            r.analysis_overhead_fraction() * 100.0
        );
    }
}

#[test]
fn compute_time_is_scheme_independent() {
    // The same reference stream runs under every scheme; only the fault
    // handling differs.
    for kernel in Kernel::ALL {
        let a = run(kernel, 8, Scheme::OpenMosix).compute_time;
        let b = run(kernel, 8, Scheme::NoPrefetch).compute_time;
        let c = run(kernel, 8, Scheme::Ampom).compute_time;
        assert_eq!(a, b, "{kernel:?}");
        assert_eq!(b, c, "{kernel:?}");
    }
}

#[test]
fn mpt_shipped_only_by_ampom_and_sized_correctly() {
    let ampom = run(Kernel::Stream, 8, Scheme::Ampom);
    let nopf = run(Kernel::Stream, 8, Scheme::NoPrefetch);
    let eager = run(Kernel::Stream, 8, Scheme::OpenMosix);
    assert_eq!(nopf.mpt_bytes, 0);
    assert_eq!(eager.mpt_bytes, 0);
    // 6 bytes per mapped page; 8 MB of data plus code and stack.
    assert!(ampom.mpt_bytes >= 6 * (8 * MB / 4096));
}

#[test]
fn every_touched_page_arrives_exactly_once() {
    // Conservation: demanded + prefetched-used + freeze pages covers the
    // footprint; nothing is fetched twice (the deputy panics on double
    // transfer, so completing at all proves it).
    let r = run(Kernel::Stream, 8, Scheme::Ampom);
    let footprint = 8 * MB / 4096;
    assert!(r.pages_demand_fetched + r.prefetched_pages_used + 3 >= footprint);
    assert!(r.pages_demand_fetched + r.pages_prefetched <= footprint + 2048);
}
