//! The paper's worked examples, fed through the *public* API end to end
//! (the crate-level unit tests check the same examples module by module;
//! these tests prove the exported surface composes the same way).

use ampom::core::census::census;
use ampom::core::prefetcher::{AmpomConfig, AmpomPrefetcher, NetEstimates};
use ampom::core::score::spatial_score;
use ampom::core::zone::select_zone;
use ampom::mem::PageId;
use ampom::sim::time::{SimDuration, SimTime};

#[test]
fn section_3_1_stride_example() {
    // "{1,99,2,45,3,78,4} contains three stride-2 references … stride_2 = 4"
    let c = census(&[1, 99, 2, 45, 3, 78, 4], 4);
    assert_eq!(c.stride_counts[1], 4);
}

#[test]
fn section_3_2_score_example() {
    // "{10,99,11,34,12,85} … S = stride_2/(6×2) = 0.25"
    let c = census(&[10, 99, 11, 34, 12, 85], 4);
    assert_eq!(c.stride_counts[1], 3);
    assert!((spatial_score(&c) - 0.25).abs() < 1e-12);
}

#[test]
fn section_3_2_sequential_scores_one() {
    let pages: Vec<u64> = (1..=20).collect();
    assert!((spatial_score(&census(&pages, 4)) - 1.0).abs() < 1e-12);
}

#[test]
fn section_3_4_outstanding_streams_and_pivots() {
    // l = 10, W = {13,27,7,8,14,8,3,15,4,5}: outstanding {14,15} stride-3,
    // {3,4} stride-2, {4,5} stride-1; pivots 16, 5, 6; {7,8} not counted.
    let c = census(&[13, 27, 7, 8, 14, 8, 3, 15, 4, 5], 4);
    let mut pivots: Vec<u64> = c.outstanding.iter().map(|o| o.pivot).collect();
    pivots.sort_unstable();
    assert_eq!(pivots, vec![5, 6, 16]);

    // With a budget of 6, each pivot gets N/m = 2 pages. The pivot-6
    // stream overlaps the pivot-5 stream's selection, so its saved quota
    // extends to pages 7 and 8 (the §3.4 "saved quota" rule).
    let zone = select_zone(&c.outstanding, 6, PageId(5), PageId(100_000));
    let mut got: Vec<u64> = zone.iter().map(|p| p.index()).collect();
    got.sort_unstable();
    assert_eq!(got, vec![5, 6, 7, 8, 16, 17]);
}

#[test]
fn full_prefetcher_reproduces_the_walkthrough() {
    // Drive the real prefetcher through the §3.4 window and check the
    // request it would send.
    let cfg = AmpomConfig {
        window_len: 10,
        dmax: 4,
        baseline_readahead: 3,
        max_zone: 512,
    };
    let mut pf = AmpomPrefetcher::new(cfg);
    let net = NetEstimates {
        t0: SimDuration::from_micros(120),
        td: SimDuration::from_micros(392),
    };
    let window = [13u64, 27, 7, 8, 14, 8, 3, 15, 4, 5];
    let mut decision = None;
    for (i, &p) in window.iter().enumerate() {
        decision = Some(pf.on_fault(
            PageId(p),
            SimTime::from_nanos((i as u64 + 1) * 100_000),
            1.0,
            net,
            PageId(1_000_000),
            |_| true,
        ));
    }
    let d = decision.unwrap();
    // Pivots 16 and 6 appear in the prefetch list; pivot 5 is the faulted
    // page itself, which the prefetcher excludes (the runner sends it as
    // the request's demand page instead).
    for pivot in [16u64, 6] {
        assert!(
            d.prefetch.contains(&PageId(pivot)),
            "pivot {pivot} missing from {:?}",
            d.prefetch
        );
    }
    assert!(!d.prefetch.contains(&PageId(5)));
    // The consecutive-duplicate rule collapsed nothing here (the repeated
    // 8 is non-adjacent), so the window is full at l = 10.
    assert!(pf.observation().window_full);
}
